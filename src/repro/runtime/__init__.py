"""Resilient evaluation runtime: budgets, cancellation, fault injection.

The paper's pitch is that semantic optimization is *compile-time* and
therefore safe to run in front of every query.  This package supplies
the operational half of that promise: bounded, interruptible evaluation
(:class:`Budget`), graceful optimizer degradation
(:class:`ResilienceReport`, produced by
:meth:`repro.core.SemanticOptimizer.optimize_safe`), and a deterministic
fault-injection harness (:mod:`repro.runtime.chaos`) that the test suite
uses to prove every fallback path fires.  See ``docs/robustness.md``.
"""

from ..errors import (BudgetExceededError, EvaluationCancelledError,
                      ServingUnavailable)
from .budget import (DEFAULT_DEADLINE_CHECK_INTERVAL, Budget,
                     current_budget, resolve_budget)
from .chaos import ChaosError, ChaosPlan, active_plan, checkpoint
from .resilience import ResilienceReport, StageFailure
from .retry import CircuitBreaker, HealthState, RetryPolicy

__all__ = [
    "Budget", "current_budget", "resolve_budget",
    "DEFAULT_DEADLINE_CHECK_INTERVAL",
    "BudgetExceededError", "EvaluationCancelledError",
    "ServingUnavailable",
    "ChaosError", "ChaosPlan", "active_plan", "checkpoint",
    "ResilienceReport", "StageFailure",
    "CircuitBreaker", "HealthState", "RetryPolicy",
]
