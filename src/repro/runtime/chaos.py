"""Deterministic fault injection for the resilience layer.

The chaos harness exists so tests can *prove* that every fallback path
actually fires: it can make any named pipeline stage, or the Nth
derivation event of an engine run, raise a chosen exception or stall
for a fixed wall-clock interval — all deterministically, on cue.

Instrumentation points are pre-wired: the fixpoint engines call
:func:`on_derivation` per derivation event and the guarded optimizer
calls :func:`checkpoint` when it enters a stage.  Both are no-ops (one
module-global read) unless a :class:`ChaosPlan` is active, so the hot
loops pay nothing in production.

Usage::

    plan = ChaosPlan()
    plan.fail_stage("residues", ConstraintError("boom"))
    plan.fail_derivation(100, stall_s=0.2)
    with plan.active():
        ...   # stage "residues" raises; the 100th derivation stalls
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import ReproError


class ChaosError(ReproError):
    """Default exception raised by an injected fault."""


@dataclass
class _Fault:
    """One injected fault: raise ``error`` and/or sleep ``stall_s``."""

    error: BaseException | None = None
    stall_s: float = 0.0
    #: How many additional times the fault re-arms (-1 = forever).
    repeats: int = -1
    fired: int = 0

    @property
    def exhausted(self) -> bool:
        return self.repeats >= 0 and self.fired > self.repeats

    def trigger(self, where: str) -> None:
        self.fired += 1
        if self.stall_s > 0.0:
            time.sleep(self.stall_s)
        if self.error is not None:
            raise self.error
        if self.stall_s == 0.0:
            raise ChaosError(f"chaos fault injected at {where}")


class ChaosPlan:
    """A deterministic schedule of faults to inject."""

    def __init__(self) -> None:
        self._stage_faults: dict[str, _Fault] = {}
        self._derivation_faults: dict[int, _Fault] = {}
        self._derivations = 0
        #: Trigger log, for assertions: ("stage", name) /
        #: ("derivation", n) in firing order.
        self.triggered: list[tuple[str, object]] = []

    # -- scheduling ----------------------------------------------------------
    def fail_stage(self, stage: str,
                   error: BaseException | None = None,
                   stall_s: float = 0.0,
                   repeats: int = -1) -> "ChaosPlan":
        """Make the named stage raise (default :class:`ChaosError`)
        and/or stall when it is entered.

        ``repeats`` bounds how many *additional* entries re-fire the
        fault: ``-1`` (default) fires forever, ``0`` fires exactly
        once, ``n`` fires ``n + 1`` times — the knob self-healing tests
        use to fail the first k recovery attempts and then let the
        k+1st succeed."""
        self._stage_faults[stage] = _Fault(error=error, stall_s=stall_s,
                                           repeats=repeats)
        return self

    def fail_derivation(self, nth: int,
                        error: BaseException | None = None,
                        stall_s: float = 0.0) -> "ChaosPlan":
        """Make the Nth derivation event (1-based, across the whole
        active block) raise and/or stall."""
        if nth < 1:
            raise ValueError("derivation ordinals are 1-based")
        self._derivation_faults[nth] = _Fault(error=error, stall_s=stall_s)
        return self

    # -- instrumentation hooks ----------------------------------------------
    def stage(self, name: str) -> None:
        fault = self._stage_faults.get(name)
        if fault is None or fault.exhausted:
            return
        self.triggered.append(("stage", name))
        fault.trigger(f"stage {name!r}")

    def derivation(self) -> None:
        self._derivations += 1
        fault = self._derivation_faults.get(self._derivations)
        if fault is None:
            return
        self.triggered.append(("derivation", self._derivations))
        fault.trigger(f"derivation #{self._derivations}")

    # -- activation ----------------------------------------------------------
    @contextmanager
    def active(self) -> Iterator["ChaosPlan"]:
        """Install the plan globally for the ``with`` block."""
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = previous


#: The globally-active plan; ``None`` in production.
_ACTIVE: Optional[ChaosPlan] = None


def active_plan() -> ChaosPlan | None:
    """The plan installed by :meth:`ChaosPlan.active`, or ``None``.

    Engines capture this once per run: the per-derivation hook is only
    consulted when a plan was active at entry."""
    return _ACTIVE


def checkpoint(stage: str) -> None:
    """Stage-boundary hook (optimizer pipeline, rewriting passes)."""
    if _ACTIVE is not None:
        _ACTIVE.stage(stage)


def on_derivation() -> None:
    """Per-derivation hook for callers that did not cache the plan."""
    if _ACTIVE is not None:
        _ACTIVE.derivation()
