"""Cooperative resource budgets for evaluation and optimization.

A :class:`Budget` bounds one unit of work along four axes — wall-clock
deadline, derivation events, materialized facts, and fixpoint rounds —
and carries a cooperative cancellation flag that another thread may set
at any time.  The fixpoint engines call :meth:`Budget.tick` on every
derivation event and :meth:`Budget.check_round` at every round boundary;
both raise the typed errors of :mod:`repro.errors` carrying the partial
:class:`~repro.engine.bindings.EvalStats` and the last completed round,
so callers can report how far evaluation got.

Deadline checks call :func:`time.monotonic`, which is too expensive to
pay per derivation; :meth:`tick` therefore only consults the clock every
``deadline_check_interval`` events (counter limits are exact).  Round
boundaries always check the clock.

Budgets can also be installed *ambiently* with :meth:`Budget.activate`:
engines that were not handed an explicit budget fall back to
:func:`current_budget`, which is how the benchmark harness imposes a
deadline on measurement closures it does not control.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from ..errors import BudgetExceededError, EvaluationCancelledError

#: Ambiently-active budget (see :meth:`Budget.activate`).
_CURRENT: ContextVar[Optional["Budget"]] = ContextVar(
    "repro_active_budget", default=None)

#: How many derivation events pass between wall-clock checks by default.
DEFAULT_DEADLINE_CHECK_INTERVAL = 64


class Budget:
    """A resource budget for one evaluation or optimization run.

    Args:
        timeout_s: wall-clock allowance in seconds; the deadline starts
            counting at :meth:`start` (engines call it on entry).
        max_derivations: bound on derivation *events* (new facts plus
            duplicate derivations) — the engine's total work.
        max_facts: bound on *materialized* facts (new tuples only).
        max_rounds: bound on fixpoint delta rounds per stratum (also
            bounds naive rounds and top-down outer iterations).
        deadline_check_interval: derivation events between wall-clock
            reads in :meth:`tick`; set to 1 for exact deadlines.
    """

    def __init__(self, timeout_s: float | None = None,
                 max_derivations: int | None = None,
                 max_facts: int | None = None,
                 max_rounds: int | None = None,
                 deadline_check_interval: int =
                 DEFAULT_DEADLINE_CHECK_INTERVAL) -> None:
        if deadline_check_interval < 1:
            raise ValueError("deadline_check_interval must be >= 1")
        self.timeout_s = timeout_s
        self.max_derivations = max_derivations
        self.max_facts = max_facts
        self.max_rounds = max_rounds
        self._interval = deadline_check_interval
        self._cancel_event = threading.Event()
        self._deadline: float | None = None
        self._started_at: float | None = None
        self._ticks = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        for name in ("timeout_s", "max_derivations", "max_facts",
                     "max_rounds"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value}")
        if self.cancelled:
            parts.append("cancelled")
        return f"Budget({', '.join(parts)})"

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "Budget":
        """Arm the deadline (idempotent); returns ``self`` for chaining."""
        if self._started_at is None:
            self._started_at = time.monotonic()
            if self.timeout_s is not None:
                self._deadline = self._started_at + self.timeout_s
        return self

    def cancel(self) -> None:
        """Cooperatively cancel: the next checkpoint raises
        :class:`EvaluationCancelledError`.  Thread-safe."""
        self._cancel_event.set()

    @property
    def cancelled(self) -> bool:
        return self._cancel_event.is_set()

    def elapsed_s(self) -> float:
        """Seconds since :meth:`start` (0.0 before the budget starts)."""
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def remaining_s(self) -> float | None:
        """Seconds until the deadline; ``None`` when unbounded."""
        if self.timeout_s is None:
            return None
        if self._deadline is None:
            return self.timeout_s
        return self._deadline - time.monotonic()

    def expired(self) -> bool:
        """True when the armed deadline has passed."""
        return self._deadline is not None \
            and time.monotonic() > self._deadline

    def child(self, timeout_s: float | None = None) -> "Budget":
        """A sub-budget sharing this budget's cancellation flag.

        The child's deadline never outlives the parent's: its timeout is
        the smaller of ``timeout_s`` and the parent's remaining time.
        Counter limits are inherited unchanged (they bound the same kind
        of work); counters themselves restart at zero because engines
        track them in per-run :class:`EvalStats`.
        """
        remaining = self.remaining_s()
        if timeout_s is None:
            effective = remaining
        elif remaining is None:
            effective = timeout_s
        else:
            effective = min(timeout_s, remaining)
        child = Budget(timeout_s=effective,
                       max_derivations=self.max_derivations,
                       max_facts=self.max_facts,
                       max_rounds=self.max_rounds,
                       deadline_check_interval=self._interval)
        child._cancel_event = self._cancel_event
        return child

    # -- checkpoints ---------------------------------------------------------
    def tick(self, stats=None, last_round: int | None = None) -> None:
        """Per-derivation checkpoint (cheap; clock read is amortized)."""
        if self._cancel_event.is_set():
            raise EvaluationCancelledError(
                "evaluation cancelled", stats=stats, last_round=last_round)
        self._check_counters(stats, last_round)
        self._ticks += 1
        if self._deadline is not None \
                and self._ticks % self._interval == 0:
            self._check_deadline(stats, last_round)

    def checkpoint(self, stats=None,
                   last_round: int | None = None) -> int:
        """Amortized checkpoint for tight insert loops.

        Performs the full check (cancellation, counter limits, deadline —
        the clock is read unconditionally, unlike :meth:`tick`) and
        returns the number of derivation events that may safely pass
        before the next checkpoint is due.  Engines count that many
        events down and call :meth:`checkpoint` again at zero, which
        keeps counter limits *exact* — the distance returned never
        crosses a configured limit — while paying one clock read per
        ~``deadline_check_interval`` events instead of one Python call
        per event.  Exhaustion raises exactly the same typed errors with
        the same payloads as :meth:`tick`.
        """
        if self._cancel_event.is_set():
            raise EvaluationCancelledError(
                "evaluation cancelled", stats=stats, last_round=last_round)
        self._check_counters(stats, last_round)
        self._check_deadline(stats, last_round)
        return self.events_until_check(stats)

    def events_until_check(self, stats=None) -> int:
        """Derivation events until the next required :meth:`checkpoint`.

        The amortization window (``deadline_check_interval``), shortened
        so that no counter limit can be crossed in between: with
        ``max_derivations`` or ``max_facts`` configured the distance to
        the nearest limit is returned instead, making amortized budget
        accounting raise at exactly the same event as per-event ticking.
        """
        nxt = self._interval
        if stats is not None:
            if self.max_derivations is not None:
                events = stats.derivations + stats.duplicate_derivations
                nxt = min(nxt, self.max_derivations - events)
            if self.max_facts is not None:
                nxt = min(nxt, self.max_facts - stats.derivations)
        return nxt if nxt > 0 else 1

    def _check_counters(self, stats, last_round: int | None) -> None:
        if stats is None:
            return
        if self.max_derivations is not None:
            events = stats.derivations + stats.duplicate_derivations
            if events >= self.max_derivations:
                raise BudgetExceededError(
                    f"derivation budget exhausted after {events} "
                    f"derivation events (limit {self.max_derivations})",
                    resource="derivations",
                    limit=self.max_derivations, spent=events,
                    stats=stats, last_round=last_round)
        if self.max_facts is not None \
                and stats.derivations >= self.max_facts:
            raise BudgetExceededError(
                f"materialized-fact budget exhausted after "
                f"{stats.derivations} facts (limit {self.max_facts})",
                resource="facts", limit=self.max_facts,
                spent=stats.derivations, stats=stats,
                last_round=last_round)

    def check_round(self, stats=None,
                    last_round: int | None = None) -> None:
        """Round-boundary checkpoint: exact deadline + round limit."""
        if self._cancel_event.is_set():
            raise EvaluationCancelledError(
                "evaluation cancelled", stats=stats, last_round=last_round)
        self._check_deadline(stats, last_round)
        if self.max_rounds is not None and last_round is not None \
                and last_round >= self.max_rounds:
            raise BudgetExceededError(
                f"round budget exhausted after {last_round} rounds "
                f"(limit {self.max_rounds})",
                resource="rounds", limit=self.max_rounds,
                spent=last_round, stats=stats, last_round=last_round)

    def _check_deadline(self, stats, last_round: int | None) -> None:
        if self._deadline is None:
            return
        now = time.monotonic()
        if now > self._deadline:
            spent = now - (self._started_at or now)
            raise BudgetExceededError(
                f"deadline of {self.timeout_s:g}s exceeded after "
                f"{spent:.3f}s", resource="deadline",
                limit=self.timeout_s, spent=spent, stats=stats,
                last_round=last_round)

    # -- ambient installation ----------------------------------------------
    @contextmanager
    def activate(self) -> Iterator["Budget"]:
        """Install this budget ambiently for the ``with`` block.

        Engines invoked without an explicit ``budget=`` argument pick it
        up via :func:`current_budget`."""
        token = _CURRENT.set(self)
        try:
            yield self.start()
        finally:
            _CURRENT.reset(token)


def current_budget() -> Budget | None:
    """The ambiently-active budget installed by :meth:`Budget.activate`,
    or ``None``."""
    return _CURRENT.get()


def resolve_budget(budget: Budget | None) -> Budget | None:
    """An explicit budget if given, else the ambient one, started."""
    if budget is None:
        budget = current_budget()
    return budget.start() if budget is not None else None
