"""Structured reporting for the guarded optimizer pipeline.

:meth:`repro.core.optimizer.SemanticOptimizer.optimize_safe` never lets
an optimization failure reach the caller: each pipeline stage runs under
its own budget with exception capture, failing stages are dropped, and
the worst case degrades to the original (sound) program.  This module
defines the report that records what was dropped and why — the
operational counterpart of the paper's compile-time guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..datalog.program import Program


@dataclass(frozen=True)
class StageFailure:
    """One pipeline stage (or stage fragment) that was dropped."""

    stage: str              # e.g. "residues", "periodic", "push:anc/r1 r1"
    reason: str             # one-line diagnosis
    error_type: str         # exception class name
    dropped: tuple[str, ...] = ()   # IC labels / residue groups lost

    def __str__(self) -> str:
        extra = f" (dropped {', '.join(self.dropped)})" if self.dropped \
            else ""
        return f"[{self.stage}] {self.error_type}: {self.reason}{extra}"


@dataclass
class ResilienceReport:
    """The result of :meth:`SemanticOptimizer.optimize_safe`.

    ``optimized`` is always sound to evaluate: every applied step passed
    the same guards as :meth:`~SemanticOptimizer.optimize`, and the final
    fallback is ``original`` itself.

    Attributes:
        original: the program handed to the optimizer.
        optimized: the program to evaluate (== ``original`` on full
            degradation or quarantine).
        steps: the per-residue :class:`OptimizationStep` records from the
            stages that completed.
        failures: stages dropped by budget expiry or exception capture.
        verification: ``"skipped"`` | ``"passed"`` | ``"mismatch"`` |
            ``"error"`` — outcome of the sampled equivalence spot-check.
        quarantined: True when the spot-check found a mismatch and the
            optimization was discarded in favour of ``original``.
        verification_detail: the offending predicate/step on mismatch,
            or the error message when verification itself failed.
    """

    original: Program
    optimized: Program
    steps: list[Any] = field(default_factory=list)
    failures: list[StageFailure] = field(default_factory=list)
    verification: str = "skipped"
    quarantined: bool = False
    verification_detail: str = ""

    @property
    def applied_steps(self) -> list[Any]:
        return [s for s in self.steps if s.outcome.applied]

    @property
    def changed(self) -> bool:
        return not self.quarantined and bool(self.applied_steps)

    @property
    def degraded(self) -> bool:
        """True when anything was dropped, skipped, or quarantined."""
        return bool(self.failures) or self.quarantined

    def summary(self) -> str:
        applied = 0 if self.quarantined else len(self.applied_steps)
        lines = [f"{applied}/{len(self.steps)} residue pushes applied "
                 f"({len(self.failures)} stage(s) degraded, "
                 f"verification: {self.verification})"]
        lines.extend(f"  {step}" for step in self.steps)
        lines.extend(f"  degraded {failure}" for failure in self.failures)
        if self.quarantined:
            lines.append(f"  quarantined: {self.verification_detail}")
        return "\n".join(lines)
