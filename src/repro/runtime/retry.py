"""Retry, backoff, and health-state primitives for long-lived services.

The serving tier (:mod:`repro.serving`) keeps materialized views alive
against an update stream for an unbounded length of time, so transient
failures (budget expiry under load, injected chaos faults, a changeset
the incremental engine rejects) are *expected* events with defined
recovery paths, not exceptions to crash on.  This module supplies the
policy pieces that recovery is built from:

* :class:`RetryPolicy` — bounded retry with exponential backoff and
  deterministic jitter.  The jitter RNG is injectable so tests replay
  identical schedules; the sleep function is injectable so tests run in
  zero wall-clock time.
* :class:`CircuitBreaker` — the classic closed / open / half-open
  automaton over consecutive failures.  While open, callers shed work
  immediately instead of piling onto a struggling dependency; after a
  cooldown one probe is let through, and its outcome decides between
  closing the circuit and re-opening it.
* :class:`HealthState` — the coarse condition a service component
  reports: the write pipeline walks ``HEALTHY -> DEGRADED ->
  REBUILDING -> UNAVAILABLE`` as failures accumulate and back as
  recoveries land, and operators/benchmarks read it as the one-word
  summary of "is this thing OK".

Everything here is synchronous and thread-compatible: breaker state is
lock-protected, and the only blocking call is the injectable ``sleep``.
"""

from __future__ import annotations

import enum
import random
import threading
import time
from typing import Callable, Iterator, Optional, Tuple, Type


class HealthState(enum.Enum):
    """Coarse operational condition of a serving component."""

    #: Normal operation; the fast path (incremental refresh) is in use.
    HEALTHY = "healthy"
    #: Recent failures; retries/backoff in progress, answers may be
    #: served from a bounded-stale snapshot.
    DEGRADED = "degraded"
    #: The fast path was abandoned; a full from-scratch rebuild is the
    #: current recovery attempt.
    REBUILDING = "rebuilding"
    #: The circuit is open: new work is rejected with
    #: :class:`~repro.errors.ServingUnavailable` until a probe succeeds.
    UNAVAILABLE = "unavailable"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class RetryPolicy:
    """Bounded retry with exponential backoff and jitter.

    Args:
        max_attempts: total attempts (first try included); >= 1.
        base_delay_s: delay before the second attempt.
        multiplier: backoff growth factor per further attempt.
        max_delay_s: cap on any single delay.
        jitter: fraction of each delay randomized away: the sleep for
            attempt ``i`` is uniform in
            ``[delay_i * (1 - jitter), delay_i]``.  ``0`` disables
            jitter (fully deterministic schedules for tests).
        rng: source of jitter randomness; inject a seeded
            :class:`random.Random` for reproducible schedules.
    """

    def __init__(self, max_attempts: int = 3,
                 base_delay_s: float = 0.05,
                 multiplier: float = 2.0,
                 max_delay_s: float = 2.0,
                 jitter: float = 0.5,
                 rng: Optional[random.Random] = None) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.multiplier = multiplier
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RetryPolicy(max_attempts={self.max_attempts}, "
                f"base={self.base_delay_s:g}s, "
                f"x{self.multiplier:g} <= {self.max_delay_s:g}s, "
                f"jitter={self.jitter:g})")

    def delay_s(self, attempt: int) -> float:
        """The jittered sleep after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempts are 1-based")
        raw = min(self.base_delay_s * self.multiplier ** (attempt - 1),
                  self.max_delay_s)
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        return raw * (1.0 - self.jitter * self._rng.random())

    def delays(self) -> Iterator[float]:
        """The jittered delays between the policy's attempts, in order
        (``max_attempts - 1`` values)."""
        for attempt in range(1, self.max_attempts):
            yield self.delay_s(attempt)

    def call(self, fn: Callable[[], object],
             retry_on: Tuple[Type[BaseException], ...] = (Exception,),
             sleep: Callable[[float], None] = time.sleep,
             on_failure: Callable[[int, BaseException], None]
             | None = None) -> object:
        """Run ``fn`` under the policy; returns its first success.

        Only exceptions matching ``retry_on`` are retried; anything
        else propagates immediately.  ``on_failure(attempt, error)`` is
        invoked before each backoff sleep (and for the final, fatal
        attempt), which is where callers hook failure counters and
        circuit breakers.  When every attempt fails, the last error is
        re-raised unchanged.
        """
        last: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except retry_on as error:
                last = error
                if on_failure is not None:
                    on_failure(attempt, error)
                if attempt < self.max_attempts:
                    sleep(self.delay_s(attempt))
        assert last is not None
        raise last


class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed / open / half-open).

    ``record_failure`` past ``failure_threshold`` consecutive failures
    opens the circuit: :meth:`allow` answers ``False`` (shed the work)
    until ``cooldown_s`` has elapsed, then lets exactly one probe
    through (half-open).  The probe's :meth:`record_success` closes the
    circuit and resets the count; its :meth:`record_failure` re-opens
    it for another cooldown.  All transitions are lock-protected; the
    clock is injectable for deterministic tests.
    """

    def __init__(self, failure_threshold: int = 5,
                 cooldown_s: float = 1.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probing = False
        #: Lifetime counters, for reports.
        self.total_failures = 0
        self.total_successes = 0
        self.times_opened = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CircuitBreaker({self.state}, "
                f"{self._consecutive_failures}/"
                f"{self.failure_threshold} failures)")

    @property
    def state(self) -> str:
        """``"closed"`` | ``"open"`` | ``"half-open"``."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._probing or \
                self._clock() - self._opened_at >= self.cooldown_s:
            return "half-open"
        return "open"

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    def retry_after_s(self) -> float | None:
        """Seconds until the next probe is allowed; ``None`` if now."""
        with self._lock:
            if self._opened_at is None:
                return None
            remaining = self.cooldown_s - (self._clock() - self._opened_at)
            return max(0.0, remaining) if remaining > 0 else None

    def allow(self) -> bool:
        """May one unit of work proceed right now?

        Closed: always.  Open: no, until the cooldown elapses.
        Half-open: yes for exactly one caller (the probe); concurrent
        callers are shed until the probe reports back.
        """
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "open":
                return False
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self.total_successes += 1
            self._consecutive_failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self.total_failures += 1
            self._consecutive_failures += 1
            was_open = self._opened_at is not None
            if self._probing or (not was_open and
                                 self._consecutive_failures
                                 >= self.failure_threshold):
                # A failed probe, or the threshold crossed: (re)start
                # the cooldown from now.
                self._opened_at = self._clock()
                self._probing = False
                self.times_opened += 1
            elif was_open:
                self._opened_at = self._clock()

    def describe(self) -> dict:
        """JSON-friendly snapshot for reports and ``describe`` CLIs."""
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "total_failures": self.total_failures,
                "total_successes": self.total_successes,
                "times_opened": self.times_opened,
            }
