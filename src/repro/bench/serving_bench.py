"""Concurrent serving benchmark: the ``BENCH_serving.json`` artifact.

A :class:`~repro.serving.threaded.ThreadedServer` is driven by a mixed
workload — ``readers`` reader threads answering a transitive-closure
query from MVCC snapshots while one writer client streams small edge
changesets through the write pipeline — and the harness measures what
clients actually observe: read latency (p50/p99), throughput (QPS),
the stale-read ratio (answers served from a snapshot behind the
applied version), and the error rate, split into *expected* typed
:class:`~repro.errors.ServingUnavailable` rejections and *unexpected*
exceptions (of which there must be none).

Every mode runs twice: ``steady`` (no faults) and ``chaos``, where the
:mod:`~repro.runtime.chaos` harness fails a bounded number of
``serving:apply`` and ``serving:refresh`` entries mid-run, so the
report also demonstrates the recovery ladder — retries, degraded
health, and the return to ``HEALTHY`` — under live traffic.  After
each mode the surviving materialization must fingerprint identically
to a from-scratch semi-naive evaluation of the final database: the
differential guarantee, now checked at the end of a concurrent,
fault-injected run.

:func:`regression_failures` is the CI gate (``bench-serving
--check``): nonzero read throughput in every mode, zero unexpected
errors, zero errors of any kind in steady state, and fingerprint
agreement everywhere.
"""

from __future__ import annotations

import json
import platform
import random
import threading
import time

from ..datalog.parser import parse_program
from ..engine.seminaive import seminaive_evaluate
from ..errors import ServingUnavailable
from ..facts.changelog import Changeset
from ..facts.database import Database
from ..runtime.chaos import ChaosPlan
from ..runtime.retry import CircuitBreaker, HealthState, RetryPolicy
from ..serving.threaded import ThreadedServer
from ..serving.views import relation_fingerprint

#: Report format version (bump when the JSON shape changes).
REPORT_VERSION = 1

#: Default artifact filename.
DEFAULT_REPORT_PATH = "BENCH_serving.json"

#: The served program: transitive closure, the paper's canonical
#: recursive query and the one every other bench gates on.
TC_PROGRAM = """
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
"""

TC_QUERY = "reach(n0, X)"


def _build_edb(seed: int, nodes: int = 48,
               edges: int = 160) -> tuple[Database, list[str]]:
    """A deterministic random digraph EDB (no self loops)."""
    rng = random.Random(seed)
    labels = [f"n{i}" for i in range(nodes)]
    db = Database()
    db.ensure("edge", 2)
    chosen: set[tuple[str, str]] = set()
    while len(chosen) < edges:
        src, dst = rng.choice(labels), rng.choice(labels)
        if src != dst and (src, dst) not in chosen:
            chosen.add((src, dst))
            db.add_fact("edge", src, dst)
    return db, labels


def _random_update(rng: random.Random,
                   labels: list[str]) -> Changeset:
    """A small edge churn batch: two inserts, one delete."""
    def edge() -> tuple[str, str]:
        while True:
            src, dst = rng.choice(labels), rng.choice(labels)
            if src != dst:
                return src, dst

    return Changeset(inserts={"edge": {edge(), edge()}},
                     deletes={"edge": {edge()}})


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def _chaos_plan() -> ChaosPlan:
    """Bounded mid-run faults: the recovery ladder must fire and heal.

    ``serving:apply`` fails twice (the retry loop should absorb it
    within one batch) and ``serving:refresh`` fails three times (enough
    to fail a whole batch and degrade health before the next batch
    recovers).  Both faults exhaust well before the run ends, so the
    final state must be healthy and fingerprint-clean.
    """
    plan = ChaosPlan()
    plan.fail_stage("serving:apply", repeats=1)
    plan.fail_stage("serving:refresh", repeats=2)
    return plan


def _run_mode(name: str, duration_s: float, readers: int,
              seed: int, plan: ChaosPlan | None) -> dict:
    program = parse_program(TC_PROGRAM)
    edb, labels = _build_edb(seed)
    server = ThreadedServer(
        db=edb, max_readers=readers + 2,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.01,
                          max_delay_s=0.05),
        breaker=CircuitBreaker(failure_threshold=8, cooldown_s=0.2),
        rebuild_after=2, poll_s=0.005)
    # Materialize once before the clock starts so reader latencies
    # measure serving, not the one-time view construction.
    server.view(program)
    server.read(program, TC_QUERY)

    latencies: list[float] = []
    stale_reads = 0
    reads = 0
    expected_errors: dict[str, int] = {}
    unexpected: list[str] = []
    writes = {"submitted": 0, "rejected": 0}
    lock = threading.Lock()
    stop = threading.Event()

    def reader_loop() -> None:
        nonlocal reads, stale_reads
        while not stop.is_set():
            try:
                result = server.read(program, TC_QUERY,
                                     deadline_s=1.0)
            except ServingUnavailable as error:
                with lock:
                    key = error.reason
                    expected_errors[key] = expected_errors.get(key, 0) + 1
                continue
            except Exception as error:  # noqa: BLE001 - the gate
                with lock:
                    unexpected.append(
                        f"reader: {type(error).__name__}: {error}")
                continue
            with lock:
                reads += 1
                latencies.append(result.latency_s)
                if result.stale:
                    stale_reads += 1

    def writer_loop() -> None:
        rng = random.Random(seed + 13)
        while not stop.is_set():
            changeset = _random_update(rng, labels)
            try:
                server.update(changeset, timeout_s=0.05)
                with lock:
                    writes["submitted"] += 1
            except ServingUnavailable:
                with lock:
                    writes["rejected"] += 1
            except Exception as error:  # noqa: BLE001 - the gate
                with lock:
                    unexpected.append(
                        f"writer: {type(error).__name__}: {error}")
            time.sleep(0.002)

    threads = [threading.Thread(target=reader_loop,
                                name=f"bench-reader-{i}", daemon=True)
               for i in range(readers)]
    threads.append(threading.Thread(target=writer_loop,
                                    name="bench-writer", daemon=True))

    started = time.perf_counter()
    server.start()
    context = plan.active() if plan is not None else None
    if context is not None:
        context.__enter__()
    try:
        for thread in threads:
            thread.start()
        time.sleep(duration_s)
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)
        server.stop(flush=True, timeout_s=10.0)
    finally:
        if context is not None:
            context.__exit__(None, None, None)
    elapsed = time.perf_counter() - started

    # The differential guarantee, post-chaos: the surviving
    # materialization equals a from-scratch evaluation of the final
    # database.
    view = server.view(program)
    if not view.valid:
        view.refresh()
    recomputed = seminaive_evaluate(program, server.server.source.db)
    agree = (relation_fingerprint(view.idb)
             == relation_fingerprint(recomputed))

    latencies.sort()
    entry = {
        "mode": name,
        "duration_s": round(elapsed, 3),
        "reads": reads,
        "qps": round(reads / elapsed, 1) if elapsed > 0 else 0.0,
        "latency_p50_ms": round(
            _percentile(latencies, 0.50) * 1000, 3),
        "latency_p99_ms": round(
            _percentile(latencies, 0.99) * 1000, 3),
        "stale_reads": stale_reads,
        "stale_read_ratio": round(stale_reads / reads, 4)
        if reads else 0.0,
        "expected_errors": dict(sorted(expected_errors.items())),
        "unexpected_errors": unexpected,
        "error_rate": round(
            (sum(expected_errors.values()) + len(unexpected))
            / max(1, reads + sum(expected_errors.values())), 4),
        "writes_submitted": writes["submitted"],
        "writes_rejected": writes["rejected"],
        "final_version": server.version,
        "final_health": str(server.health),
        "fingerprints_agree": agree,
        "pipeline": server.pipeline.describe(),
    }
    if plan is not None:
        entry["faults_fired"] = len(plan.triggered)
    return entry


def run_serving_benchmark(duration_s: float = 2.0, readers: int = 4,
                          seed: int = 7, chaos: bool = True) -> dict:
    """Run the steady and (optionally) chaos modes; returns the report."""
    report: dict = {
        "version": REPORT_VERSION,
        "duration_s": duration_s,
        "readers": readers,
        "writers": 1,
        "seed": seed,
        "python": platform.python_version(),
        "modes": [],
    }
    report["modes"].append(_run_mode("steady", duration_s, readers,
                                     seed, plan=None))
    if chaos:
        report["modes"].append(_run_mode("chaos", duration_s, readers,
                                         seed, plan=_chaos_plan()))
    summary: dict = {}
    for mode in report["modes"]:
        prefix = mode["mode"]
        summary[f"{prefix}_qps"] = mode["qps"]
        summary[f"{prefix}_p99_ms"] = mode["latency_p99_ms"]
        summary[f"{prefix}_stale_ratio"] = mode["stale_read_ratio"]
        summary[f"{prefix}_error_rate"] = mode["error_rate"]
    report["summary"] = summary
    return report


def write_serving_benchmark(report: dict,
                            path: str = DEFAULT_REPORT_PATH) -> None:
    """Write the report as ``BENCH_serving.json``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def regression_failures(report: dict) -> list[str]:
    """Check the report against the CI gate; returns failure messages.

    Fails when any mode served zero reads, saw an unexpected (untyped)
    exception, or ended with a materialization that disagrees with the
    from-scratch recomputation — and when the steady mode saw *any*
    error at all (there is nothing to shed without faults).
    """
    failures: list[str] = []
    modes = report.get("modes", [])
    if not modes:
        failures.append("report has no benchmark modes")
    for mode in modes:
        name = mode.get("mode", "?")
        if mode.get("reads", 0) <= 0 or mode.get("qps", 0) <= 0:
            failures.append(f"{name}: no reads were served")
        for message in mode.get("unexpected_errors", []):
            failures.append(f"{name}: unexpected error: {message}")
        if mode.get("fingerprints_agree") is False:
            failures.append(
                f"{name}: final materialization disagrees with "
                "from-scratch recomputation")
        if name == "steady":
            errors = mode.get("expected_errors", {})
            if errors:
                failures.append(
                    f"steady: reads/writes were rejected without "
                    f"faults: {errors}")
        if name == "chaos" and mode.get("final_health") \
                != str(HealthState.HEALTHY):
            failures.append(
                f"chaos: pipeline did not recover to HEALTHY "
                f"(final health {mode.get('final_health')!r})")
    return failures
