"""Benchmark harness: timed engine comparisons with work counters.

Wall time in a pure-Python engine is noisy; every measurement therefore
also reports the instrumentation counters (atom lookups, rows matched,
derivations, residue checks), which deterministically quantify the work
an optimization saves — the quantity the paper's claims are about.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..datalog.pretty import format_table
from ..engine.engine import EvaluationResult
from ..errors import BudgetExceededError
from ..runtime.budget import Budget

#: Per-measurement wall-clock allowance: one runaway configuration fails
#: its own row instead of hanging the whole benchmark suite.
DEFAULT_MEASUREMENT_TIMEOUT_S = 120.0


@dataclass
class Measurement:
    """One engine run: wall times over repeats plus the counters."""

    label: str
    seconds: list[float] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    rule_rows: dict[str, int] = field(default_factory=dict)
    answers: int = 0
    #: True when the run hit the measurement deadline; the row then
    #: reports partial counters instead of hanging the suite.
    budget_exceeded: bool = False

    def rows_for_rules(self, prefix: str) -> int:
        """Matched rows attributed to rules labelled ``prefix*``."""
        return sum(rows for label, rows in self.rule_rows.items()
                   if label.startswith(prefix))

    @property
    def median_seconds(self) -> float:
        return statistics.median(self.seconds) if self.seconds else 0.0

    def speedup_over(self, baseline: "Measurement") -> float:
        if self.median_seconds == 0:
            return float("inf")
        return baseline.median_seconds / self.median_seconds


def measure(label: str, run: Callable[[], EvaluationResult],
            answer_pred: str, repeats: int = 3,
            timeout_s: float | None = DEFAULT_MEASUREMENT_TIMEOUT_S
            ) -> Measurement:
    """Run an evaluation ``repeats`` times; keep counters from the last.

    Each repeat runs under an ambient :class:`Budget` deadline
    (``timeout_s``; ``None`` disables it).  On expiry the measurement is
    marked ``budget_exceeded`` and carries the partial counters — the
    row reports the timeout instead of the whole suite hanging.
    """
    measurement = Measurement(label)
    result: EvaluationResult | None = None
    for _ in range(max(1, repeats)):
        budget = Budget(timeout_s=timeout_s)
        start = time.perf_counter()
        try:
            with budget.activate():
                result = run()
        except BudgetExceededError as error:
            measurement.seconds.append(time.perf_counter() - start)
            measurement.budget_exceeded = True
            if error.stats is not None:
                measurement.counters = error.stats.as_dict()
                measurement.rule_rows = dict(error.stats.rule_rows)
            return measurement
        measurement.seconds.append(time.perf_counter() - start)
    assert result is not None
    measurement.counters = result.stats.as_dict()
    measurement.rule_rows = dict(result.stats.rule_rows)
    measurement.answers = result.count(answer_pred) \
        if answer_pred in result.program.idb_predicates else 0
    return measurement


@dataclass
class Table:
    """An experiment's printable result table."""

    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        self.rows.append(list(cells))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        lines = [self.title, "=" * len(self.title),
                 format_table(self.headers, self.rows)]
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print(self.render())
        print()

    def to_csv(self, path) -> None:
        """Write the table as CSV (headers + rows; notes as comments)."""
        import csv

        with open(path, "w", encoding="utf-8", newline="") as handle:
            for note in [self.title] + self.notes:
                handle.write(f"# {note}\n")
            writer = csv.writer(handle)
            writer.writerow(self.headers)
            for row in self.rows:
                writer.writerow([str(cell) for cell in row])


def comparison_row(size_label: object,
                   measurements: Sequence[Measurement],
                   counter: str = "atom_lookups") -> list[object]:
    """A standard row: size, then per-engine time/counter/answers."""
    row: list[object] = [size_label]
    baseline = measurements[0]
    for measurement in measurements:
        if measurement.budget_exceeded:
            row.append("TIMEOUT")
        else:
            row.append(f"{measurement.median_seconds * 1000:.1f}ms")
        row.append(measurement.counters.get(counter, 0))
    row.append(f"{baseline.median_seconds / max(measurements[-1].median_seconds, 1e-9):.2f}x")
    if any(m.budget_exceeded for m in measurements):
        row.append("budget_exceeded")
    else:
        answers = {m.answers for m in measurements}
        row.append("yes" if len(answers) == 1 else f"MISMATCH {answers}")
    return row


def check_same_answers(measurements: Iterable[Measurement]) -> bool:
    """All engines must agree — semantic optimization preserves answers."""
    answers = {m.answers for m in measurements}
    return len(answers) == 1


def emit_engine_baseline(path: str = "BENCH_engine.json",
                         scale: str = "default", repeats: int = 3,
                         timeout_s: float | None =
                         DEFAULT_MEASUREMENT_TIMEOUT_S) -> dict:
    """Run the engine baseline and write ``BENCH_engine.json``.

    Thin entry point over :mod:`repro.bench.engine_bench` (imported
    lazily to keep harness import light): standard recursive workloads
    under every method and both executors, with differential agreement
    checks baked into the report.  Returns the report dict.
    """
    from .engine_bench import run_engine_benchmark, \
        write_engine_benchmark

    report = run_engine_benchmark(scale=scale, repeats=repeats,
                                  timeout_s=timeout_s)
    write_engine_benchmark(report, path)
    return report
