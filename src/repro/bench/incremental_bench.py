"""Incremental maintenance benchmark: the ``BENCH_incremental.json``
artifact.

For every engine-bench workload (transitive closure, same-generation,
and the magic-rewritten bound-argument query) this harness measures what
serving update traffic actually costs: starting from a converged
materialization, apply a small EDB changeset (1% insert batch, 1%
delete batch) and time

* **incremental maintenance** — :func:`repro.incremental.maintain`
  over the net changeset, with support counts and a warm kernel cache
  (steady-state serving), against
* **full recomputation** — a from-scratch semi-naive evaluation of the
  post-changeset database, which is what every query would pay without
  the maintenance engine.

Each mode runs ``repeats`` times and reports the median; the maintained
IDB must fingerprint identically to the recomputed one — the
differential guarantee checked where the speedup is claimed.
:func:`regression_failures` turns the report into the CI gate
(`bench-incremental --check`): minimum insert/delete speedups on the
transitive-closure row, fingerprint agreement everywhere, and at least
:data:`MIN_GATE_REPEATS` repeats so single-run timing noise cannot pass
or fail a gate.
"""

from __future__ import annotations

import json
import platform
import random
import statistics
import time

from ..engine.bindings import EvalStats
from ..engine.compile import KernelCache
from ..engine.magic import magic_rewrite
from ..engine.seminaive import seminaive_evaluate
from ..errors import BudgetExceededError
from ..facts.changelog import Changeset, VersionedDatabase, \
    random_changeset
from ..facts.database import Database
from ..incremental.maintain import SupportCounts, maintain, \
    support_counts
from ..serving.views import relation_fingerprint
from ..runtime.budget import Budget
from .engine_bench import DEFAULT_SEED, EngineWorkload, build_workloads

#: Report format version (bump when the JSON shape changes).
REPORT_VERSION = 1

#: Default artifact filename.
DEFAULT_REPORT_PATH = "BENCH_incremental.json"

#: Fraction of each EDB relation changed per benchmark batch.
CHANGE_FRACTION = 0.01

#: Gates refuse reports measured with fewer repeats than this: medians
#: over >=3 runs are what keep speedup thresholds from flapping.
MIN_GATE_REPEATS = 3


def _copy_counts(counts: SupportCounts) -> SupportCounts:
    out = SupportCounts()
    for pred, counter in counts.by_pred.items():
        out.by_pred[pred] = dict(counter)
    return out


def _maintenance_workloads(scale: str,
                           seed: int) -> list[EngineWorkload]:
    """Engine-bench workloads with magic pre-rewritten for serving.

    A served magic view materializes the *rewritten* program — the
    rewrite is part of view construction, not of each refresh — so the
    benchmark maintains ``magic_rewrite(program, query)`` directly.
    """
    out: list[EngineWorkload] = []
    for workload in build_workloads(scale, seed=seed):
        if workload.name == "magic":
            rewritten = magic_rewrite(workload.program, workload.query)
            workload = EngineWorkload(
                name=workload.name, program=rewritten.program,
                edb=workload.edb, query=workload.query,
                answer_pred=workload.answer_pred)
        out.append(workload)
    return out


def _bench_mode(workload: EngineWorkload, counts: SupportCounts,
                changeset: Changeset, repeats: int,
                timeout_s: float | None) -> dict:
    """Measure one changeset: maintenance vs recomputation medians."""
    program = workload.program
    versioned = VersionedDatabase(workload.edb.copy())
    versioned.apply(changeset, idb_predicates=program.idb_predicates)
    effective = versioned.changes_since(0)
    post_db = versioned.db

    entry: dict = {
        "inserts": effective.total_inserts(),
        "deletes": effective.total_deletes(),
    }

    # Steady-state serving: one live IDB across every repeat, exactly
    # like a MaterializedView absorbing an update stream.  Between
    # timed runs the *inverse* changeset is maintained (untimed) to
    # restore the pre state — maintenance is exact in both directions,
    # so the state round-trips.  An untimed warm-up pair first absorbs
    # the per-view one-time costs (kernel compilation, hash index
    # construction); refreshes only ever pay index *maintenance*.
    kernels = KernelCache(symbols=post_db.symbols)
    inverse = Changeset(
        inserts={p: set(r) for p, r in effective.deletes.items()},
        deletes={p: set(r) for p, r in effective.inserts.items()})
    idb = seminaive_evaluate(program, workload.edb)
    run_counts = _copy_counts(counts)
    maintain(program, post_db, idb, effective, counts=run_counts,
             stats=EvalStats(), kernels=kernels)
    maintain(program, workload.edb, idb, inverse, counts=run_counts,
             stats=EvalStats(), kernels=kernels)
    incremental_s: list[float] = []
    maintained: Database | None = None
    stats = EvalStats()
    for repeat in range(max(1, repeats)):
        stats = EvalStats()
        budget = Budget(timeout_s=timeout_s)
        start = time.perf_counter()
        try:
            with budget.activate():
                maintain(program, post_db, idb, effective,
                         counts=run_counts, stats=stats,
                         kernels=kernels)
        except BudgetExceededError:
            entry["budget_exceeded"] = True
            entry["incremental_runs_ms"] = [
                round(s * 1000, 3) for s in incremental_s]
            return entry
        incremental_s.append(time.perf_counter() - start)
        maintained = idb
        if repeat < max(1, repeats) - 1:
            maintain(program, workload.edb, idb, inverse,
                     counts=run_counts, stats=EvalStats(),
                     kernels=kernels)
    entry["incremental_ms"] = round(
        statistics.median(incremental_s) * 1000, 3)
    entry["incremental_runs_ms"] = [round(s * 1000, 3)
                                    for s in incremental_s]
    entry["stats"] = stats.as_dict()

    recompute_s: list[float] = []
    recomputed: Database | None = None
    for _ in range(max(1, repeats)):
        budget = Budget(timeout_s=timeout_s)
        start = time.perf_counter()
        try:
            with budget.activate():
                recomputed = seminaive_evaluate(program, post_db)
        except BudgetExceededError:
            entry["budget_exceeded"] = True
            return entry
        recompute_s.append(time.perf_counter() - start)
    entry["recompute_ms"] = round(
        statistics.median(recompute_s) * 1000, 3)
    entry["recompute_runs_ms"] = [round(s * 1000, 3)
                                  for s in recompute_s]
    entry["speedup"] = round(
        entry["recompute_ms"] / max(entry["incremental_ms"], 1e-6), 3)
    assert maintained is not None and recomputed is not None
    entry["fingerprints_agree"] = (
        relation_fingerprint(maintained)
        == relation_fingerprint(recomputed))
    return entry


def run_incremental_benchmark(scale: str = "default", repeats: int = 3,
                              timeout_s: float | None = 120.0,
                              seed: int = DEFAULT_SEED,
                              fraction: float = CHANGE_FRACTION
                              ) -> dict:
    """Run the maintenance benchmark and return the report dict.

    Per workload, a ``fraction`` insert batch and a ``fraction`` delete
    batch are generated deterministically from ``seed`` (recombined
    column values for inserts, sampled existing rows for deletes), and
    each batch is measured separately — update-vs-recompute behaviour
    differs fundamentally between the semi-naive insertion path and the
    counting/DRed deletion path, so the report keeps them apart.
    """
    report: dict = {
        "version": REPORT_VERSION,
        "scale": scale,
        "repeats": repeats,
        "seed": seed,
        "change_fraction": fraction,
        "python": platform.python_version(),
        "workloads": [],
    }
    for workload in _maintenance_workloads(scale, seed=seed):
        pre_idb = seminaive_evaluate(workload.program, workload.edb)
        counts = support_counts(workload.program, workload.edb, pre_idb)
        rng = random.Random(seed + 101)
        insert_batch = random_changeset(workload.edb, rng,
                                        insert_fraction=fraction)
        delete_batch = random_changeset(workload.edb, rng,
                                        delete_fraction=fraction)
        block = {
            "name": workload.name,
            "edb_facts": workload.edb.total_facts(),
            "idb_facts": pre_idb.total_facts(),
            "insert": _bench_mode(workload, counts, insert_batch,
                                  repeats, timeout_s),
            "delete": _bench_mode(workload, counts, delete_batch,
                                  repeats, timeout_s),
        }
        report["workloads"].append(block)

    summary: dict = {}
    for block in report["workloads"]:
        key = {"transitive_closure": "tc", "same_generation": "sg",
               "magic": "magic"}.get(block["name"], block["name"])
        for mode in ("insert", "delete"):
            speedup = block[mode].get("speedup")
            if speedup is not None:
                summary[f"{key}_{mode}_speedup"] = speedup
    report["summary"] = summary
    return report


def write_incremental_benchmark(report: dict,
                                path: str = DEFAULT_REPORT_PATH
                                ) -> None:
    """Write the report as ``BENCH_incremental.json``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def regression_failures(report: dict,
                        min_insert_speedup: float | None = None,
                        min_delete_speedup: float | None = None,
                        workload: str = "transitive_closure",
                        min_repeats: int = MIN_GATE_REPEATS
                        ) -> list[str]:
    """Check the report against the CI gate; returns failure messages.

    Fails when the report was measured with fewer than ``min_repeats``
    repeats, when any maintained IDB disagrees with the from-scratch
    recomputation, or when the ``workload`` row's insert/delete speedup
    is below the respective threshold.
    """
    failures: list[str] = []
    repeats = report.get("repeats", 0)
    if repeats < min_repeats:
        failures.append(
            f"report measured with repeats={repeats}; gates need "
            f">= {min_repeats} for stable medians")
    gate_block = None
    for block in report.get("workloads", []):
        if block["name"] == workload:
            gate_block = block
        for mode in ("insert", "delete"):
            entry = block.get(mode, {})
            if entry.get("budget_exceeded"):
                failures.append(
                    f"{block['name']}/{mode}: budget exceeded")
            elif entry.get("fingerprints_agree") is False:
                failures.append(
                    f"{block['name']}/{mode}: maintained IDB disagrees "
                    "with from-scratch recomputation")
    if gate_block is None:
        failures.append(f"workload {workload!r} missing from report")
        return failures
    for mode, minimum in (("insert", min_insert_speedup),
                          ("delete", min_delete_speedup)):
        if minimum is None:
            continue
        speedup = gate_block[mode].get("speedup")
        if speedup is None:
            failures.append(
                f"{workload}/{mode}: no speedup measurement")
        elif speedup < minimum:
            failures.append(
                f"{workload}/{mode}: maintenance is only "
                f"{speedup:.2f}x faster than recomputation "
                f"(required {minimum:.2f}x)")
    return failures
