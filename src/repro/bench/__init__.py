"""Benchmark harness and the reproduction experiments E1..E10."""

from .harness import (Measurement, Table, check_same_answers,
                      emit_engine_baseline, measure)
from .engine_bench import (regression_failures, run_engine_benchmark,
                           write_engine_benchmark)
from .experiments import (ALL_EXPERIMENTS, experiment_e1, experiment_e2,
                          experiment_e3, experiment_e4, experiment_e5,
                          experiment_e6, experiment_e7, experiment_e8,
                          experiment_e9, experiment_e10, run_all)

__all__ = [
    "Measurement", "Table", "check_same_answers", "measure",
    "emit_engine_baseline", "regression_failures",
    "run_engine_benchmark", "write_engine_benchmark",
    "ALL_EXPERIMENTS", "experiment_e1", "experiment_e2", "experiment_e3",
    "experiment_e4", "experiment_e5", "experiment_e6", "experiment_e7",
    "experiment_e8", "experiment_e9", "experiment_e10", "run_all",
]
