"""Benchmark harness and the reproduction experiments E1..E10."""

from .harness import Measurement, Table, check_same_answers, measure
from .experiments import (ALL_EXPERIMENTS, experiment_e1, experiment_e2,
                          experiment_e3, experiment_e4, experiment_e5,
                          experiment_e6, experiment_e7, experiment_e8,
                          experiment_e9, experiment_e10, run_all)

__all__ = [
    "Measurement", "Table", "check_same_answers", "measure",
    "ALL_EXPERIMENTS", "experiment_e1", "experiment_e2", "experiment_e3",
    "experiment_e4", "experiment_e5", "experiment_e6", "experiment_e7",
    "experiment_e8", "experiment_e9", "experiment_e10", "run_all",
]
