"""Cost-based optimizer benchmark: the ``BENCH_optimizer.json`` artifact.

Where :mod:`repro.bench.engine_bench` tracks the raw engines, this
report answers a different question: *does plan enumeration pay for
itself?*  Each workload is a (program, EDB, query) triple where the
rewrite choice matters — a bound-argument query over a recursive
program, where the enumerating optimizer should pick a magic-sets
candidate while the adaptive planner materializes the full fixpoint —
plus a free-query control where the identity candidate should win and
the two planners ought to tie.

Per workload the report records the chosen plan (transform labels,
program fingerprint, estimated cost, group/path counts), the
enumeration time, both planners' timed entries, and a *paired* speedup:
the adaptive and cbo runs alternate back-to-back (best-of over repeats,
collector paused) so machine noise cannot fake a win — the same
discipline as the engine report's interleaved ratio cells.

:func:`regression_failures` is the CI gate: answers must agree between
the two planners on every workload, enumeration must stay under the
per-workload budget, and — when a floor is passed — at least one
workload where rewrite choice matters must clear the minimum speedup.
"""

from __future__ import annotations

import json
import platform
import random
from dataclasses import dataclass

from ..datalog.atoms import Atom
from ..datalog.parser import parse_program
from ..datalog.program import Program
from ..datalog.terms import Constant, Variable
from ..engine.engine import evaluate
from ..engine.optimizer import ChosenPlan, cbo_evaluate, choose_plan
from ..facts.database import Database
from .engine_bench import (MIN_GATE_REPEATS, SAME_GENERATION, _entry,
                           _paired_ratio, _query_rows, _timed)
from ..workloads.generators import (random_digraph, tree_edges,
                                    transitive_closure_program)

#: Report format version (bump when the JSON shape changes).
REPORT_VERSION = 1

#: Default artifact filename.
DEFAULT_REPORT_PATH = "BENCH_optimizer.json"

#: Default RNG seed (matches the engine report so the bound-TC EDB here
#: is directly comparable to its ``magic`` workload).
DEFAULT_SEED = 7

#: Per-workload ceiling on plan-enumeration time, in milliseconds.  The
#: whole point of a *bounded* rewrite space is that choosing a plan is
#: negligible next to running one; the gate enforces it.
MAX_ENUMERATION_MS = 50.0

#: Scale presets: ``(nodes, edges)`` for the TC graphs, ``(depth,
#: fanout)`` for the same-generation tree.
SCALES: dict[str, dict[str, tuple[int, int]]] = {
    "smoke": {
        "bound_tc": (120, 360),
        "bound_sg": (3, 3),
        "free_tc": (80, 240),
    },
    "default": {
        "bound_tc": (300, 900),
        "bound_sg": (4, 3),
        "free_tc": (200, 600),
    },
    "large": {
        "bound_tc": (600, 2000),
        "bound_sg": (5, 3),
        "free_tc": (400, 1400),
    },
}


@dataclass(frozen=True)
class OptimizerWorkload:
    """One scenario: a program, an EDB, a query, and whether the
    rewrite space is expected to beat straight-line evaluation."""

    name: str
    program: Program
    edb: Database
    query: Atom
    #: True when a rewrite (magic) should win; False for controls where
    #: the identity candidate should be chosen and the planners tie.
    rewrite_matters: bool


def _sg_database(depth: int, fanout: int) -> Database:
    db = tree_edges(depth, fanout, pred="par")
    people = sorted({value for row in db.facts("par") for value in row},
                    key=str)
    for person in people:
        db.add_fact("person", person)
    return db


def build_workloads(scale: str = "default",
                    seed: int = DEFAULT_SEED) -> list[OptimizerWorkload]:
    """The benchmark scenarios at the given scale preset."""
    try:
        params = SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; expected one of "
            f"{sorted(SCALES)}") from None
    tc_program = parse_program(transitive_closure_program())
    tc_nodes, tc_edges = params["bound_tc"]
    depth, fanout = params["bound_sg"]
    free_nodes, free_edges = params["free_tc"]
    sg_db = _sg_database(depth, fanout)
    # A leaf of the tree: the deepest, highest-numbered person.  Its
    # generation cohort is small next to the full sg relation.
    leaf = max((v for row in sg_db.facts("par") for v in row),
               key=lambda v: int(str(v)[1:]))
    return [
        OptimizerWorkload(
            name="bound_tc",
            program=tc_program,
            edb=random_digraph(tc_nodes, tc_edges,
                               random.Random(seed + 16)),
            query=Atom("reach", (Constant("n0"), Variable("Y"))),
            rewrite_matters=True),
        OptimizerWorkload(
            name="bound_sg",
            program=parse_program(SAME_GENERATION),
            edb=sg_db,
            query=Atom("sg", (Constant(leaf), Variable("Y"))),
            rewrite_matters=True),
        OptimizerWorkload(
            name="free_tc",
            program=tc_program,
            edb=random_digraph(free_nodes, free_edges,
                               random.Random(seed)),
            query=Atom("reach", (Variable("X"), Variable("Y"))),
            rewrite_matters=False),
    ]


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------

def _adaptive_answers(workload: OptimizerWorkload, result) -> frozenset:
    rows = result.facts(workload.query.pred)
    return _query_rows(rows, workload.query)


def _cbo_answers_of(workload: OptimizerWorkload, result) -> frozenset:
    if result.magic is not None:
        rows = result.magic.answers(result.idb)
    else:
        rows = result.facts(workload.query.pred)
    return _query_rows(rows, workload.query)


def _choice_block(choice: ChosenPlan) -> dict:
    return {
        "label": choice.label,
        "transforms": list(choice.transforms),
        "fingerprint": choice.fingerprint,
        "estimated_cost": None if choice.cost == float("inf")
        else round(choice.cost, 1),
        "groups": choice.groups,
        "paths": choice.paths,
    }


def run_optimizer_benchmark(scale: str = "default", repeats: int = 3,
                            timeout_s: float | None = 120.0,
                            seed: int = DEFAULT_SEED) -> dict:
    """Run the optimizer comparison and return the report dict."""
    workloads = build_workloads(scale, seed=seed)
    report: dict = {
        "version": REPORT_VERSION,
        "scale": scale,
        "repeats": repeats,
        "seed": seed,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workloads": [],
    }
    for workload in workloads:
        query = workload.query
        has_bound = any(isinstance(arg, Constant) for arg in query.args)
        cbo_query = query if has_bound else None

        def run_adaptive():
            return evaluate(workload.program, workload.edb,
                            planner="adaptive")

        def run_cbo():
            return cbo_evaluate(workload.program, workload.edb,
                                query=cbo_query)

        # The plan decision itself, measured separately so the report
        # can show enumeration cost next to the evaluation it saves.
        choice = choose_plan(workload.program, workload.edb,
                             query=cbo_query)
        adaptive_seconds, adaptive_result = _timed(run_adaptive,
                                                   repeats, timeout_s)
        cbo_seconds, cbo_result = _timed(run_cbo, repeats, timeout_s)
        speedup = _paired_ratio(run_adaptive, run_cbo, repeats,
                                timeout_s)
        entry: dict = {
            "name": workload.name,
            "query": str(query),
            "rewrite_matters": workload.rewrite_matters,
            "chosen": _choice_block(choice),
            "enumeration_ms": round(
                choice.enumeration_seconds * 1000.0, 3),
            "adaptive": _entry(adaptive_seconds, adaptive_result),
            "cbo": _entry(cbo_seconds, cbo_result),
            "speedup": speedup,
        }
        answers_agree = None
        if adaptive_result is not None and cbo_result is not None:
            answers_agree = (
                _adaptive_answers(workload, adaptive_result)
                == _cbo_answers_of(workload, cbo_result))
        entry["agreement"] = {"answers_agree": answers_agree}
        report["workloads"].append(entry)
    return report


def write_optimizer_benchmark(report: dict,
                              path: str = DEFAULT_REPORT_PATH) -> None:
    """Write the report as ``BENCH_optimizer.json`` (stable key order)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def regression_failures(report: dict,
                        min_cbo_speedup: float | None = None,
                        max_enumeration_ms: float = MAX_ENUMERATION_MS,
                        min_repeats: int = MIN_GATE_REPEATS
                        ) -> list[str]:
    """Check the report against the CI gate; returns failure messages.

    Always enforced: measured with at least ``min_repeats`` repeats,
    every cell completed under budget, answers agree between the
    adaptive baseline and the optimizer's chosen plan on every
    workload, and plan enumeration stayed under ``max_enumeration_ms``
    per workload.  With ``min_cbo_speedup`` set, additionally fails
    unless at least one workload flagged ``rewrite_matters`` cleared
    that paired speedup.
    """
    failures: list[str] = []
    repeats = report.get("repeats", 0)
    if repeats < min_repeats:
        failures.append(
            f"report measured with repeats={repeats}; gates need "
            f">= {min_repeats} for stable best-of ratios")
    best_rewrite_speedup: float | None = None
    for entry in report.get("workloads", []):
        name = entry.get("name", "?")
        for side in ("adaptive", "cbo"):
            cell = entry.get(side, {})
            if "wall_ms" not in cell or cell.get("budget_exceeded"):
                failures.append(
                    f"{name}/{side}: cell missing or budget exceeded")
        agree = entry.get("agreement", {}).get("answers_agree")
        if agree is not True:
            failures.append(
                f"{name}: adaptive and cbo answers "
                + ("not comparable (a run exhausted its budget)"
                   if agree is None else "disagree"))
        enumeration_ms = entry.get("enumeration_ms")
        if enumeration_ms is None or enumeration_ms >= max_enumeration_ms:
            failures.append(
                f"{name}: plan enumeration took "
                f"{enumeration_ms if enumeration_ms is not None else '?'}"
                f" ms (budget < {max_enumeration_ms:.0f} ms)")
        if entry.get("rewrite_matters") and entry.get("speedup") \
                is not None:
            speedup = entry["speedup"]
            if best_rewrite_speedup is None \
                    or speedup > best_rewrite_speedup:
                best_rewrite_speedup = speedup
    if min_cbo_speedup is not None:
        if best_rewrite_speedup is None:
            failures.append(
                "no rewrite-matters workload produced a speedup ratio")
        elif best_rewrite_speedup < min_cbo_speedup:
            failures.append(
                f"best cbo speedup {best_rewrite_speedup:.2f}x is below "
                f"the {min_cbo_speedup:.2f}x floor on every workload "
                "where rewrite choice matters")
    return failures
