"""Engine benchmark baseline: the ``BENCH_engine.json`` artifact.

This is the perf trajectory for the evaluation engines themselves (as
opposed to :mod:`repro.bench.experiments`, which measures the paper's
*optimizations*): a fixed set of recursive workloads — transitive
closure, same-generation, and a bound-argument magic workload — each
run under every evaluation method (naive, semi-naive, magic, top-down)
and, for the bottom-up methods, under both executors (compiled kernels
vs. the reference interpreter).

Each entry records median wall time over repeats *and* the
:class:`~repro.engine.bindings.EvalStats` counters, plus a fingerprint
of the result database, so that

- this PR and every future one can quantify hot-path wins against a
  stored baseline, and
- the differential guarantee is checked where it is measured: both
  executors must produce identical databases and ``derivations``
  counts, and all four methods must agree on the query answers.

:func:`regression_failures` turns the report into a CI gate: compiled
must not be slower than interpreted by more than the allowed factor on
the transitive-closure workload, and every agreement flag must hold.
"""

from __future__ import annotations

import gc
import hashlib
import json
import platform
import random
import statistics
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..datalog.atoms import Atom
from ..datalog.parser import parse_program
from ..datalog.program import Program
from ..datalog.terms import Constant, Variable
from ..engine.engine import (EvaluationResult, evaluate,
                             evaluate_with_magic)
from ..engine.profile import EvalProfile
from ..engine.topdown import topdown_query
from ..errors import BudgetExceededError
from ..facts.database import Database
from ..runtime.budget import Budget
from ..workloads.generators import (random_digraph, tree_edges,
                                    transitive_closure_program)

#: Executors compared on every bottom-up method.
EXECUTORS = ("compiled", "interpreted")

#: Semi-naive executor configurations compared per workload: the plain
#: columnless baseline against every interning x planner combination,
#: plus the sharded parallel executor on the full fast path.
#: ``baseline`` (greedy planner, raw storage, single-threaded compiled)
#: is the reference the ``interned_speedup`` and ``parallel_speedup``
#: metrics and the CI gates divide by; ``interned_adaptive`` is the
#: single-threaded fast path — and the reference ``vectorized_speedup``
#: divides by; ``parallel`` runs the same knobs through the sharded
#: executor at :data:`~repro.engine.parallel.DEFAULT_SHARDS`;
#: ``vectorized`` runs the same knobs as whole-frontier batch kernels
#: over columnar storage.
SEMINAIVE_CONFIGS = (
    ("baseline", {"planner": "greedy", "interning": "off"}),
    ("interned_greedy", {"planner": "greedy", "interning": "on"}),
    ("adaptive", {"planner": "adaptive", "interning": "off"}),
    ("interned_adaptive", {"planner": "adaptive", "interning": "on"}),
    ("parallel", {"planner": "adaptive", "interning": "on",
                  "executor": "parallel", "shards": 4}),
    ("vectorized", {"planner": "adaptive", "interning": "on",
                    "executor": "vectorized"}),
)

#: Report format version (bump when the JSON shape changes).
REPORT_VERSION = 2

#: Default artifact filename.
DEFAULT_REPORT_PATH = "BENCH_engine.json"

SAME_GENERATION = """
    r0: sg(X, X) :- person(X).
    r1: sg(X, Y) :- par(X, Xp), sg(Xp, Yp), par(Y, Yp).
"""


@dataclass(frozen=True)
class EngineWorkload:
    """One benchmark scenario: a program, an EDB and a query atom."""

    name: str
    program: Program
    edb: Database
    query: Atom
    answer_pred: str


def _digraph(nodes: int, edges: int, seed: int) -> Database:
    return random_digraph(nodes, edges, random.Random(seed))


def _sg_database(depth: int, fanout: int) -> Database:
    db = tree_edges(depth, fanout, pred="par")
    people = {value for row in db.facts("par") for value in row}
    for person in sorted(people):
        db.add_fact("person", person)
    return db


#: Scale presets: CI smoke stays fast; ``default`` is the scale the
#: acceptance numbers are quoted at.
SCALES: dict[str, dict[str, tuple]] = {
    "smoke": {
        "transitive_closure": (80, 240),
        "same_generation": (3, 3),
        "magic": (120, 360),
    },
    "default": {
        "transitive_closure": (200, 600),
        "same_generation": (4, 3),
        "magic": (300, 900),
    },
    "large": {
        "transitive_closure": (400, 1400),
        "same_generation": (5, 3),
        "magic": (600, 2000),
    },
}


#: Default RNG seed for the generated EDBs: fixed so every run of a
#: given (scale, seed) measures the identical database and fingerprints
#: are comparable across machines and CI runs.
DEFAULT_SEED = 7


def build_workloads(scale: str = "default",
                    seed: int = DEFAULT_SEED) -> list[EngineWorkload]:
    """The benchmark scenarios at the given scale preset."""
    try:
        params = SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; expected one of "
            f"{sorted(SCALES)}") from None
    tc_program = parse_program(transitive_closure_program())
    nodes, edges = params["transitive_closure"]
    depth, fanout = params["same_generation"]
    magic_nodes, magic_edges = params["magic"]
    free = Atom("reach", (Variable("X"), Variable("Y")))
    return [
        EngineWorkload(
            name="transitive_closure",
            program=tc_program,
            edb=_digraph(nodes, edges, seed=seed),
            query=free,
            answer_pred="reach"),
        EngineWorkload(
            name="same_generation",
            program=parse_program(SAME_GENERATION),
            edb=_sg_database(depth, fanout),
            query=Atom("sg", (Variable("X"), Variable("Y"))),
            answer_pred="sg"),
        EngineWorkload(
            name="magic",
            program=tc_program,
            edb=_digraph(magic_nodes, magic_edges, seed=seed + 16),
            query=Atom("reach", (Constant("n0"), Variable("Y"))),
            answer_pred="reach"),
    ]


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------

def _timed(run: Callable[[], EvaluationResult], repeats: int,
           timeout_s: float | None):
    """Run ``repeats`` times under a deadline; keep the last result.

    The cyclic collector is paused while the clock runs and invoked
    explicitly between repeats: a generation-2 collection over the
    millions of live row tuples an evaluation holds costs tens of
    milliseconds and lands in whichever cell happens to cross the
    allocation threshold — which would be charged to that cell's
    measurement rather than to the engine under test.
    """
    seconds: list[float] = []
    result: Optional[EvaluationResult] = None
    gc_was_enabled = gc.isenabled()
    for _ in range(max(1, repeats)):
        budget = Budget(timeout_s=timeout_s)
        gc.disable()
        start = time.perf_counter()
        try:
            with budget.activate():
                result = run()
        except BudgetExceededError:
            seconds.append(time.perf_counter() - start)
            return seconds, None
        finally:
            if gc_was_enabled:
                gc.enable()
        seconds.append(time.perf_counter() - start)
        gc.collect()
    return seconds, result


def _paired_ratio(run_a: Callable[[], EvaluationResult],
                  run_b: Callable[[], EvaluationResult],
                  repeats: int,
                  timeout_s: float | None) -> float | None:
    """Best-of interleaved a/b wall ratio (>1 means b is faster).

    Speedup gates compare two cells, and timing them in separate
    windows lets a burst of machine noise (CPU steal, frequency
    shifts, a neighbouring process) land under exactly one of them —
    faking a regression or an improvement no code change caused.  Here
    the two runs alternate back-to-back, so a noisy window degrades
    both sides, and the per-side minimum over repeats then discards
    the noisy windows entirely.  Returns None when a run exhausts its
    budget.
    """
    best_a = best_b = float("inf")
    gc_was_enabled = gc.isenabled()
    for _ in range(max(1, repeats)):
        for side, run in (("a", run_a), ("b", run_b)):
            budget = Budget(timeout_s=timeout_s)
            gc.disable()
            start = time.perf_counter()
            try:
                with budget.activate():
                    run()
            except BudgetExceededError:
                return None
            finally:
                if gc_was_enabled:
                    gc.enable()
            elapsed = time.perf_counter() - start
            if side == "a":
                best_a = min(best_a, elapsed)
            else:
                best_b = min(best_b, elapsed)
            gc.collect()
    return round(best_a / max(best_b, 1e-6), 3)


def _fingerprint(idb: Database) -> str:
    return hashlib.sha256(idb.to_text().encode("utf-8")).hexdigest()[:16]


def _query_rows(rows, query: Atom) -> frozenset[tuple]:
    """Filter full tuples on the query's constant positions."""
    wanted = []
    for row in rows:
        keep = True
        binding: dict[Variable, object] = {}
        for value, arg in zip(row, query.args):
            if isinstance(arg, Constant):
                if arg.value != value:
                    keep = False
                    break
            elif isinstance(arg, Variable):
                if binding.setdefault(arg, value) != value:
                    keep = False
                    break
        if keep:
            wanted.append(row)
    return frozenset(wanted)


def _entry(seconds: list[float],
           result: Optional[EvaluationResult]) -> dict:
    entry: dict = {
        "wall_ms": round(statistics.median(seconds) * 1000, 3),
        "best_ms": round(min(seconds) * 1000, 3),
        "runs_ms": [round(s * 1000, 3) for s in seconds],
    }
    if result is None:
        entry["budget_exceeded"] = True
        return entry
    entry["stats"] = result.stats.as_dict()
    entry["idb_facts"] = sum(
        len(result.idb.relation(p)) for p in result.idb)
    entry["fingerprint"] = _fingerprint(result.idb)
    return entry


def run_engine_benchmark(scale: str = "default", repeats: int = 3,
                         timeout_s: float | None = 120.0,
                         seed: int = DEFAULT_SEED,
                         focus_executor: str | None = None,
                         profile: bool = False) -> dict:
    """Run the engine baseline and return the report dict.

    Per workload: every bottom-up method (naive, seminaive, magic) runs
    under both executors; top-down runs once (it has no compiled path);
    the semi-naive evaluation additionally runs under every
    :data:`SEMINAIVE_CONFIGS` configuration (interning x planner, plus
    the sharded parallel executor).  The report carries per-entry
    timings/counters, an ``agreement`` block recording the differential
    checks, and per-workload ``interned_speedup`` /
    ``parallel_speedup`` — baseline wall time over the interned+adaptive
    (resp. parallel) configuration's — plus ``vectorized_speedup``,
    the interned+adaptive wall time over the vectorized executor's
    (both run the identical planner and storage knobs, so the ratio
    isolates the batch-kernel win).

    ``focus_executor`` (``"parallel"`` or ``"vectorized"``) is the CI
    smoke mode: it skips the method x executor grid and top-down,
    measuring only the cells the focused speedup needs, and stamps
    ``focus`` into the report so the gate knows the grid cells are
    intentionally absent.

    ``profile=True`` attaches a per-kernel wall-time and per-round
    delta-size breakdown (:class:`~repro.engine.profile.EvalProfile`)
    to every semi-naive configuration cell.
    """
    if focus_executor not in (None, "parallel", "vectorized"):
        raise ValueError(
            f"unknown focus executor {focus_executor!r}; "
            "expected 'parallel' or 'vectorized'")
    full_grid = focus_executor is None
    report: dict = {
        "version": REPORT_VERSION,
        "scale": scale,
        "repeats": repeats,
        "seed": seed,
        "python": platform.python_version(),
        "workloads": [],
    }
    if focus_executor is not None:
        report["focus"] = focus_executor
    for workload in build_workloads(scale, seed=seed):
        block: dict = {
            "name": workload.name,
            "edb_facts": workload.edb.total_facts(),
            "methods": {},
        }
        answers: dict[str, frozenset] = {}
        derivations: dict[tuple[str, str], int] = {}
        fingerprints: dict[tuple[str, str], str] = {}

        def bottom_up(method: str,
                      run_for: Callable[[str], EvaluationResult],
                      _workload=workload, _block=block,
                      _answers=answers, _derivations=derivations,
                      _fingerprints=fingerprints) -> None:
            per_method: dict = {}
            for executor in EXECUTORS:
                seconds, result = _timed(
                    lambda: run_for(executor), repeats, timeout_s)
                per_method[executor] = _entry(seconds, result)
                if result is None:
                    continue
                _derivations[(method, executor)] = \
                    result.stats.derivations
                _fingerprints[(method, executor)] = \
                    per_method[executor]["fingerprint"]
                if method == "magic":
                    assert result.magic is not None
                    rows = result.magic.answers(result.idb)
                else:
                    rows = result.facts(_workload.answer_pred)
                _answers.setdefault(
                    method, _query_rows(rows, _workload.query))
            compiled = per_method["compiled"]
            interpreted = per_method["interpreted"]
            if "fingerprint" in compiled and "fingerprint" in interpreted:
                per_method["speedup"] = round(
                    interpreted["wall_ms"]
                    / max(compiled["wall_ms"], 1e-6), 3)
                per_method["executors_agree"] = (
                    compiled["fingerprint"] == interpreted["fingerprint"]
                    and compiled["stats"]["derivations"]
                    == interpreted["stats"]["derivations"])
            _block["methods"][method] = per_method

        if full_grid:
            bottom_up("naive", lambda executor: evaluate(
                workload.program, workload.edb, method="naive",
                executor=executor))
            bottom_up("seminaive", lambda executor: evaluate(
                workload.program, workload.edb, executor=executor))
            bottom_up("magic", lambda executor: evaluate_with_magic(
                workload.program, workload.edb, workload.query,
                executor=executor))

        # Semi-naive evaluation across the configuration matrix.  The
        # baseline configuration equals the seminaive/compiled entry
        # above (greedy planner, raw storage), so its measurement is
        # reused rather than re-timed — except in focus mode, where
        # the grid was skipped and baseline is timed directly.
        configs: dict = {}
        config_fingerprints: dict[str, str] = {}
        # The vectorized speedup divides interned_adaptive by
        # vectorized, so its focus mode keeps the denominator cell too.
        focus_configs = {"baseline", focus_executor}
        if focus_executor == "vectorized":
            focus_configs.add("interned_adaptive")
        config_runs: dict[str, Callable[[], EvaluationResult]] = {}
        for config_name, knobs in SEMINAIVE_CONFIGS:
            if not full_grid and config_name not in focus_configs:
                continue
            holder: dict = {}

            def run_config(_knobs=knobs,
                           _holder=holder) -> EvaluationResult:
                prof = EvalProfile() if profile else None
                result = evaluate(workload.program, workload.edb,
                                  **{"executor": "compiled",
                                     **_knobs},
                                  profile=prof)
                if prof is not None:
                    _holder["profile"] = prof
                return result

            config_runs[config_name] = run_config
            if config_name == "baseline" and full_grid:
                entry = dict(block["methods"]["seminaive"]["compiled"])
            else:
                seconds, result = _timed(run_config, repeats, timeout_s)
                entry = _entry(seconds, result)
                if result is not None and "profile" in holder:
                    entry["profile"] = holder["profile"].as_dict()
            configs[config_name] = entry
            if "fingerprint" in entry:
                config_fingerprints[config_name] = entry["fingerprint"]
        block["seminaive_configs"] = configs
        baseline = configs["baseline"]
        fast = configs.get("interned_adaptive", {})
        if "fingerprint" in baseline and "fingerprint" in fast:
            block["interned_speedup"] = round(
                baseline["wall_ms"] / max(fast["wall_ms"], 1e-6), 3)
        sharded = configs.get("parallel", {})
        if "fingerprint" in baseline and "fingerprint" in sharded:
            block["parallel_speedup"] = round(
                baseline["wall_ms"] / max(sharded["wall_ms"], 1e-6), 3)
        batched = configs.get("vectorized", {})
        if "fingerprint" in fast and "fingerprint" in batched:
            # This ratio is a CI gate, so it is re-measured with the
            # two cells interleaved (see :func:`_paired_ratio`) rather
            # than derived from the medians above, which were taken in
            # separate windows.
            ratio = _paired_ratio(config_runs["interned_adaptive"],
                                  config_runs["vectorized"],
                                  repeats, timeout_s)
            if ratio is not None:
                block["vectorized_speedup"] = ratio

        if full_grid:
            seconds, topdown = _timed_topdown(
                workload, repeats, timeout_s)
            td_entry: dict = {
                "wall_ms": round(statistics.median(seconds) * 1000, 3)}
            if topdown is None:
                td_entry["budget_exceeded"] = True
            else:
                td_entry["answers"] = len(topdown.answers)
                td_entry["stats"] = topdown.stats.as_dict()
                answers["topdown"] = _query_rows(
                    topdown.project(workload.query), workload.query)
            block["methods"]["topdown"] = td_entry

        block["agreement"] = {
            "configs_agree": len(set(
                config_fingerprints.values())) <= 1,
            "configs_compared": sorted(config_fingerprints),
        }
        if full_grid:
            block["agreement"].update({
                "methods_agree": len(set(answers.values())) <= 1,
                "methods_compared": sorted(answers),
                "executors_agree": all(
                    block["methods"][m].get("executors_agree", True)
                    for m in ("naive", "seminaive", "magic")),
                "naive_matches_seminaive": fingerprints.get(
                    ("naive", "compiled")) == fingerprints.get(
                    ("seminaive", "compiled")),
            })
        report["workloads"].append(block)

    tc = _workload_block(report, "transitive_closure")
    summary = {}
    if tc is not None:
        for method in ("naive", "seminaive", "magic"):
            speedup = tc["methods"].get(method, {}).get("speedup")
            if speedup is not None:
                summary[f"tc_{method}_speedup"] = speedup
    for name, key in (("transitive_closure", "tc"),
                      ("same_generation", "sg"), ("magic", "magic")):
        block = _workload_block(report, name)
        if block is None:
            continue
        if "interned_speedup" in block:
            summary[f"{key}_interned_speedup"] = \
                block["interned_speedup"]
        if "parallel_speedup" in block:
            summary[f"{key}_parallel_speedup"] = \
                block["parallel_speedup"]
        if "vectorized_speedup" in block:
            summary[f"{key}_vectorized_speedup"] = \
                block["vectorized_speedup"]
    report["summary"] = summary
    return report


def _timed_topdown(workload: EngineWorkload, repeats: int,
                   timeout_s: float | None):
    seconds: list[float] = []
    result = None
    for _ in range(max(1, repeats)):
        budget = Budget(timeout_s=timeout_s)
        start = time.perf_counter()
        try:
            with budget.activate():
                result = topdown_query(workload.program, workload.edb,
                                       workload.query)
        except BudgetExceededError:
            seconds.append(time.perf_counter() - start)
            return seconds, None
        seconds.append(time.perf_counter() - start)
    return seconds, result


def _workload_block(report: dict, name: str) -> dict | None:
    for block in report["workloads"]:
        if block["name"] == name:
            return block
    return None


# ---------------------------------------------------------------------------
# Artifact + regression gate
# ---------------------------------------------------------------------------

def write_engine_benchmark(report: dict,
                           path: str = DEFAULT_REPORT_PATH) -> None:
    """Write the report as ``BENCH_engine.json`` (stable key order)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


#: Gates refuse reports measured with fewer repeats than this: medians
#: over >=3 runs are what keep speedup thresholds from flapping.
MIN_GATE_REPEATS = 3


#: Methods the per-cell executor floors apply to (top-down has no
#: compiled path and is excluded).
GATED_METHODS = ("naive", "seminaive", "magic")


def regression_failures(report: dict, max_slowdown: float = 1.5,
                        workload: str = "transitive_closure",
                        min_interned_speedup: float | None = None,
                        min_parallel_speedup: float | None = None,
                        min_vectorized_speedup: float | None = None,
                        min_repeats: int = MIN_GATE_REPEATS
                        ) -> list[str]:
    """Check the report against the CI gate; returns failure messages.

    Fails when the report was measured with fewer than ``min_repeats``
    repeats (single-run medians make every threshold below noise-
    sensitive), or when any differential agreement flag is false.

    The ``max_slowdown`` factor is a per-cell floor over the whole
    workload x executor grid: on *every* workload, (a) every
    naive/seminaive/magic cell must have completed under budget on both
    executors with the compiled executor no more than ``max_slowdown``x
    slower than the interpreted one, and (b) every semi-naive
    configuration cell — including the parallel executor's — must be no
    more than ``max_slowdown``x slower than the compiled baseline.

    With ``min_interned_speedup`` set, additionally fails when the
    interned+adaptive configuration is not at least that many times
    faster than the compiled baseline on the transitive-closure and
    same-generation workloads.  With ``min_parallel_speedup`` set,
    fails when the parallel executor is not at least that many times
    faster than the single-threaded compiled baseline on ``workload``.
    With ``min_vectorized_speedup`` set, fails when the vectorized
    executor is not at least that many times faster than the
    interned+adaptive compiled configuration on the transitive-closure
    and same-generation workloads.

    Focused reports (``focus`` stamped by the smoke mode) only carry
    the baseline and focused configuration, so the method-grid floors
    are skipped for them; the config floors and speedup gates still
    apply.
    """
    failures: list[str] = []
    repeats = report.get("repeats", 0)
    if repeats < min_repeats:
        failures.append(
            f"report measured with repeats={repeats}; gates need "
            f">= {min_repeats} for stable medians")
    if _workload_block(report, workload) is None:
        return [*failures, f"workload {workload!r} missing from report"]
    full_grid = report.get("focus") is None
    for entry in report["workloads"]:
        name = entry["name"]
        if full_grid:
            for method in GATED_METHODS:
                per_method = entry["methods"].get(method, {})
                for executor in EXECUTORS:
                    cell = per_method.get(executor, {})
                    if "wall_ms" not in cell or \
                            cell.get("budget_exceeded"):
                        failures.append(
                            f"{name}/{method}/{executor}: cell missing "
                            "or budget exceeded")
                speedup = per_method.get("speedup")
                if speedup is not None and \
                        speedup < 1.0 / max_slowdown:
                    failures.append(
                        f"{name}/{method}: compiled executor is "
                        f"{1.0 / speedup:.2f}x slower than interpreted "
                        f"(allowed {max_slowdown:.2f}x)")
        configs = entry.get("seminaive_configs", {})
        base_wall = configs.get("baseline", {}).get("wall_ms")
        for config_name, cell in configs.items():
            if config_name == "baseline":
                continue
            if "wall_ms" not in cell or cell.get("budget_exceeded"):
                failures.append(
                    f"{name}/{config_name}: cell missing or budget "
                    "exceeded")
                continue
            if base_wall is None:
                continue
            ratio = base_wall / max(cell["wall_ms"], 1e-6)
            if ratio < 1.0 / max_slowdown:
                failures.append(
                    f"{name}/{config_name}: {1.0 / ratio:.2f}x slower "
                    f"than the compiled baseline (allowed "
                    f"{max_slowdown:.2f}x)")
        agreement = entry.get("agreement", {})
        for flag in ("methods_agree", "executors_agree",
                     "naive_matches_seminaive", "configs_agree"):
            if agreement.get(flag) is False:
                failures.append(f"{name}: {flag} is false")
    if min_interned_speedup is not None:
        for name in ("transitive_closure", "same_generation"):
            entry = _workload_block(report, name)
            if entry is None:
                continue
            interned = entry.get("interned_speedup")
            if interned is None:
                failures.append(
                    f"{name}: no interned_speedup measurement "
                    "(budget exceeded?)")
            elif interned < min_interned_speedup:
                failures.append(
                    f"{name}: interned+adaptive is only {interned:.2f}x "
                    f"the compiled baseline (required "
                    f"{min_interned_speedup:.2f}x)")
    if min_parallel_speedup is not None:
        entry = _workload_block(report, workload)
        parallel = entry.get("parallel_speedup") if entry else None
        if parallel is None:
            failures.append(
                f"{workload}: no parallel_speedup measurement "
                "(budget exceeded?)")
        elif parallel < min_parallel_speedup:
            failures.append(
                f"{workload}: parallel executor is only "
                f"{parallel:.2f}x the single-threaded compiled "
                f"baseline (required {min_parallel_speedup:.2f}x)")
    if min_vectorized_speedup is not None:
        for name in ("transitive_closure", "same_generation"):
            entry = _workload_block(report, name)
            if entry is None:
                continue
            vectorized = entry.get("vectorized_speedup")
            if vectorized is None:
                failures.append(
                    f"{name}: no vectorized_speedup measurement "
                    "(budget exceeded?)")
            elif vectorized < min_vectorized_speedup:
                failures.append(
                    f"{name}: vectorized executor is only "
                    f"{vectorized:.2f}x the interned+adaptive compiled "
                    f"configuration (required "
                    f"{min_vectorized_speedup:.2f}x)")
    return failures
