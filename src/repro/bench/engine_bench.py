"""Engine benchmark baseline: the ``BENCH_engine.json`` artifact.

This is the perf trajectory for the evaluation engines themselves (as
opposed to :mod:`repro.bench.experiments`, which measures the paper's
*optimizations*): a fixed set of recursive workloads — transitive
closure, same-generation, and a bound-argument magic workload — each
run under every evaluation method (naive, semi-naive, magic, top-down)
and, for the bottom-up methods, under both executors (compiled kernels
vs. the reference interpreter).

Each entry records median wall time over repeats *and* the
:class:`~repro.engine.bindings.EvalStats` counters, plus a fingerprint
of the result database, so that

- this PR and every future one can quantify hot-path wins against a
  stored baseline, and
- the differential guarantee is checked where it is measured: both
  executors must produce identical databases and ``derivations``
  counts, and all four methods must agree on the query answers.

:func:`regression_failures` turns the report into a CI gate: compiled
must not be slower than interpreted by more than the allowed factor on
the transitive-closure workload, and every agreement flag must hold.
"""

from __future__ import annotations

import hashlib
import json
import platform
import random
import statistics
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..datalog.atoms import Atom
from ..datalog.parser import parse_program
from ..datalog.program import Program
from ..datalog.terms import Constant, Variable
from ..engine.engine import (EvaluationResult, evaluate,
                             evaluate_with_magic)
from ..engine.topdown import topdown_query
from ..errors import BudgetExceededError
from ..facts.database import Database
from ..runtime.budget import Budget
from ..workloads.generators import (random_digraph, tree_edges,
                                    transitive_closure_program)

#: Executors compared on every bottom-up method.
EXECUTORS = ("compiled", "interpreted")

#: Semi-naive compiled-executor configurations compared per workload:
#: the plain columnless baseline against every interning x planner
#: combination.  ``baseline`` (greedy planner, raw storage) is the
#: reference the ``interned_speedup`` metric and the CI gate divide by;
#: ``interned_adaptive`` is the full fast path.
SEMINAIVE_CONFIGS = (
    ("baseline", {"planner": "greedy", "interning": "off"}),
    ("interned_greedy", {"planner": "greedy", "interning": "on"}),
    ("adaptive", {"planner": "adaptive", "interning": "off"}),
    ("interned_adaptive", {"planner": "adaptive", "interning": "on"}),
)

#: Report format version (bump when the JSON shape changes).
REPORT_VERSION = 2

#: Default artifact filename.
DEFAULT_REPORT_PATH = "BENCH_engine.json"

SAME_GENERATION = """
    r0: sg(X, X) :- person(X).
    r1: sg(X, Y) :- par(X, Xp), sg(Xp, Yp), par(Y, Yp).
"""


@dataclass(frozen=True)
class EngineWorkload:
    """One benchmark scenario: a program, an EDB and a query atom."""

    name: str
    program: Program
    edb: Database
    query: Atom
    answer_pred: str


def _digraph(nodes: int, edges: int, seed: int) -> Database:
    return random_digraph(nodes, edges, random.Random(seed))


def _sg_database(depth: int, fanout: int) -> Database:
    db = tree_edges(depth, fanout, pred="par")
    people = {value for row in db.facts("par") for value in row}
    for person in sorted(people):
        db.add_fact("person", person)
    return db


#: Scale presets: CI smoke stays fast; ``default`` is the scale the
#: acceptance numbers are quoted at.
SCALES: dict[str, dict[str, tuple]] = {
    "smoke": {
        "transitive_closure": (80, 240),
        "same_generation": (3, 3),
        "magic": (120, 360),
    },
    "default": {
        "transitive_closure": (200, 600),
        "same_generation": (4, 3),
        "magic": (300, 900),
    },
    "large": {
        "transitive_closure": (400, 1400),
        "same_generation": (5, 3),
        "magic": (600, 2000),
    },
}


#: Default RNG seed for the generated EDBs: fixed so every run of a
#: given (scale, seed) measures the identical database and fingerprints
#: are comparable across machines and CI runs.
DEFAULT_SEED = 7


def build_workloads(scale: str = "default",
                    seed: int = DEFAULT_SEED) -> list[EngineWorkload]:
    """The benchmark scenarios at the given scale preset."""
    try:
        params = SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; expected one of "
            f"{sorted(SCALES)}") from None
    tc_program = parse_program(transitive_closure_program())
    nodes, edges = params["transitive_closure"]
    depth, fanout = params["same_generation"]
    magic_nodes, magic_edges = params["magic"]
    free = Atom("reach", (Variable("X"), Variable("Y")))
    return [
        EngineWorkload(
            name="transitive_closure",
            program=tc_program,
            edb=_digraph(nodes, edges, seed=seed),
            query=free,
            answer_pred="reach"),
        EngineWorkload(
            name="same_generation",
            program=parse_program(SAME_GENERATION),
            edb=_sg_database(depth, fanout),
            query=Atom("sg", (Variable("X"), Variable("Y"))),
            answer_pred="sg"),
        EngineWorkload(
            name="magic",
            program=tc_program,
            edb=_digraph(magic_nodes, magic_edges, seed=seed + 16),
            query=Atom("reach", (Constant("n0"), Variable("Y"))),
            answer_pred="reach"),
    ]


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------

def _timed(run: Callable[[], EvaluationResult], repeats: int,
           timeout_s: float | None):
    """Run ``repeats`` times under a deadline; keep the last result."""
    seconds: list[float] = []
    result: Optional[EvaluationResult] = None
    for _ in range(max(1, repeats)):
        budget = Budget(timeout_s=timeout_s)
        start = time.perf_counter()
        try:
            with budget.activate():
                result = run()
        except BudgetExceededError:
            seconds.append(time.perf_counter() - start)
            return seconds, None
        seconds.append(time.perf_counter() - start)
    return seconds, result


def _fingerprint(idb: Database) -> str:
    return hashlib.sha256(idb.to_text().encode("utf-8")).hexdigest()[:16]


def _query_rows(rows, query: Atom) -> frozenset[tuple]:
    """Filter full tuples on the query's constant positions."""
    wanted = []
    for row in rows:
        keep = True
        binding: dict[Variable, object] = {}
        for value, arg in zip(row, query.args):
            if isinstance(arg, Constant):
                if arg.value != value:
                    keep = False
                    break
            elif isinstance(arg, Variable):
                if binding.setdefault(arg, value) != value:
                    keep = False
                    break
        if keep:
            wanted.append(row)
    return frozenset(wanted)


def _entry(seconds: list[float],
           result: Optional[EvaluationResult]) -> dict:
    entry: dict = {
        "wall_ms": round(statistics.median(seconds) * 1000, 3),
        "runs_ms": [round(s * 1000, 3) for s in seconds],
    }
    if result is None:
        entry["budget_exceeded"] = True
        return entry
    entry["stats"] = result.stats.as_dict()
    entry["idb_facts"] = sum(
        len(result.idb.relation(p)) for p in result.idb)
    entry["fingerprint"] = _fingerprint(result.idb)
    return entry


def run_engine_benchmark(scale: str = "default", repeats: int = 3,
                         timeout_s: float | None = 120.0,
                         seed: int = DEFAULT_SEED) -> dict:
    """Run the engine baseline and return the report dict.

    Per workload: every bottom-up method (naive, seminaive, magic) runs
    under both executors; top-down runs once (it has no compiled path);
    the semi-naive compiled executor additionally runs under every
    :data:`SEMINAIVE_CONFIGS` interning x planner combination.  The
    report carries per-entry timings/counters, an ``agreement`` block
    recording the differential checks, and per-workload
    ``interned_speedup`` — baseline wall time over the
    interned+adaptive configuration's.
    """
    report: dict = {
        "version": REPORT_VERSION,
        "scale": scale,
        "repeats": repeats,
        "seed": seed,
        "python": platform.python_version(),
        "workloads": [],
    }
    for workload in build_workloads(scale, seed=seed):
        block: dict = {
            "name": workload.name,
            "edb_facts": workload.edb.total_facts(),
            "methods": {},
        }
        answers: dict[str, frozenset] = {}
        derivations: dict[tuple[str, str], int] = {}
        fingerprints: dict[tuple[str, str], str] = {}

        def bottom_up(method: str,
                      run_for: Callable[[str], EvaluationResult],
                      _workload=workload, _block=block,
                      _answers=answers, _derivations=derivations,
                      _fingerprints=fingerprints) -> None:
            per_method: dict = {}
            for executor in EXECUTORS:
                seconds, result = _timed(
                    lambda: run_for(executor), repeats, timeout_s)
                per_method[executor] = _entry(seconds, result)
                if result is None:
                    continue
                _derivations[(method, executor)] = \
                    result.stats.derivations
                _fingerprints[(method, executor)] = \
                    per_method[executor]["fingerprint"]
                if method == "magic":
                    assert result.magic is not None
                    rows = result.magic.answers(result.idb)
                else:
                    rows = result.facts(_workload.answer_pred)
                _answers.setdefault(
                    method, _query_rows(rows, _workload.query))
            compiled = per_method["compiled"]
            interpreted = per_method["interpreted"]
            if "fingerprint" in compiled and "fingerprint" in interpreted:
                per_method["speedup"] = round(
                    interpreted["wall_ms"]
                    / max(compiled["wall_ms"], 1e-6), 3)
                per_method["executors_agree"] = (
                    compiled["fingerprint"] == interpreted["fingerprint"]
                    and compiled["stats"]["derivations"]
                    == interpreted["stats"]["derivations"])
            _block["methods"][method] = per_method

        bottom_up("naive", lambda executor: evaluate(
            workload.program, workload.edb, method="naive",
            executor=executor))
        bottom_up("seminaive", lambda executor: evaluate(
            workload.program, workload.edb, executor=executor))
        bottom_up("magic", lambda executor: evaluate_with_magic(
            workload.program, workload.edb, workload.query,
            executor=executor))

        # Semi-naive compiled executor across interning x planner.  The
        # baseline configuration equals the seminaive/compiled entry
        # above (greedy planner, raw storage), so its measurement is
        # reused rather than re-timed.
        configs: dict = {}
        config_fingerprints: dict[str, str] = {}
        for config_name, knobs in SEMINAIVE_CONFIGS:
            if config_name == "baseline":
                entry = dict(block["methods"]["seminaive"]["compiled"])
            else:
                seconds, result = _timed(
                    lambda _knobs=knobs: evaluate(
                        workload.program, workload.edb,
                        executor="compiled", **_knobs),
                    repeats, timeout_s)
                entry = _entry(seconds, result)
            configs[config_name] = entry
            if "fingerprint" in entry:
                config_fingerprints[config_name] = entry["fingerprint"]
        block["seminaive_configs"] = configs
        baseline = configs["baseline"]
        fast = configs["interned_adaptive"]
        if "fingerprint" in baseline and "fingerprint" in fast:
            block["interned_speedup"] = round(
                baseline["wall_ms"] / max(fast["wall_ms"], 1e-6), 3)

        seconds, topdown = _timed_topdown(workload, repeats, timeout_s)
        td_entry: dict = {
            "wall_ms": round(statistics.median(seconds) * 1000, 3)}
        if topdown is None:
            td_entry["budget_exceeded"] = True
        else:
            td_entry["answers"] = len(topdown.answers)
            td_entry["stats"] = topdown.stats.as_dict()
            answers["topdown"] = _query_rows(
                topdown.project(workload.query), workload.query)
        block["methods"]["topdown"] = td_entry

        block["agreement"] = {
            "methods_agree": len(set(answers.values())) <= 1,
            "methods_compared": sorted(answers),
            "executors_agree": all(
                block["methods"][m].get("executors_agree", True)
                for m in ("naive", "seminaive", "magic")),
            "naive_matches_seminaive": fingerprints.get(
                ("naive", "compiled")) == fingerprints.get(
                ("seminaive", "compiled")),
            "configs_agree": len(set(
                config_fingerprints.values())) <= 1,
            "configs_compared": sorted(config_fingerprints),
        }
        report["workloads"].append(block)

    tc = _workload_block(report, "transitive_closure")
    summary = {}
    if tc is not None:
        for method in ("naive", "seminaive", "magic"):
            speedup = tc["methods"].get(method, {}).get("speedup")
            if speedup is not None:
                summary[f"tc_{method}_speedup"] = speedup
    for name, key in (("transitive_closure", "tc"),
                      ("same_generation", "sg"), ("magic", "magic")):
        block = _workload_block(report, name)
        if block is not None and "interned_speedup" in block:
            summary[f"{key}_interned_speedup"] = \
                block["interned_speedup"]
    report["summary"] = summary
    return report


def _timed_topdown(workload: EngineWorkload, repeats: int,
                   timeout_s: float | None):
    seconds: list[float] = []
    result = None
    for _ in range(max(1, repeats)):
        budget = Budget(timeout_s=timeout_s)
        start = time.perf_counter()
        try:
            with budget.activate():
                result = topdown_query(workload.program, workload.edb,
                                       workload.query)
        except BudgetExceededError:
            seconds.append(time.perf_counter() - start)
            return seconds, None
        seconds.append(time.perf_counter() - start)
    return seconds, result


def _workload_block(report: dict, name: str) -> dict | None:
    for block in report["workloads"]:
        if block["name"] == name:
            return block
    return None


# ---------------------------------------------------------------------------
# Artifact + regression gate
# ---------------------------------------------------------------------------

def write_engine_benchmark(report: dict,
                           path: str = DEFAULT_REPORT_PATH) -> None:
    """Write the report as ``BENCH_engine.json`` (stable key order)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


#: Gates refuse reports measured with fewer repeats than this: medians
#: over >=3 runs are what keep speedup thresholds from flapping.
MIN_GATE_REPEATS = 3


def regression_failures(report: dict, max_slowdown: float = 1.5,
                        workload: str = "transitive_closure",
                        min_interned_speedup: float | None = None,
                        min_repeats: int = MIN_GATE_REPEATS
                        ) -> list[str]:
    """Check the report against the CI gate; returns failure messages.

    Fails when the report was measured with fewer than ``min_repeats``
    repeats (single-run medians make every threshold below noise-
    sensitive), when the compiled executor is slower than the
    interpreted one by more than ``max_slowdown``× on the semi-naive
    ``workload`` row, or when any differential agreement flag is false.
    With ``min_interned_speedup`` set, additionally fails when the
    interned+adaptive configuration is not at least that many times
    faster than the compiled baseline on the transitive-closure and
    same-generation workloads.
    """
    failures: list[str] = []
    repeats = report.get("repeats", 0)
    if repeats < min_repeats:
        failures.append(
            f"report measured with repeats={repeats}; gates need "
            f">= {min_repeats} for stable medians")
    block = _workload_block(report, workload)
    if block is None:
        return [*failures, f"workload {workload!r} missing from report"]
    seminaive = block["methods"].get("seminaive", {})
    speedup = seminaive.get("speedup")
    if speedup is None:
        failures.append(
            f"{workload}: no compiled-vs-interpreted timing "
            "(budget exceeded?)")
    elif speedup < 1.0 / max_slowdown:
        failures.append(
            f"{workload}: compiled executor is {1.0 / speedup:.2f}x "
            f"slower than interpreted (allowed {max_slowdown:.2f}x)")
    for entry in report["workloads"]:
        agreement = entry.get("agreement", {})
        for flag in ("methods_agree", "executors_agree",
                     "naive_matches_seminaive", "configs_agree"):
            if agreement.get(flag) is False:
                failures.append(f"{entry['name']}: {flag} is false")
    if min_interned_speedup is not None:
        for name in ("transitive_closure", "same_generation"):
            entry = _workload_block(report, name)
            if entry is None:
                continue
            interned = entry.get("interned_speedup")
            if interned is None:
                failures.append(
                    f"{name}: no interned_speedup measurement "
                    "(budget exceeded?)")
            elif interned < min_interned_speedup:
                failures.append(
                    f"{name}: interned+adaptive is only {interned:.2f}x "
                    f"the compiled baseline (required "
                    f"{min_interned_speedup:.2f}x)")
    return failures
