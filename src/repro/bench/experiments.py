"""The reproduction experiments E1..E9 (see DESIGN.md section 4).

The paper has no empirical tables; each experiment here quantifies one
of its *claims* on synthetic, IC-consistent workloads.  Every experiment
returns a :class:`repro.bench.harness.Table`; the ``benchmarks/`` files
print them and feed pytest-benchmark.
"""

from __future__ import annotations

import random
import time

from ..baselines.guided import ResidueGuidedEngine
from ..baselines.rule_residues import optimize_rule_level
from ..constraints.checker import repair
from ..constraints.ic import ics_from_text
from ..core.optimizer import SemanticOptimizer
from ..core.residues import (generate_residues,
                             generate_residues_exhaustive)
from ..datalog.atoms import Atom, atom
from ..datalog.parser import parse_program
from ..engine.engine import evaluate, evaluate_with_magic
from ..engine.topdown import topdown_query
from ..iqa import describe, parse_describe
from ..workloads.genealogy import GenealogyParams, generate_genealogy
from ..workloads.organization import (OrganizationParams,
                                      generate_organization)
from ..workloads.paper_examples import (example_2_1, example_3_2,
                                        example_4_1, example_4_3,
                                        example_5_1)
from ..workloads.university import UniversityParams, generate_university
from .harness import Measurement, Table, check_same_answers, measure


def _fmt(measurement: Measurement, counter: str = "atom_lookups") -> str:
    return (f"{measurement.median_seconds * 1000:7.1f}ms "
            f"{measurement.counters.get(counter, 0):>8}")


# ---------------------------------------------------------------------------
# E1 — atom elimination (Example 3.2's expert join, university workload)
# ---------------------------------------------------------------------------

def _e1_params(size: int) -> UniversityParams:
    return UniversityParams(professors=size, students=max(size // 5, 2),
                            theses=max(size // 5, 2), fields=12,
                            fields_per_thesis=6, works_with_density=0.04,
                            expert_seed_fraction=0.7,
                            supervisions=max(size // 4, 2), payments=0)


def experiment_e1(sizes: tuple[int, ...] = (20, 40, 80),
                  repeats: int = 3, seed: int = 11) -> Table:
    """Plain vs pushed (periodic) vs automaton ablation vs rule-level.

    Expected shape: the pushed program skips the redundant ``expert``
    join at every recursion level past the first, so its matched rows
    drop ~20% below plain's, growing with EDB size; the faithful
    Algorithm 4.1 automaton form pays chain-shadowing overhead and loses
    to plain (the ablation motivating the periodic compilation); the
    rule-level baseline finds no pushable residue and equals plain.
    """
    example = example_3_2()
    ic1 = example.ic("ic1")
    pushed_program = SemanticOptimizer(
        example.program, [ic1], pred="eval").optimize().optimized
    automaton_program = SemanticOptimizer(
        example.program, [ic1], pred="eval", compilation="automaton",
        collapse=False).optimize().optimized
    rule_level = optimize_rule_level(
        example.program, [ic1], pred="eval").optimized

    table = Table(
        "E1  atom elimination: eval committee (ic1: expertise propagates)",
        ["professors", "plain t/rows", "pushed t/rows",
         "automaton t/rows", "rule-level t/rows", "row savings",
         "answers equal"])
    rng = random.Random(seed)
    for size in sizes:
        db = generate_university(_e1_params(size), rng)
        plain = measure("plain", lambda: evaluate(example.program, db),
                        "eval", repeats)
        pushed = measure("pushed", lambda: evaluate(pushed_program, db),
                         "eval", repeats)
        automaton = measure("automaton",
                            lambda: evaluate(automaton_program, db),
                            "eval", repeats)
        baseline = measure("rule-level", lambda: evaluate(rule_level, db),
                           "eval", repeats)
        rows = (plain, pushed, automaton, baseline)
        saving = 1 - pushed.counters["rows_matched"] / max(
            plain.counters["rows_matched"], 1)
        table.add_row(size, _fmt(plain, "rows_matched"),
                      _fmt(pushed, "rows_matched"),
                      _fmt(automaton, "rows_matched"),
                      _fmt(baseline, "rows_matched"),
                      f"{saving:.1%}",
                      "yes" if check_same_answers(rows) else "NO")
    table.note("rule-level baseline cannot see the r1 r1 residue, so its "
               "program (and cost) equals plain")
    table.note("'automaton' is the uncollapsed Algorithm 4.1 output — "
               "the ablation justifying the periodic compilation")
    return table


# ---------------------------------------------------------------------------
# E2 — atom introduction (Example 4.2's doctoral reducer)
# ---------------------------------------------------------------------------

def experiment_e2(sizes: tuple[int, ...] = (20, 40, 80),
                  repeats: int = 3, seed: int = 13) -> Table:
    """Plain vs introduced reducer on ``eval_support``, under both the
    fixed source join order (the paper's 1995 setting) and the greedy
    indexed planner.

    Expected shape: with the source-order planner the introduced
    ``doctoral(S)`` reducer anchors the join and avoids scanning the
    large recursive ``eval`` relation, winning by a factor that grows
    with ``|eval|``; with the greedy indexed planner the engine already
    anchors optimally and the reducer's benefit vanishes — the crossover
    is planner capability, which is exactly the gap between 1995 and
    modern engines.  The unconditional variant of ic2 ("every supported
    student is doctoral") is used so no ``not E`` copy is needed.
    """
    example = example_3_2()
    ic2u = ics_from_text(
        "ic2u: pays(M, G, S, T) -> doctoral(S).")[0]
    optimized = SemanticOptimizer(
        example.program, [ic2u], pred="eval",
        small_relations={"doctoral"}).optimize().optimized

    table = Table(
        "E2  atom introduction: doctoral semijoin reducer "
        "(unconditional ic2)",
        ["professors", "plain/src r2-rows", "introduced/src r2-rows",
         "src savings", "plain/greedy r2-rows",
         "introduced/greedy r2-rows", "greedy savings", "answers equal"])
    rng = random.Random(seed)
    for size in sizes:
        params = UniversityParams(
            professors=size, students=max(size // 2, 4),
            theses=max(size // 2, 4), supervisions=size,
            payments=size // 2, doctoral_fraction=0.05,
            high_payment_fraction=0.5)
        db = generate_university(params, rng)
        repair(db, ic2u)
        runs = {}
        for planner in ("source", "greedy"):
            runs[("plain", planner)] = measure(
                f"plain/{planner}",
                lambda p=planner: evaluate(example.program, db, planner=p),
                "eval_support", repeats)
            runs[("introduced", planner)] = measure(
                f"introduced/{planner}",
                lambda p=planner: evaluate(optimized, db, planner=p),
                "eval_support", repeats)

        def r2_rows(kind: str, planner: str) -> int:
            return runs[(kind, planner)].rows_for_rules("r2")

        def saving(planner: str) -> str:
            plain_rows = r2_rows("plain", planner)
            pushed_rows = r2_rows("introduced", planner)
            return f"{1 - pushed_rows / max(plain_rows, 1):.1%}"

        table.add_row(
            size,
            r2_rows("plain", "source"),
            r2_rows("introduced", "source"),
            saving("source"),
            r2_rows("plain", "greedy"),
            r2_rows("introduced", "greedy"),
            saving("greedy"),
            "yes" if check_same_answers(runs.values()) else "NO")
    table.note("row counts attributed to the eval_support rules only; "
               "the eval fixpoint is identical across engines")
    table.note("the source planner keeps atoms in rule order; eval comes "
               "first in r2, so plain scans the large recursive relation")
    return table


# ---------------------------------------------------------------------------
# E3 — subtree pruning (Example 4.3, genealogy)
# ---------------------------------------------------------------------------

def experiment_e3(generations: tuple[int, ...] = (5, 7, 9),
                  repeats: int = 3, seed: int = 17) -> Table:
    """Plain vs pushed pruning vs residue-guided evaluation on ``anc``.

    Expected shape: all three compute identical answers (the EDB
    satisfies the IC, so pruned subtrees were empty anyway); the guided
    engine pays one residue check per candidate derivation
    (``residue_checks`` grows with output size) while the transformed
    program pays nothing at run time — the paper's Section 1 claim (ii).
    """
    example = example_4_3()
    ic1 = example.ic("ic1")
    optimized = SemanticOptimizer(
        example.program, [ic1], pred="anc").optimize().optimized
    guided = ResidueGuidedEngine(example.program, [ic1], pred="anc")

    table = Table(
        "E3  subtree pruning: genealogy (ic1: young people lack deep "
        "descendants)",
        ["generations", "plain t/lookups", "pushed t/lookups",
         "guided t/checks", "answers equal"])
    rng = random.Random(seed)
    for depth in generations:
        params = GenealogyParams(generations=depth, width=14)
        db = generate_genealogy(params, rng)
        plain = measure("plain", lambda: evaluate(example.program, db),
                        "anc", repeats)
        pushed = measure("pushed", lambda: evaluate(optimized, db),
                         "anc", repeats)
        run_guided = measure("guided", lambda: guided.evaluate(db),
                             "anc", repeats)
        table.add_row(depth, _fmt(plain), _fmt(pushed),
                      _fmt(run_guided, "residue_checks"),
                      "yes" if check_same_answers(
                          (plain, pushed, run_guided)) else "NO")
    table.note("transformed programs never check residues at run time; "
               "the guided engine checks once per candidate derivation")
    return table


# ---------------------------------------------------------------------------
# E4 — compile-time cost of residue generation
# ---------------------------------------------------------------------------

def _chain_ic_text(length: int) -> str:
    """An Example 4.3-style denial with ``length`` chained par atoms."""
    atoms = []
    child, child_age = "Z0", "Za0"
    for index in range(length):
        parent, parent_age = f"Z{index + 1}", f"Za{index + 1}"
        atoms.append(f"par({child}, {child_age}, {parent}, {parent_age})")
        child, child_age = parent, parent_age
    return f"ic: Za{length} <= 50, {', '.join(atoms)} -> ."


def experiment_e4(lengths: tuple[int, ...] = (2, 3, 4, 5),
                  repeats: int = 3) -> Table:
    """Algorithm 3.1 (graph detection) vs exhaustive enumeration.

    Expected shape: both find the same residues; the exhaustive
    enumerator's cost grows exponentially with the IC chain length
    (sequence alphabet ** length) while the SD-graph walk stays
    polynomial, which is the point of the algorithm.
    """
    example = example_4_3()
    program = example.program
    table = Table(
        "E4  compile time: Algorithm 3.1 vs exhaustive enumeration",
        ["IC chain length", "graph ms", "exhaustive ms",
         "residues (graph/exh)", "same sequences"])
    for length in lengths:
        ic = ics_from_text(_chain_ic_text(length))[0]
        graph_times, exhaustive_times = [], []
        graph_items = exhaustive_items = []
        for _ in range(repeats):
            start = time.perf_counter()
            graph_items = generate_residues(program, "anc", ic,
                                            max_extend=0)
            graph_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            exhaustive_items = generate_residues_exhaustive(
                program, "anc", ic, max_length=length + 1)
            exhaustive_times.append(time.perf_counter() - start)
        graph_seqs = {item.sequence for item in graph_items}
        exhaustive_seqs = {item.sequence for item in exhaustive_items}
        table.add_row(length,
                      f"{min(graph_times) * 1000:.1f}",
                      f"{min(exhaustive_times) * 1000:.1f}",
                      f"{len(graph_items)}/{len(exhaustive_items)}",
                      "yes" if graph_seqs == exhaustive_seqs else
                      f"diff {graph_seqs ^ exhaustive_seqs}")
    return table


# ---------------------------------------------------------------------------
# E5 — run-time overhead: compile once vs check every query
# ---------------------------------------------------------------------------

def experiment_e5(query_counts: tuple[int, ...] = (1, 5, 10),
                  seed: int = 23, size: int = 40) -> Table:
    """Amortization: transformation pays once, guided pays per query.

    Expected shape: for a single evaluation the one-off compile cost of
    the transformation can dominate; as the query count grows, the
    pushed program's per-query savings (the eliminated join) overtake it
    and its total crosses below plain — while the residue-guided engine
    keeps paying per-derivation checks forever.  This is Section 1's
    claim (ii) made quantitative, including where the crossover falls.
    """
    rng = random.Random(seed)
    table = Table(
        "E5  run-time overhead: compile-once vs check-per-query",
        ["workload", "queries", "plain total",
         "pushed total (incl. compile)", "guided total (incl. attach)",
         "guided checks"])

    university = example_3_2()
    genealogy = example_4_3()
    workloads = [
        ("elimination (3.2)", university, university.ic("ic1"), "eval",
         [generate_university(_e1_params(size), rng)
          for _ in range(max(query_counts))]),
        ("pruning (4.3)", genealogy, genealogy.ic("ic1"), "anc",
         [generate_genealogy(GenealogyParams(generations=7, width=14),
                             rng) for _ in range(max(query_counts))]),
    ]

    for name, example, ic, pred, databases in workloads:
        start = time.perf_counter()
        optimized = SemanticOptimizer(
            example.program, [ic], pred=pred).optimize().optimized
        compile_seconds = time.perf_counter() - start
        start = time.perf_counter()
        guided = ResidueGuidedEngine(example.program, [ic], pred=pred)
        attach_seconds = time.perf_counter() - start

        for count in query_counts:
            batch = databases[:count]
            plain_total = sum(
                evaluate(example.program, db).elapsed_seconds
                for db in batch)
            pushed_total = compile_seconds + sum(
                evaluate(optimized, db).elapsed_seconds for db in batch)
            guided_results = [guided.evaluate(db) for db in batch]
            guided_total = attach_seconds + sum(
                r.elapsed_seconds for r in guided_results)
            checks = sum(r.stats.residue_checks for r in guided_results)
            table.add_row(name, count, f"{plain_total * 1000:.1f}ms",
                          f"{pushed_total * 1000:.1f}ms",
                          f"{guided_total * 1000:.1f}ms", checks)
    table.note("each 'query' is a fresh database evaluation; the "
               "transformation is compiled exactly once per workload")
    table.note("fact ICs (elimination) have no run-time reading, so the "
               "guided engine checks nothing there; null ICs (pruning) "
               "cost one check per candidate derivation, every query")
    return table


# ---------------------------------------------------------------------------
# E6 — query independence: composing with magic sets
# ---------------------------------------------------------------------------

def experiment_e6(repeats: int = 3, seed: int = 29) -> Table:
    """The optimization helps across binding patterns, with and without
    magic sets on top.

    Expected shape: the elimination's row savings appear both for the
    unbound query (full materialization) and for the bound query
    (magic-restricted evaluation): the transformation is independent of
    the binding pattern, unlike binding-specific techniques.
    """
    example = example_3_2()
    ic1 = example.ic("ic1")
    optimized = SemanticOptimizer(
        example.program, [ic1], pred="eval").optimize().optimized
    rng = random.Random(seed)
    db = generate_university(_e1_params(40), rng)

    bound_query = atom("eval", "p0", "S", "T")

    table = Table(
        "E6  query independence: elimination composes with magic sets",
        ["binding", "plain t/rows", "pushed t/rows", "row savings"])

    def row(binding: str, plain_run, pushed_run) -> None:
        plain = measure("plain", plain_run, "eval", repeats)
        pushed = measure("pushed", pushed_run, "eval", repeats)
        saving = 1 - pushed.counters["rows_matched"] / max(
            plain.counters["rows_matched"], 1)
        table.add_row(binding, _fmt(plain, "rows_matched"),
                      _fmt(pushed, "rows_matched"), f"{saving:.1%}")

    row("free (full fixpoint)",
        lambda: evaluate(example.program, db),
        lambda: evaluate(optimized, db))
    row("bound (magic sets)",
        lambda: evaluate_with_magic(example.program, db, bound_query),
        lambda: evaluate_with_magic(optimized, db, bound_query))
    return table


# ---------------------------------------------------------------------------
# E7 — sequence-level vs rule-level residues
# ---------------------------------------------------------------------------

def experiment_e7() -> Table:
    """How many pushable residues each method finds, per paper example.

    Expected shape: the rule-level reading [3] misses every residue that
    needs more than one rule application (Examples 2.1, 3.2, 4.1, 4.3),
    which is the paper's core argument for sequence-level residues.
    """
    table = Table(
        "E7  sequence-level vs rule-level residue discovery",
        ["example", "ic", "sequence-level", "rule-level",
         "sequence-only"])
    cases = [(example_2_1(), "ic"), (example_3_2(), "ic1"),
             (example_4_1(), "ic1"), (example_4_3(), "ic1")]
    for example, label in cases:
        ic = example.ic(label)
        optimizer = SemanticOptimizer(example.program, [ic],
                                      pred=example.pred)
        sequence_items = [
            item for item in optimizer.all_residues()
            if len(item.sequence) > 1]
        rule_items = [
            item for item in optimizer.rule_residues()
            if len(item.sequence) == 1]
        table.add_row(example.name, label, len(sequence_items),
                      len(rule_items),
                      len({item.sequence for item in sequence_items}))
    table.note("rule-level counts include residues that the chase guard "
               "later rejects (e.g. Example 4.1's loose length-1 residue)")
    return table


# ---------------------------------------------------------------------------
# E8 — intelligent query answering (Example 5.1)
# ---------------------------------------------------------------------------

def experiment_e8(repeats: int = 5) -> Table:
    """Reproduce Example 5.1's intelligent answer and time the pipeline.

    Expected shape: the context's relevant part is ``graduated`` +
    ``topten``; the ``r3`` proof tree is totally subsumed, so the
    residue is the empty conjunction — "every object satisfying the
    context is an honors student".
    """
    example = example_5_1()
    query = parse_describe(
        "describe honors(Stud) where major(Stud, cs), "
        "graduated(Stud, College), topten(College), hobby(Stud, chess)")
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = describe(example.program, query)
        times.append(time.perf_counter() - start)
    assert result is not None
    table = Table(
        "E8  intelligent query answering (Example 5.1)",
        ["proof tree", "subsumed by context", "residue"])
    for description in result.descriptions:
        residue = ", ".join(str(lit) for lit in description.residue) \
            or "true (empty conjunction)"
        table.add_row(" ".join(description.tree.labels),
                      "yes" if description.subsumed else "no", residue)
    table.note(f"irrelevant context dropped: "
               f"{', '.join(str(l) for l in result.irrelevant)}")
    table.note(f"context suffices: {result.context_suffices}; "
               f"median describe() time {min(times) * 1000:.2f}ms")
    return table


# ---------------------------------------------------------------------------
# E9 — pruning under top-down evaluation
# ---------------------------------------------------------------------------

def experiment_e9(generations: tuple[int, ...] = (6, 8),
                  queries_per_db: int = 6, seed: int = 31) -> Table:
    """Bound queries under tabled top-down evaluation, plain vs pruned.

    Bottom-up materialization cannot profit from pruning on consistent
    data (E3); *top-down* evaluation can: a pushed guard stops expanding
    a doomed subtree before its subgoals are called.  For
    ``anc(X, Xa, y, ya)`` queries with a *young* ancestor ``y``, the
    pruned program's guard refutes the deep recursion immediately, while
    the plain program computes the ancestor closure.

    Expected shape: large savings for young-ancestor queries (the guard
    cuts the recursion), modest effect for old-ancestor queries; answers
    always identical.
    """
    example = example_4_3()
    ic1 = example.ic("ic1")
    optimized = SemanticOptimizer(
        example.program, [ic1], pred="anc").optimize().optimized
    table = Table(
        "E9  pruning under top-down evaluation (bound young/old queries)",
        ["generations", "ancestor age", "plain rows", "pruned rows",
         "row savings", "answers equal"])
    rng = random.Random(seed)
    for depth in generations:
        db = generate_genealogy(
            GenealogyParams(generations=depth, width=12,
                            young_fraction=0.7), rng)
        people = sorted({(y, ya) for (_, _, y, ya) in db.facts("par")})
        young = [p for p in people if p[1] <= 50][:queries_per_db]
        old = [p for p in people if p[1] > 50][:queries_per_db]
        for label, group in (("<= 50", young), ("> 50", old)):
            plain_rows = pruned_rows = 0
            equal = True
            for person, age in group:
                goal = atom("anc", "X", "Xa", person, age)
                plain = topdown_query(example.program, db, goal)
                pruned = topdown_query(optimized, db, goal)
                plain_rows += plain.stats.rows_matched
                pruned_rows += pruned.stats.rows_matched
                if plain.project(goal) != pruned.project(goal):
                    equal = False
            saving = 1 - pruned_rows / max(plain_rows, 1)
            table.add_row(depth, label, plain_rows, pruned_rows,
                          f"{saving:.1%}", "yes" if equal else "NO")
    table.note("each row aggregates the bound queries anc(X, Xa, y, ya) "
               "over several ancestors y of the stated age group")
    return table


# ---------------------------------------------------------------------------
# E10 — ablation of the design choices
# ---------------------------------------------------------------------------

def experiment_e10(size: int = 40, repeats: int = 2,
                   seed: int = 37) -> Table:
    """Ablation on the E1 workload: each optimizer configuration's
    compile time and evaluation work.

    Expected shape: the default (periodic compilation + chase guard) is
    the only configuration that both beats plain and is guard-verified;
    dropping the guard saves compile time but gives up the soundness
    net; the automaton forms lose at run time; minimization alone finds
    nothing (the redundancy lives across rule instances).
    """
    from ..core.minimize import minimize_program

    example = example_3_2()
    ic1 = example.ic("ic1")
    rng = random.Random(seed)
    db = generate_university(_e1_params(size), rng)
    plain_eval = measure("plain", lambda: evaluate(example.program, db),
                         "eval", repeats)

    def compiled(factory):
        start = time.perf_counter()
        program = factory()
        return program, (time.perf_counter() - start) * 1000

    configurations = [
        ("periodic + chase guard (default)", lambda: SemanticOptimizer(
            example.program, [ic1], pred="eval").optimize().optimized),
        ("periodic, guard=none", lambda: SemanticOptimizer(
            example.program, [ic1], pred="eval",
            guard="none").optimize().optimized),
        ("automaton + collapse", lambda: SemanticOptimizer(
            example.program, [ic1], pred="eval",
            compilation="automaton").optimize().optimized),
        ("automaton raw", lambda: SemanticOptimizer(
            example.program, [ic1], pred="eval",
            compilation="automaton", collapse=False).optimize().optimized),
        ("rule-level baseline", lambda: optimize_rule_level(
            example.program, [ic1], pred="eval").optimized),
        ("minimization only", lambda: minimize_program(
            example.program, [ic1]).minimized),
    ]

    table = Table(
        f"E10  ablation of design choices ({size} professors)",
        ["configuration", "compile ms", "eval t/rows", "rows vs plain",
         "answers equal"])
    table.add_row("plain (no optimization)", "-",
                  _fmt(plain_eval, "rows_matched"), "100.0%", "yes")
    for name, factory in configurations:
        program, compile_ms = compiled(factory)
        run = measure(name, lambda p=program: evaluate(p, db), "eval",
                      repeats)
        ratio = run.counters["rows_matched"] / max(
            plain_eval.counters["rows_matched"], 1)
        table.add_row(name, f"{compile_ms:.1f}",
                      _fmt(run, "rows_matched"), f"{ratio:.1%}",
                      "yes" if check_same_answers((plain_eval, run))
                      else "NO")
    return table


ALL_EXPERIMENTS = {
    "E1": experiment_e1,
    "E2": experiment_e2,
    "E3": experiment_e3,
    "E4": experiment_e4,
    "E5": experiment_e5,
    "E6": experiment_e6,
    "E7": experiment_e7,
    "E8": experiment_e8,
    "E9": experiment_e9,
    "E10": experiment_e10,
}


def run_all() -> list[Table]:
    """Run every experiment with default settings (used by the CLI)."""
    return [factory() for factory in ALL_EXPERIMENTS.values()]
