"""CSV import/export for databases.

Real EDBs arrive as delimited files; these helpers move relations in and
out of CSV with a light typing scheme: by default every cell that parses
as an integer (or float) is loaded as a number, everything else as a
string.  An explicit ``types`` signature (e.g. ``"str,int,str"``)
overrides the inference per column.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

from ..datalog.terms import ConstValue
from ..errors import EvaluationError
from .database import Database

_PARSERS = {
    "str": str,
    "int": int,
    "float": float,
}


def _infer(cell: str) -> ConstValue:
    try:
        return int(cell)
    except ValueError:
        pass
    try:
        return float(cell)
    except ValueError:
        return cell


def _typed_row(cells: Sequence[str],
               parsers: Sequence | None) -> tuple[ConstValue, ...]:
    if parsers is None:
        return tuple(_infer(cell) for cell in cells)
    if len(parsers) != len(cells):
        raise EvaluationError(
            f"row has {len(cells)} columns, type signature has "
            f"{len(parsers)}")
    out = []
    for parser, cell in zip(parsers, cells):
        try:
            out.append(parser(cell))
        except ValueError as error:
            raise EvaluationError(
                f"cannot parse {cell!r} as {parser.__name__}") from error
    return tuple(out)


def _parsers_for(types: str | None):
    if types is None:
        return None
    parsers = []
    for name in types.split(","):
        name = name.strip()
        if name not in _PARSERS:
            raise EvaluationError(
                f"unknown column type {name!r}; use "
                f"{sorted(_PARSERS)}")
        parsers.append(_PARSERS[name])
    return parsers


def load_csv(db: Database, pred: str, path: str | Path,
             types: str | None = None, delimiter: str = ",",
             header: bool = False) -> int:
    """Load a CSV file into relation ``pred``; returns rows added."""
    parsers = _parsers_for(types)
    added = 0
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for index, cells in enumerate(reader):
            if header and index == 0:
                continue
            if not cells:
                continue
            if db.add_fact(pred, *_typed_row(cells, parsers)):
                added += 1
    return added


def save_csv(db: Database, pred: str, path: str | Path,
             delimiter: str = ",") -> int:
    """Write relation ``pred`` to a CSV file (sorted); returns rows."""
    rows = sorted(db.facts(pred), key=lambda r: tuple(map(str, r)))
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        for row in rows:
            writer.writerow(row)
    return len(rows)


def load_directory(path: str | Path, types: dict[str, str] | None = None,
                   delimiter: str = ",",
                   interning: bool = False) -> Database:
    """Build a database from a directory of ``<pred>.csv`` files.

    With ``interning=True`` the database is created over a fresh
    :class:`~repro.facts.symbols.SymbolTable` and every constant is
    interned to a dense ``int`` code as it is parsed — the cheapest
    point to pay the encoding cost, since each value is touched exactly
    once on its way into the row set.
    """
    from .symbols import SymbolTable

    directory = Path(path)
    if not directory.is_dir():
        raise EvaluationError(f"{directory} is not a directory")
    types = types or {}
    db = Database(symbols=SymbolTable()) if interning else Database()
    for csv_path in sorted(directory.glob("*.csv")):
        pred = csv_path.stem
        load_csv(db, pred, csv_path, types=types.get(pred),
                 delimiter=delimiter)
    return db


def save_directory(db: Database, path: str | Path,
                   predicates: Iterable[str] | None = None,
                   delimiter: str = ",") -> int:
    """Write relations as ``<pred>.csv`` files; returns total rows."""
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    total = 0
    for pred in sorted(predicates if predicates is not None else db):
        total += save_csv(db, pred, directory / f"{pred}.csv",
                          delimiter=delimiter)
    return total
