"""Pluggable tuple-storage backends for :class:`~repro.facts.relation.Relation`.

A :class:`Relation` owns the *semantics* of a stored predicate — arity
checks, value/code translation against a shared symbol table, statistics
— while the physical row container and its hash indexes live behind a
*storage backend*.  The contract is deliberately small and concrete:

- ``rows`` is the storage-domain row **set** (read-only to callers; the
  kernels' scans and negation membership tests probe it directly);
- ``indexes`` maps a sorted column tuple to the live hash index over
  those columns (read-only to callers; kernel probes resolve buckets
  from it directly);
- every **mutation** goes through the backend's methods, so a backend
  that maintains extra structure (shard buckets, columnar arrays, a
  write-ahead log) observes every insert and delete.

:class:`DictBackend` is the default: a ``set`` of tuples plus on-demand
``dict`` indexes — semantically exactly the storage the engine always
had.  :class:`ShardedBackend` additionally hash-partitions rows into
``shard_count`` buckets by one *key column*, which is what the parallel
executor (:mod:`repro.engine.parallel`) scatters kernel firings over.
Future array/NumPy or disk-backed columnar backends slot in behind the
same protocol (the ROADMAP's reason for this seam).
"""

from __future__ import annotations

from typing import Collection, Iterable, Iterator, Protocol, runtime_checkable

Row = tuple

#: A hash index: bound-column key tuple -> list of rows with those values.
Index = dict


@runtime_checkable
class StorageBackend(Protocol):
    """The storage contract a :class:`Relation` delegates to.

    ``rows`` and ``indexes`` are exposed as plain containers because the
    compiled kernels' hot paths read them without per-probe indirection;
    they must be treated as read-only outside the backend.
    """

    rows: set[Row]
    indexes: dict[tuple[int, ...], Index]

    def __len__(self) -> int: ...
    def __contains__(self, row: Row) -> bool: ...
    def __iter__(self) -> Iterator[Row]: ...
    def insert(self, row: Row) -> bool: ...
    def add_new(self, rows: Iterable[Row]) -> list[Row]: ...
    def merge_new(self, rows: Collection[Row]) -> list[Row]: ...
    def merge(self, rows: list[Row]) -> None: ...
    def remove(self, row: Row) -> bool: ...
    def clear(self) -> None: ...
    def index_for(self, columns: tuple[int, ...]) -> Index: ...
    def copy(self) -> "StorageBackend": ...


class DictBackend:
    """The default backend: a row set plus on-demand hash indexes."""

    __slots__ = ("rows", "indexes")

    def __init__(self, rows: Iterable[Row] | None = None) -> None:
        self.rows: set[Row] = set(rows) if rows is not None else set()
        self.indexes: dict[tuple[int, ...], Index] = {}

    # -- container ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, row: Row) -> bool:
        return row in self.rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    # -- mutation -----------------------------------------------------------
    def insert(self, row: Row) -> bool:
        """Insert one row; True when it was new."""
        if row in self.rows:
            return False
        self.rows.add(row)
        for columns, index in self.indexes.items():
            key = tuple(row[c] for c in columns)
            index.setdefault(key, []).append(row)
        return True

    def add_new(self, rows: Iterable[Row]) -> list[Row]:
        """Insert rows one by one (order-preserving); returns the new ones."""
        store = self.rows
        new_rows: list[Row] = []
        for row in rows:
            if row not in store:
                store.add(row)
                new_rows.append(row)
        self.extend_indexes(new_rows)
        return new_rows

    def merge_new(self, rows: Collection[Row]) -> list[Row]:
        """Bulk insert via one C-level set difference; returns new rows."""
        fresh = set(rows)
        fresh.difference_update(self.rows)
        if not fresh:
            return []
        new_rows = list(fresh)
        self.rows.update(new_rows)
        self.extend_indexes(new_rows)
        return new_rows

    def merge(self, rows: list[Row]) -> None:
        """Bulk insert of rows known to be absent (no duplicate screen)."""
        self.rows.update(rows)
        self.extend_indexes(rows)

    def remove(self, row: Row) -> bool:
        """Remove one row; True when it was present."""
        if row not in self.rows:
            return False
        self.rows.remove(row)
        for columns, index in self.indexes.items():
            key = tuple(row[c] for c in columns)
            bucket = index.get(key)
            if bucket is not None:
                bucket.remove(row)
                if not bucket:
                    del index[key]
        return True

    def clear(self) -> None:
        self.rows.clear()
        self.indexes.clear()

    # -- indexes ------------------------------------------------------------
    def extend_indexes(self, new_rows: list[Row]) -> None:
        """Append already-stored ``new_rows`` to every live index.

        Single-column indexes — the overwhelmingly common case in the
        engines' joins — take a fast path that builds the one-element
        key directly instead of a generator expression per row.
        """
        if not new_rows:
            return
        for columns, index in self.indexes.items():
            if len(columns) == 1:
                column = columns[0]
                get = index.get
                for row in new_rows:
                    key = (row[column],)
                    bucket = get(key)
                    if bucket is None:
                        index[key] = [row]
                    else:
                        bucket.append(row)
            else:
                for row in new_rows:
                    index.setdefault(
                        tuple(row[c] for c in columns), []).append(row)

    def index_for(self, columns: tuple[int, ...]) -> Index:
        """The live hash index over ``columns`` (built on first use)."""
        index = self.indexes.get(columns)
        if index is None:
            index = self._build_index(columns)
        return index

    def _build_index(self, columns: tuple[int, ...]) -> Index:
        index: Index = {}
        if len(columns) == 1:
            column = columns[0]
            get = index.get
            for row in self.rows:
                key = (row[column],)
                bucket = get(key)
                if bucket is None:
                    index[key] = [row]
                else:
                    bucket.append(row)
        else:
            for row in self.rows:
                index.setdefault(
                    tuple(row[c] for c in columns), []).append(row)
        self.indexes[columns] = index
        return index

    # -- lifecycle ----------------------------------------------------------
    def copy(self) -> "DictBackend":
        """An independent backend with the same rows.

        Indexes are **not** carried: they rebuild lazily on first probe
        (:meth:`index_for`), so snapshot-style copies — serving's
        published snapshots, incremental maintenance's before/mid state
        reconstruction — pay O(rows) for the set copy and nothing for
        indexes the copy never probes.
        """
        out = DictBackend.__new__(DictBackend)
        out.rows = set(self.rows)
        out.indexes = {}
        return out


class ShardedBackend(DictBackend):
    """A dict backend that also hash-partitions rows into shard buckets.

    Rows land in ``shard_lists[hash(row[key_column]) % shard_count]`` as
    they are inserted, so the parallel executor's scatter step is a list
    access, not a partition pass.  The key column is normally chosen by
    :func:`repro.engine.parallel.choose_partition_key` (the column with
    the most distinct values — statistics the relation already
    maintains); partitioning never affects results, only balance, since
    derived rows are merged and deduplicated centrally.
    """

    __slots__ = ("shard_count", "key_column", "shard_lists", "rebalances")

    def __init__(self, shard_count: int, key_column: int = 0,
                 rows: Iterable[Row] | None = None) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        super().__init__()
        self.shard_count = shard_count
        self.key_column = key_column
        self.shard_lists: list[list[Row]] = [
            [] for _ in range(shard_count)]
        #: Times :meth:`rebalance` actually repartitioned.
        self.rebalances = 0
        if rows is not None:
            self.merge_new(list(rows))

    # -- mutation (bucket-maintaining overrides) ----------------------------
    def _scatter(self, new_rows: Iterable[Row]) -> None:
        lists = self.shard_lists
        count = self.shard_count
        column = self.key_column
        for row in new_rows:
            lists[hash(row[column]) % count].append(row)

    def insert(self, row: Row) -> bool:
        if super().insert(row):
            self.shard_lists[
                hash(row[self.key_column]) % self.shard_count].append(row)
            return True
        return False

    def add_new(self, rows: Iterable[Row]) -> list[Row]:
        new_rows = super().add_new(rows)
        self._scatter(new_rows)
        return new_rows

    def merge_new(self, rows: Collection[Row]) -> list[Row]:
        new_rows = super().merge_new(rows)
        self._scatter(new_rows)
        return new_rows

    def merge(self, rows: list[Row]) -> None:
        super().merge(rows)
        self._scatter(rows)

    def remove(self, row: Row) -> bool:
        if super().remove(row):
            self.shard_lists[
                hash(row[self.key_column]) % self.shard_count].remove(row)
            return True
        return False

    def clear(self) -> None:
        super().clear()
        self.shard_lists = [[] for _ in range(self.shard_count)]

    # -- sharding -----------------------------------------------------------
    def imbalance(self) -> float:
        """Largest bucket over the ideal (rows / shards); 1.0 = perfect."""
        total = len(self.rows)
        if not total:
            return 1.0
        ideal = total / self.shard_count
        return max(len(bucket) for bucket in self.shard_lists) / ideal

    def rebalance(self, key_column: int) -> bool:
        """Repartition every bucket by a new key column.

        Returns True when the key actually changed (a no-op rebalance
        onto the current key is skipped — hashing is deterministic, so
        the partition would come out identical).
        """
        if key_column == self.key_column:
            return False
        self.key_column = key_column
        self.shard_lists = [[] for _ in range(self.shard_count)]
        self._scatter(self.rows)
        self.rebalances += 1
        return True

    def copy(self) -> "ShardedBackend":
        out = ShardedBackend.__new__(ShardedBackend)
        out.rows = set(self.rows)
        out.indexes = {}
        out.shard_count = self.shard_count
        out.key_column = self.key_column
        out.shard_lists = [list(bucket) for bucket in self.shard_lists]
        out.rebalances = self.rebalances
        return out
