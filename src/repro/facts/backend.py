"""Pluggable tuple-storage backends for :class:`~repro.facts.relation.Relation`.

A :class:`Relation` owns the *semantics* of a stored predicate — arity
checks, value/code translation against a shared symbol table, statistics
— while the physical row container and its hash indexes live behind a
*storage backend*.  The contract is deliberately small and concrete:

- ``rows`` is the storage-domain row **set** (read-only to callers; the
  kernels' scans and negation membership tests probe it directly);
- ``indexes`` maps a sorted column tuple to the live hash index over
  those columns (read-only to callers; kernel probes resolve buckets
  from it directly);
- every **mutation** goes through the backend's methods, so a backend
  that maintains extra structure (shard buckets, columnar arrays, a
  write-ahead log) observes every insert and delete.

Every backend also carries a ``(uid, version)`` identity: ``uid`` is
unique per backend instance and ``version`` bumps on every mutation that
changed content.  The vectorized executor's column-level predicate cache
(:mod:`repro.engine.vectorize`) keys memoized check results on this pair,
so the *invalidation rule* is simply "any content change bumps the
version and orphans the cached entry".

Three index families are maintained:

- ``indexes`` — tuple-keyed multi-column indexes (``index_for``);
- ``code_indexes`` — single-column indexes keyed by the **bare** stored
  value (``code_index_for``), saving a 1-tuple allocation + hash per
  probe on the single-column joins that dominate recursive workloads;
- ``proj_indexes`` — projection indexes mapping a bare key-column value
  to the list of *another column's* entries for matching rows
  (``projection_index``), so a final join level can emit projected
  values without touching row tuples at all.

:class:`DictBackend` is the default: a ``set`` of tuples plus on-demand
``dict`` indexes — semantically exactly the storage the engine always
had.  :class:`ShardedBackend` additionally hash-partitions rows into
``shard_count`` buckets by one *key column*, which is what the parallel
executor (:mod:`repro.engine.parallel`) scatters kernel firings over.
:class:`ColumnarBackend` mirrors interned rows into per-column
``array('q')`` stores with O(1) copy-on-write snapshots — the substrate
the vectorized executor and the fork pool's raw-array shipping use.
"""

from __future__ import annotations

import itertools
from array import array
from typing import (Any, Collection, Iterable, Iterator, Protocol,
                    runtime_checkable)

Row = tuple[Any, ...]

#: A hash index: bound-column key tuple -> list of rows with those values.
Index = dict[tuple[Any, ...], list[Row]]

#: Monotone source of backend identities (see ``StorageBackend.uid``).
_uids = itertools.count(1)


@runtime_checkable
class StorageBackend(Protocol):
    """The storage contract a :class:`Relation` delegates to.

    ``rows`` and ``indexes`` are exposed as plain containers because the
    compiled kernels' hot paths read them without per-probe indirection;
    they must be treated as read-only outside the backend.
    """

    rows: set[Row]
    indexes: dict[tuple[int, ...], Index]
    code_indexes: dict[int, dict[Any, list[Row]]]
    proj_indexes: dict[tuple[int, int], dict[Any, list[Any]]]
    uid: int
    version: int

    def __len__(self) -> int: ...
    def __contains__(self, row: Row) -> bool: ...
    def __iter__(self) -> Iterator[Row]: ...
    def insert(self, row: Row) -> bool: ...
    def add_new(self, rows: Iterable[Row]) -> list[Row]: ...
    def merge_new(self, rows: Collection[Row]) -> list[Row]: ...
    def merge(self, rows: list[Row]) -> None: ...
    def remove(self, row: Row) -> bool: ...
    def clear(self) -> None: ...
    def index_for(self, columns: tuple[int, ...]) -> Index: ...
    def code_index_for(self, column: int) -> dict[Any, list[Row]]: ...
    def projection_index(self, key_column: int,
                         value_column: int) -> dict[Any, list[Any]]: ...
    def copy(self) -> "StorageBackend": ...


class DictBackend:
    """The default backend: a row set plus on-demand hash indexes."""

    __slots__ = ("rows", "indexes", "code_indexes", "proj_indexes",
                 "uid", "version")

    def __init__(self, rows: Iterable[Row] | None = None) -> None:
        self.rows: set[Row] = set(rows) if rows is not None else set()
        self.indexes: dict[tuple[int, ...], Index] = {}
        self.code_indexes: dict[int, dict[Any, list[Row]]] = {}
        self.proj_indexes: dict[tuple[int, int], dict[Any, list[Any]]] = {}
        self.uid = next(_uids)
        self.version = 0

    # -- container ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, row: Row) -> bool:
        return row in self.rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    # -- mutation -----------------------------------------------------------
    def insert(self, row: Row) -> bool:
        """Insert one row; True when it was new."""
        if row in self.rows:
            return False
        self.rows.add(row)
        for columns, index in self.indexes.items():
            key = tuple(row[c] for c in columns)
            index.setdefault(key, []).append(row)
        for column, cindex in self.code_indexes.items():
            cindex.setdefault(row[column], []).append(row)
        for (kcol, vcol), pindex in self.proj_indexes.items():
            pindex.setdefault(row[kcol], []).append(row[vcol])
        self.version += 1
        return True

    def add_new(self, rows: Iterable[Row]) -> list[Row]:
        """Insert rows one by one (order-preserving); returns the new ones."""
        store = self.rows
        new_rows: list[Row] = []
        for row in rows:
            if row not in store:
                store.add(row)
                new_rows.append(row)
        self.extend_indexes(new_rows)
        return new_rows

    def merge_new(self, rows: Collection[Row]) -> list[Row]:
        """Bulk insert via one C-level set difference; returns new rows."""
        fresh = set(rows)
        fresh.difference_update(self.rows)
        if not fresh:
            return []
        new_rows = list(fresh)
        self.rows.update(new_rows)
        self.extend_indexes(new_rows)
        return new_rows

    def merge(self, rows: list[Row]) -> None:
        """Bulk insert of rows known to be absent (no duplicate screen)."""
        self.rows.update(rows)
        self.extend_indexes(rows)

    def remove(self, row: Row) -> bool:
        """Remove one row; True when it was present."""
        if row not in self.rows:
            return False
        self.rows.remove(row)
        for columns, index in self.indexes.items():
            key = tuple(row[c] for c in columns)
            bucket = index.get(key)
            if bucket is not None:
                bucket.remove(row)
                if not bucket:
                    del index[key]
        for column, cindex in self.code_indexes.items():
            bucket = cindex.get(row[column])
            if bucket is not None:
                bucket.remove(row)
                if not bucket:
                    del cindex[row[column]]
        for (kcol, vcol), pindex in self.proj_indexes.items():
            bucket = pindex.get(row[kcol])
            if bucket is not None:
                bucket.remove(row[vcol])
                if not bucket:
                    del pindex[row[kcol]]
        self.version += 1
        return True

    def clear(self) -> None:
        self.rows.clear()
        self.indexes.clear()
        self.code_indexes.clear()
        self.proj_indexes.clear()
        self.version += 1

    # -- indexes ------------------------------------------------------------
    def extend_indexes(self, new_rows: list[Row]) -> None:
        """Append already-stored ``new_rows`` to every live index.

        Single-column indexes — the overwhelmingly common case in the
        engines' joins — take a fast path that builds the one-element
        key directly instead of a generator expression per row.
        """
        if not new_rows:
            return
        for columns, index in self.indexes.items():
            if len(columns) == 1:
                column = columns[0]
                get = index.get
                for row in new_rows:
                    key = (row[column],)
                    bucket = get(key)
                    if bucket is None:
                        index[key] = [row]
                    else:
                        bucket.append(row)
            else:
                for row in new_rows:
                    index.setdefault(
                        tuple(row[c] for c in columns), []).append(row)
        for column, cindex in self.code_indexes.items():
            get = cindex.get
            for row in new_rows:
                code = row[column]
                bucket = get(code)
                if bucket is None:
                    cindex[code] = [row]
                else:
                    bucket.append(row)
        for (kcol, vcol), pindex in self.proj_indexes.items():
            get = pindex.get
            for row in new_rows:
                code = row[kcol]
                bucket = get(code)
                if bucket is None:
                    pindex[code] = [row[vcol]]
                else:
                    bucket.append(row[vcol])
        self.version += 1

    def index_for(self, columns: tuple[int, ...]) -> Index:
        """The live hash index over ``columns`` (built on first use)."""
        index = self.indexes.get(columns)
        if index is None:
            index = self._build_index(columns)
        return index

    def _build_index(self, columns: tuple[int, ...]) -> Index:
        index: Index = {}
        if len(columns) == 1:
            column = columns[0]
            get = index.get
            for row in self.rows:
                key = (row[column],)
                bucket = get(key)
                if bucket is None:
                    index[key] = [row]
                else:
                    bucket.append(row)
        else:
            for row in self.rows:
                index.setdefault(
                    tuple(row[c] for c in columns), []).append(row)
        self.indexes[columns] = index
        return index

    def code_index_for(self, column: int) -> dict[Any, list[Row]]:
        """A single-column index keyed by the **bare** stored value.

        Unlike ``index_for((column,))`` the keys are the column values
        themselves, not 1-tuples — the vectorized kernels probe it with
        ``index.get(code)`` and never allocate a key tuple per row.
        """
        index = self.code_indexes.get(column)
        if index is None:
            index = {}
            get = index.get
            for row in self.rows:
                code = row[column]
                bucket = get(code)
                if bucket is None:
                    index[code] = [row]
                else:
                    bucket.append(row)
            self.code_indexes[column] = index
        return index

    def projection_index(self, key_column: int,
                         value_column: int) -> dict[Any, list[Any]]:
        """Bare key-column value -> list of ``value_column`` entries.

        One entry per matching row (a multiset, so duplicate projected
        values are preserved and the vectorized kernels' row counts stay
        exact).  Lets a final join level emit projected head values
        without indexing into row tuples at all.
        """
        key = (key_column, value_column)
        proj = self.proj_indexes.get(key)
        if proj is None:
            proj = {}
            get = proj.get
            for row in self.rows:
                code = row[key_column]
                bucket = get(code)
                if bucket is None:
                    proj[code] = [row[value_column]]
                else:
                    bucket.append(row[value_column])
            self.proj_indexes[key] = proj
        return proj

    # -- lifecycle ----------------------------------------------------------
    def copy(self) -> "DictBackend":
        """An independent backend with the same rows.

        Indexes are **not** carried: they rebuild lazily on first probe
        (:meth:`index_for`), so snapshot-style copies — serving's
        published snapshots, incremental maintenance's before/mid state
        reconstruction — pay O(rows) for the set copy and nothing for
        indexes the copy never probes.  The copy gets a fresh
        ``(uid, version)`` identity so cached predicate checks against
        the source never leak to it.
        """
        out = DictBackend.__new__(DictBackend)
        out.rows = set(self.rows)
        out.indexes = {}
        out.code_indexes = {}
        out.proj_indexes = {}
        out.uid = next(_uids)
        out.version = 0
        return out


class ShardedBackend(DictBackend):
    """A dict backend that also hash-partitions rows into shard buckets.

    Rows land in ``shard_lists[hash(row[key_column]) % shard_count]`` as
    they are inserted, so the parallel executor's scatter step is a list
    access, not a partition pass.  The key column is normally chosen by
    :func:`repro.engine.parallel.choose_partition_key` (the column with
    the most distinct values — statistics the relation already
    maintains); partitioning never affects results, only balance, since
    derived rows are merged and deduplicated centrally.

    The largest bucket size is tracked incrementally (``_max_shard``)
    so the barrier-time ``rebalance_if_skewed`` skew probe —
    :meth:`imbalance` — is O(1) instead of a scan over every shard.
    """

    __slots__ = ("shard_count", "key_column", "shard_lists", "rebalances",
                 "_max_shard")

    def __init__(self, shard_count: int, key_column: int = 0,
                 rows: Iterable[Row] | None = None) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        super().__init__()
        self.shard_count = shard_count
        self.key_column = key_column
        self.shard_lists: list[list[Row]] = [
            [] for _ in range(shard_count)]
        #: Times :meth:`rebalance` actually repartitioned.
        self.rebalances = 0
        #: Incrementally maintained ``max(len(bucket))`` over the shards.
        self._max_shard = 0
        if rows is not None:
            self.merge_new(list(rows))

    # -- mutation (bucket-maintaining overrides) ----------------------------
    def _scatter(self, new_rows: Iterable[Row]) -> None:
        lists = self.shard_lists
        count = self.shard_count
        column = self.key_column
        largest = self._max_shard
        for row in new_rows:
            bucket = lists[hash(row[column]) % count]
            bucket.append(row)
            if len(bucket) > largest:
                largest = len(bucket)
        self._max_shard = largest

    def insert(self, row: Row) -> bool:
        if super().insert(row):
            bucket = self.shard_lists[
                hash(row[self.key_column]) % self.shard_count]
            bucket.append(row)
            if len(bucket) > self._max_shard:
                self._max_shard = len(bucket)
            return True
        return False

    def add_new(self, rows: Iterable[Row]) -> list[Row]:
        new_rows = super().add_new(rows)
        self._scatter(new_rows)
        return new_rows

    def merge_new(self, rows: Collection[Row]) -> list[Row]:
        new_rows = super().merge_new(rows)
        self._scatter(new_rows)
        return new_rows

    def merge(self, rows: list[Row]) -> None:
        super().merge(rows)
        self._scatter(rows)

    def remove(self, row: Row) -> bool:
        if super().remove(row):
            bucket = self.shard_lists[
                hash(row[self.key_column]) % self.shard_count]
            was_max = len(bucket) >= self._max_shard
            bucket.remove(row)
            if was_max:
                # The shrunk bucket may have been the (only) largest;
                # the true max is within 1 of the counter, so this
                # O(shards) recompute runs only on removals from a
                # maximal bucket — never on the append fast path.
                self._max_shard = max(
                    (len(b) for b in self.shard_lists), default=0)
            return True
        return False

    def clear(self) -> None:
        super().clear()
        self.shard_lists = [[] for _ in range(self.shard_count)]
        self._max_shard = 0

    # -- sharding -----------------------------------------------------------
    def imbalance(self) -> float:
        """Largest bucket over the ideal (rows / shards); 1.0 = perfect.

        O(1): reads the incrementally maintained largest-bucket counter
        instead of scanning every shard at each barrier-time check.
        """
        total = len(self.rows)
        if not total:
            return 1.0
        ideal = total / self.shard_count
        return self._max_shard / ideal

    def rebalance(self, key_column: int) -> bool:
        """Repartition every bucket by a new key column.

        Returns True when the key actually changed (a no-op rebalance
        onto the current key is skipped — hashing is deterministic, so
        the partition would come out identical).
        """
        if key_column == self.key_column:
            return False
        self.key_column = key_column
        self.shard_lists = [[] for _ in range(self.shard_count)]
        self._max_shard = 0
        self._scatter(self.rows)
        self.rebalances += 1
        return True

    def copy(self) -> "ShardedBackend":
        out = ShardedBackend.__new__(ShardedBackend)
        out.rows = set(self.rows)
        out.indexes = {}
        out.code_indexes = {}
        out.proj_indexes = {}
        out.uid = next(_uids)
        out.version = 0
        out.shard_count = self.shard_count
        out.key_column = self.key_column
        out.shard_lists = [list(bucket) for bucket in self.shard_lists]
        out.rebalances = self.rebalances
        out._max_shard = self._max_shard
        return out


class ColumnarBackend(DictBackend):
    """Interned rows mirrored into append-only per-column ``array('q')``.

    The row **set** stays the membership/dedup structure (the engines'
    set-difference bulk inserts and negation probes are untouched), but
    every stored column is also kept as a dense signed-64 array of
    interned codes:

    - the fork-mode parallel pool ships replicas as the raw column
      arrays (no per-row packing pass);
    - ``Relation.column_view`` snapshots are a C-level array copy;
    - :meth:`id_index_for` maps a key-column code to the ``array('q')``
      of row ids carrying it (row-id runs), from which
      :meth:`projection_index` gathers projected columns directly.

    ``copy()`` is O(1) copy-on-write: parent and child share the row set
    and column arrays until either side next mutates, at which point the
    writer privatizes its containers.  Rows must be tuples of ints
    (interned codes) — the backend is only ever constructed for interned
    databases.

    Removals mark the columns *dirty* (append-only arrays cannot cheaply
    delete); the next columnar read rebuilds them from the row set.

    Column arrays are **lazy**: nothing is materialized until the first
    columnar read (``columns()`` / ``id_index_for``).  Relations that
    are only ever probed through the dict indexes — delta frontiers,
    IDB accumulators — therefore pay exactly what :class:`DictBackend`
    pays on the hot insert path; the arrays exist only where a reader
    (projection index, column view, fork-pool replica shipping)
    actually asked for them, and from then on are maintained
    incrementally by the append path.
    """

    __slots__ = ("arity", "_columns", "_id_indexes", "_shared", "_dirty")

    def __init__(self, arity: int, rows: Iterable[Row] | None = None) -> None:
        super().__init__()
        self.arity = arity
        self._columns: list[array[int]] | None = None
        self._id_indexes: dict[int, dict[int, array[int]]] = {}
        self._shared = False
        self._dirty = False
        if rows is not None:
            self.merge_new(list(rows))

    # -- copy-on-write ------------------------------------------------------
    def _privatize(self) -> None:
        """Detach from any snapshot sharing this backend's containers."""
        self.rows = set(self.rows)
        if self._columns is not None:
            self._columns = [array("q", col) for col in self._columns]
        self._id_indexes = {}
        self._shared = False

    def _append_rows(self, new_rows: Collection[Row]) -> None:
        cols = self._columns
        if cols is None or self._dirty or not new_rows:
            return
        if not cols:
            return
        base = len(cols[0])
        for i, col in enumerate(cols):
            col.extend([row[i] for row in new_rows])
        for column, index in self._id_indexes.items():
            get = index.get
            rid = base
            for row in new_rows:
                code = row[column]
                ids = get(code)
                if ids is None:
                    index[code] = array("q", (rid,))
                else:
                    ids.append(rid)
                rid += 1

    # -- mutation (column-maintaining overrides) ----------------------------
    def insert(self, row: Row) -> bool:
        if self._shared and row not in self.rows:
            self._privatize()
        if not super().insert(row):
            return False
        self._append_rows((row,))
        return True

    def add_new(self, rows: Iterable[Row]) -> list[Row]:
        if self._shared:
            self._privatize()
        new_rows = super().add_new(rows)
        self._append_rows(new_rows)
        return new_rows

    def merge_new(self, rows: Collection[Row]) -> list[Row]:
        if self._shared:
            self._privatize()
        new_rows = super().merge_new(rows)
        self._append_rows(new_rows)
        return new_rows

    def merge(self, rows: list[Row]) -> None:
        if self._shared:
            self._privatize()
        super().merge(rows)
        self._append_rows(rows)

    def remove(self, row: Row) -> bool:
        if self._shared and row in self.rows:
            self._privatize()
        if not super().remove(row):
            return False
        self._dirty = True
        self._id_indexes.clear()
        return True

    def clear(self) -> None:
        # Never clear shared containers in place — replace them.
        self.rows = set()
        self.indexes = {}
        self.code_indexes = {}
        self.proj_indexes = {}
        self._columns = None
        self._id_indexes = {}
        self._shared = False
        self._dirty = False
        self.version += 1

    # -- columnar access ----------------------------------------------------
    def columns(self) -> list[array[int]]:
        """The live per-column arrays (built lazily, rebuilt when dirty)."""
        if self._columns is None or self._dirty:
            snapshot = list(self.rows)
            self._columns = [
                array("q", [row[i] for row in snapshot])
                for i in range(self.arity)]
            self._dirty = False
        return self._columns

    def id_index_for(self, column: int) -> dict[int, array[int]]:
        """Key-column code -> ``array('q')`` of row ids carrying it."""
        index = self._id_indexes.get(column)
        if index is None:
            index = {}
            get = index.get
            for rid, code in enumerate(self.columns()[column]):
                ids = get(code)
                if ids is None:
                    index[code] = array("q", (rid,))
                else:
                    ids.append(rid)
            self._id_indexes[column] = index
        return index

    def projection_index(self, key_column: int,
                         value_column: int) -> dict[Any, list[Any]]:
        key = (key_column, value_column)
        proj = self.proj_indexes.get(key)
        if proj is None:
            # Gather from the dense value column through the row-id runs
            # — no row-tuple indexing on the build either.
            vals = self.columns()[value_column]
            proj = {
                code: [vals[i] for i in ids]
                for code, ids in self.id_index_for(key_column).items()}
            self.proj_indexes[key] = proj
        return proj

    # -- lifecycle ----------------------------------------------------------
    def copy(self) -> "ColumnarBackend":
        """An O(1) snapshot sharing rows and columns copy-on-write."""
        out = ColumnarBackend.__new__(ColumnarBackend)
        out.rows = self.rows
        out.indexes = {}
        out.code_indexes = {}
        out.proj_indexes = {}
        out.uid = next(_uids)
        out.version = 0
        out.arity = self.arity
        out._columns = self._columns
        out._id_indexes = {}
        out._shared = True
        out._dirty = self._dirty
        self._shared = True
        return out
