"""EDB versioning: changesets and the change-log database.

A :class:`Changeset` is a batch of EDB insertions and deletions —
the unit of update traffic a serving deployment applies between
queries.  Semantics are *set-oriented and order-free*: applying
``(inserts, deletes)`` to a database ``db`` produces
``(db - deletes) | inserts`` (a row present in both sets ends up
present).

A :class:`VersionedDatabase` wraps a :class:`~repro.facts.database.
Database` with a monotonically increasing version number and a
change-log of *effective* changesets: :meth:`VersionedDatabase.apply`
records only the rows that actually changed membership (deletes that
were present, inserts that were absent), so the log entries compose
exactly.  :meth:`VersionedDatabase.changes_since` folds the log into
one net changeset between two versions — precisely the delta the
incremental maintenance engine (:mod:`repro.incremental`) needs to
bring a stale materialized view current without replaying history.

The text syntax mirrors the fact syntax with a sign prefix::

    +edge(a, b).
    -edge(c, d).

one signed fact per statement (several may share a line).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from ..datalog.parser import parse_statements
from ..datalog.rules import Rule
from ..datalog.terms import Constant, ConstValue
from ..errors import EvaluationError, ParseError
from .database import Database
from .relation import Row


@dataclass
class Changeset:
    """A batch of EDB insertions and deletions, by predicate name."""

    inserts: dict[str, set[Row]] = field(default_factory=dict)
    deletes: dict[str, set[Row]] = field(default_factory=dict)

    # -- construction --------------------------------------------------------
    def insert(self, pred: str, row: Iterable[ConstValue]) -> "Changeset":
        """Schedule one insertion; returns ``self`` for chaining."""
        self.inserts.setdefault(pred, set()).add(tuple(row))
        return self

    def delete(self, pred: str, row: Iterable[ConstValue]) -> "Changeset":
        """Schedule one deletion; returns ``self`` for chaining."""
        self.deletes.setdefault(pred, set()).add(tuple(row))
        return self

    @classmethod
    def from_text(cls, text: str) -> "Changeset":
        """Parse signed fact syntax (``+p(a). -q(b, c).``)."""
        changeset = cls()
        for signed in _split_signed(text):
            sign, fact_text = signed
            for statement in parse_statements(fact_text):
                if not isinstance(statement, Rule) or statement.body:
                    raise ParseError(
                        f"changeset entries must be ground facts, "
                        f"found: {statement}")
                values = []
                for arg in statement.head.args:
                    if not isinstance(arg, Constant):
                        raise ParseError(
                            f"changeset fact is not ground: "
                            f"{statement.head}")
                    values.append(arg.value)
                if sign == "+":
                    changeset.insert(statement.head.pred, values)
                else:
                    changeset.delete(statement.head.pred, values)
        return changeset

    def to_text(self) -> str:
        """Serialize as signed fact syntax (sorted, round-trippable)."""
        lines = []
        for sign, by_pred in (("-", self.deletes), ("+", self.inserts)):
            for pred in sorted(by_pred):
                for row in sorted(by_pred[pred],
                                  key=lambda r: tuple(map(str, r))):
                    args = ", ".join(str(Constant(v)) for v in row)
                    lines.append(f"{sign}{pred}({args}).")
        return "\n".join(lines)

    # -- inspection ----------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not any(self.inserts.values()) \
            and not any(self.deletes.values())

    def total_inserts(self) -> int:
        return sum(len(rows) for rows in self.inserts.values())

    def total_deletes(self) -> int:
        return sum(len(rows) for rows in self.deletes.values())

    def predicates(self) -> frozenset[str]:
        """Every predicate the changeset touches."""
        return frozenset(self.inserts) | frozenset(self.deletes)

    def __repr__(self) -> str:
        return (f"Changeset(+{self.total_inserts()}, "
                f"-{self.total_deletes()})")

    # -- algebra -------------------------------------------------------------
    def normalized(self) -> "Changeset":
        """An equivalent changeset with no row in both sets.

        ``(db - D) | I`` leaves a row present whenever it is inserted,
        regardless of a simultaneous delete, so rows in both sets can
        drop out of ``deletes`` (never out of ``inserts`` — the row may
        be absent from ``db``).
        """
        out = Changeset(
            inserts={pred: set(rows)
                     for pred, rows in self.inserts.items() if rows})
        for pred, rows in self.deletes.items():
            kept = rows - self.inserts.get(pred, set())
            if kept:
                out.deletes[pred] = kept
        return out

    def inverted(self) -> "Changeset":
        """The changeset that undoes this one.

        Exact for *effective* changesets (each delete was present, each
        insert absent — what :meth:`VersionedDatabase.apply` records):
        applying ``self`` then ``self.inverted()`` restores the
        original database.  :meth:`VersionedDatabase.state_at` uses
        this to reconstruct historical versions from the log.
        """
        return Changeset(
            inserts={pred: set(rows)
                     for pred, rows in self.deletes.items()},
            deletes={pred: set(rows)
                     for pred, rows in self.inserts.items()})

    def compose(self, later: "Changeset") -> "Changeset":
        """The net effect of applying ``self`` then ``later``.

        Exact when both changesets are *effective* (each delete was
        present, each insert absent, as recorded by
        :meth:`VersionedDatabase.apply`): a later delete cancels an
        earlier insert and vice versa.
        """
        inserts = {pred: set(rows) for pred, rows in self.inserts.items()}
        deletes = {pred: set(rows) for pred, rows in self.deletes.items()}
        for pred, rows in later.deletes.items():
            pending = inserts.get(pred, set())
            for row in rows:
                if row in pending:
                    pending.discard(row)
                else:
                    deletes.setdefault(pred, set()).add(row)
        for pred, rows in later.inserts.items():
            removed = deletes.get(pred, set())
            for row in rows:
                if row in removed:
                    removed.discard(row)
                else:
                    inserts.setdefault(pred, set()).add(row)
        return Changeset(
            inserts={p: r for p, r in inserts.items() if r},
            deletes={p: r for p, r in deletes.items() if r})


def random_changeset(db: Database, rng: random.Random,
                     insert_fraction: float = 0.0,
                     delete_fraction: float = 0.0,
                     preds: Iterable[str] | None = None) -> Changeset:
    """A random changeset over ``db``'s relations, for tests and benches.

    Deletions sample existing rows; insertions recombine per-column
    values already present in the relation (so they join like real
    data), skipping rows the relation already holds.  Fractions are of
    each relation's cardinality, rounded up to at least one row when
    the fraction is positive and the relation is non-empty.
    """
    changeset = Changeset()
    for pred in sorted(preds if preds is not None else db):
        rows = sorted(db.facts(pred), key=lambda r: tuple(map(str, r)))
        if not rows:
            continue
        if delete_fraction > 0:
            count = max(1, int(len(rows) * delete_fraction))
            for row in rng.sample(rows, min(count, len(rows))):
                changeset.delete(pred, row)
        if insert_fraction > 0:
            count = max(1, int(len(rows) * insert_fraction))
            columns = [sorted({row[c] for row in rows}, key=str)
                       for c in range(len(rows[0]))]
            existing = set(rows)
            made = 0
            for _ in range(count * 20):
                if made >= count:
                    break
                candidate = tuple(rng.choice(column) for column in columns)
                if candidate in existing:
                    continue
                existing.add(candidate)
                changeset.insert(pred, candidate)
                made += 1
    return changeset


def _split_signed(text: str) -> Iterator[tuple[str, str]]:
    """Split changeset text into (sign, fact-statement) pairs."""
    depth = 0
    start = None
    sign = None
    for position, char in enumerate(text):
        if start is None:
            if char in "+-":
                sign = char
                start = position + 1
            elif not char.isspace():
                raise ParseError(
                    f"changeset entries must start with '+' or '-', "
                    f"found {char!r}")
            continue
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif char == "." and depth == 0:
            assert sign is not None
            yield sign, text[start:position + 1]
            start = None
            sign = None
    if start is not None:
        raise ParseError("unterminated changeset entry (missing '.')")


@dataclass(frozen=True)
class AppliedChange:
    """One change-log entry: the version it produced and its effect."""

    version: int
    changeset: Changeset


class VersionedDatabase:
    """A database under a monotone version counter and a change-log.

    The wrapped :attr:`db` is mutated in place by :meth:`apply`; readers
    holding the database object always see the newest version.  The log
    keeps the *effective* changeset per version so any two versions can
    be diffed with :meth:`changes_since`.
    """

    def __init__(self, db: Database | None = None) -> None:
        self.db = db if db is not None else Database()
        self.version = 0
        self.log: list[AppliedChange] = []

    def __repr__(self) -> str:
        return f"VersionedDatabase(v{self.version}, {self.db!r})"

    def apply(self, changeset: Changeset,
              idb_predicates: Iterable[str] = ()) -> int:
        """Apply a changeset; returns the new version number.

        Deletions of absent rows and insertions of present rows are
        no-ops and are *not* recorded — the logged changeset is the
        exact membership delta.  ``idb_predicates`` (when the caller
        knows the program) guards against changesets that try to
        mutate derived relations directly.
        """
        derived = changeset.predicates() & frozenset(idb_predicates)
        if derived:
            raise EvaluationError(
                f"changeset touches IDB predicate"
                f"{'s' if len(derived) > 1 else ''} "
                f"{', '.join(sorted(derived))}; only EDB relations can "
                "be updated")
        normalized = changeset.normalized()
        effective = Changeset()
        for pred, rows in normalized.deletes.items():
            rel = self.db.relation_or_empty(pred, _arity_of(rows))
            for row in sorted(rows, key=lambda r: tuple(map(str, r))):
                if rel.discard(row):
                    effective.delete(pred, row)
        for pred, rows in normalized.inserts.items():
            rel = self.db.ensure(pred, _arity_of(rows))
            for row in sorted(rows, key=lambda r: tuple(map(str, r))):
                if rel.add(row):
                    effective.insert(pred, row)
        self.version += 1
        self.log.append(AppliedChange(self.version, effective))
        return self.version

    def changes_since(self, version: int) -> Changeset:
        """The net changeset between ``version`` and :attr:`version`."""
        if version > self.version:
            raise EvaluationError(
                f"version {version} is ahead of the database "
                f"(at {self.version})")
        net = Changeset()
        for entry in self.log:
            if entry.version > version:
                net = net.compose(entry.changeset)
        return net

    def snapshot(self) -> Database:
        """An independent copy of the current database state."""
        return self.db.copy()

    def state_at(self, version: int) -> Database:
        """An independent copy of the database as of ``version``.

        Reconstructed by rolling the net changeset since ``version``
        back over a copy of the current state — the log records
        effective deltas, so the inverse replay is exact.  This is what
        lets a differential test check an MVCC snapshot served at
        version ``v`` against a from-scratch evaluation *at* ``v``
        while the live database has long since moved on.
        """
        net = self.changes_since(version)
        out = self.snapshot()
        if net.is_empty:
            return out
        inverse = net.inverted()
        for pred, rows in inverse.deletes.items():
            rel = out.relation_or_empty(pred, _arity_of(rows))
            rel.discard_all(rows)
        for pred, rows in inverse.inserts.items():
            out.ensure(pred, _arity_of(rows)).add_all(rows)
        return out


def _arity_of(rows: Mapping | set) -> int:
    return len(next(iter(rows)))
