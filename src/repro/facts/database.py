"""The extensional database: a dictionary of named relations."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Optional

from ..datalog.atoms import Atom
from ..datalog.parser import parse_statements
from ..datalog.rules import Rule
from ..datalog.terms import Constant, ConstValue
from ..errors import EvaluationError
from .backend import StorageBackend
from .relation import Relation, Row
from .symbols import SymbolTable

#: Builds the storage backend for a new relation: ``(name, arity)`` ->
#: backend, or None to use the default :class:`DictBackend`.
BackendFactory = Callable[[str, int], Optional[StorageBackend]]


class Database:
    """A mapping from predicate name to :class:`Relation`.

    Databases are mutable; evaluation engines never mutate the EDB they are
    given (IDB results are accumulated in a separate database).

    A database constructed with a :class:`SymbolTable` (``symbols=``)
    stores every relation in interned mode: rows are dense ``int``
    codes, with values encoded/decoded at the value-level API boundary.
    The table is shared across all relations of the database — and with
    the IDB/delta databases the engines derive from it — so codes are
    comparable everywhere.
    """

    def __init__(self,
                 relations: Mapping[str, Iterable[Row]] | None = None,
                 symbols: SymbolTable | None = None,
                 backend_factory: BackendFactory | None = None) -> None:
        self._relations: dict[str, Relation] = {}
        #: The shared intern table, or None for raw storage.
        self.symbols = symbols
        #: Storage factory applied to relations created via :meth:`ensure`
        #: (e.g. columnar storage under the vectorized executor).
        self.backend_factory = backend_factory
        if relations:
            for name, rows in relations.items():
                for row in rows:
                    self.add_fact(name, *row)

    # -- container protocol -------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}/{rel.arity}:{len(rel)}"
                          for name, rel in sorted(self._relations.items()))
        return f"Database({inner})"

    # -- access ---------------------------------------------------------------
    def relation(self, name: str) -> Relation:
        """The relation for ``name``; raises on unknown predicates."""
        try:
            return self._relations[name]
        except KeyError:
            raise EvaluationError(f"unknown relation {name!r}") from None

    def relation_or_empty(self, name: str, arity: int) -> Relation:
        """The relation for ``name`` or a fresh empty one of ``arity``."""
        rel = self._relations.get(name)
        if rel is None:
            return Relation(name, arity, symbols=self.symbols)
        return rel

    def ensure(self, name: str, arity: int) -> Relation:
        """Get-or-create the relation for ``name``."""
        rel = self._relations.get(name)
        if rel is None:
            backend = (self.backend_factory(name, arity)
                       if self.backend_factory is not None else None)
            rel = Relation(name, arity, symbols=self.symbols,
                           backend=backend)
            self._relations[name] = rel
        elif rel.arity != arity:
            raise EvaluationError(
                f"relation {name!r} has arity {rel.arity}, not {arity}")
        return rel

    def predicates(self) -> frozenset[str]:
        return frozenset(self._relations)

    def total_facts(self) -> int:
        return sum(len(rel) for rel in self._relations.values())

    # -- mutation ----------------------------------------------------------------
    def add_fact(self, name: str, *values: ConstValue) -> bool:
        """Add one ground fact; returns True when new."""
        return self.ensure(name, len(values)).add(values)

    def add_atom(self, atom: Atom) -> bool:
        """Add a ground atom (every argument must be a constant)."""
        values = []
        for arg in atom.args:
            if not isinstance(arg, Constant):
                raise EvaluationError(f"fact is not ground: {atom}")
            values.append(arg.value)
        return self.add_fact(atom.pred, *values)

    def remove_fact(self, name: str, *values: ConstValue) -> bool:
        """Remove one ground fact; returns True when it was present."""
        rel = self._relations.get(name)
        return rel is not None and rel.discard(values)

    def facts(self, name: str) -> frozenset[Row]:
        """All rows of ``name`` (empty when the relation is unknown)."""
        rel = self._relations.get(name)
        return rel.rows() if rel is not None else frozenset()

    def copy(self) -> "Database":
        out = Database(symbols=self.symbols,
                       backend_factory=self.backend_factory)
        for name, rel in self._relations.items():
            out._relations[name] = rel.copy()
        return out

    def interned(self, symbols: SymbolTable | None = None,
                 backend_factory: BackendFactory | None = None) -> "Database":
        """This database re-encoded over a :class:`SymbolTable`.

        Returns ``self`` unchanged when already interned; otherwise a
        new database sharing no storage with this one, with every
        constant interned into ``symbols`` (a fresh table by default)
        and relations stored via ``backend_factory`` when given (the
        vectorized executor passes a columnar factory here).
        Cost is one pass over the facts; evaluation entry points call
        this once per run when ``interning="on"``.
        """
        if self.symbols is not None:
            return self
        out = Database(symbols=symbols if symbols is not None
                       else SymbolTable(),
                       backend_factory=backend_factory)
        for name, rel in self._relations.items():
            out.ensure(name, rel.arity).add_all(rel)
        return out

    def merge(self, other: "Database") -> int:
        """Add every fact of ``other``; returns the number of new facts."""
        added = 0
        for name in other:
            rel = other.relation(name)
            added += self.ensure(name, rel.arity).add_all(rel)
        return added

    # -- text I/O -------------------------------------------------------------
    @classmethod
    def from_text(cls, text: str) -> "Database":
        """Build a database from fact syntax, e.g. ``par(ann, bob, 30).``"""
        db = cls()
        for statement in parse_statements(text):
            if not isinstance(statement, Rule) or statement.body:
                raise EvaluationError(
                    f"expected only facts, found: {statement}")
            db.add_atom(statement.head)
        return db

    def to_text(self) -> str:
        """Serialize as fact syntax (sorted, round-trippable)."""
        lines = []
        for name in sorted(self._relations):
            for row in sorted(self._relations[name],
                              key=lambda r: tuple(map(str, r))):
                args = ", ".join(str(Constant(v)) for v in row)
                lines.append(f"{name}({args}).")
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        names = self.predicates() | other.predicates()
        return all(self.facts(n) == other.facts(n) for n in names)

    def __hash__(self) -> int:  # pragma: no cover - mutable, rarely hashed
        return id(self)
