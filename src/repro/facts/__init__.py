"""EDB storage: indexed relations, databases, CSV import/export."""

from .relation import Relation, Row
from .database import Database
from .io import load_csv, load_directory, save_csv, save_directory

__all__ = ["Relation", "Row", "Database",
           "load_csv", "load_directory", "save_csv", "save_directory"]
