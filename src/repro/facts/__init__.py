"""EDB storage: indexed relations, databases, interning, CSV I/O."""

from .symbols import INTERNING_MODES, SymbolTable, validate_interning
from .backend import (ColumnarBackend, DictBackend, ShardedBackend,
                      StorageBackend)
from .relation import Relation, Row
from .database import Database
from .changelog import (AppliedChange, Changeset, VersionedDatabase,
                        random_changeset)
from .io import load_csv, load_directory, save_csv, save_directory

__all__ = ["INTERNING_MODES", "SymbolTable", "validate_interning",
           "ColumnarBackend", "DictBackend", "ShardedBackend",
           "StorageBackend",
           "Relation", "Row", "Database",
           "AppliedChange", "Changeset", "VersionedDatabase",
           "random_changeset",
           "load_csv", "load_directory", "save_csv", "save_directory"]
