"""Dense-integer interning of constants.

Classic Datalog engines do not join over raw values: every constant is
*interned* into a dense ``int`` code once, at load time, and the entire
fixpoint — rows, hash indexes, join keys, duplicate checks — runs over
small integers.  Codes hash and compare in a handful of machine
instructions, tuples of codes pack densely, and the dense numbering
doubles as a direct index into the decode table, so decoding back to
values (needed only at result materialization and derivation-hook
boundaries) is a list subscript.

:class:`SymbolTable` is the shared value <-> code mapping.  A
:class:`~repro.facts.database.Database` constructed with a table stores
every relation in *interned mode* (rows are ``tuple[int, ...]``); the
value-level API of :class:`~repro.facts.relation.Relation` keeps working
unchanged by encoding/decoding at the boundary, while the compiled
kernels (:mod:`repro.engine.compile`) operate on the raw coded storage
directly.

Note on numeric coercion: Python sets already identify ``1``, ``1.0``
and ``True`` (equal values, equal hashes), keeping the first-inserted
representative.  Interning through a dict reproduces exactly that
first-wins behaviour, so interned and raw relations agree on contents.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..datalog.terms import ConstValue

#: Interning modes accepted by the evaluation entry points.
INTERNING_MODES = ("on", "off")


def validate_interning(interning: str) -> None:
    if interning not in INTERNING_MODES:
        from ..errors import EvaluationError

        raise EvaluationError(
            f"unknown interning mode {interning!r}; expected one of "
            f"{INTERNING_MODES}")


class SymbolTable:
    """A bijection between constants and dense ``int`` codes.

    Codes are assigned in first-seen order starting at 0 and are never
    reused or compacted, so ``values[code]`` is stable for the lifetime
    of the table.  One table is shared by every relation of an interned
    database (and by the IDB/delta relations the engines derive from
    it), so codes are directly comparable across relations.
    """

    __slots__ = ("_codes", "values")

    def __init__(self, values: Iterable[ConstValue] | None = None) -> None:
        self._codes: dict[ConstValue, int] = {}
        #: The decode table: ``values[code]`` is the interned constant.
        #: Grows append-only; treat as read-only.
        self.values: list[ConstValue] = []
        if values:
            for value in values:
                self.intern(value)

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, value: ConstValue) -> bool:
        return value in self._codes

    def __repr__(self) -> str:
        return f"SymbolTable({len(self.values)} symbols)"

    # -- encode ----------------------------------------------------------------
    def intern(self, value: ConstValue) -> int:
        """The code for ``value``, assigning a fresh one when unseen."""
        code = self._codes.get(value)
        if code is None:
            code = len(self.values)
            self._codes[value] = code
            self.values.append(value)
        return code

    def code(self, value: ConstValue) -> Optional[int]:
        """The code for ``value``, or None when it was never interned.

        Lookups (membership tests, bound-pattern probes) use this
        instead of :meth:`intern` so that probing for an unseen value
        does not grow the table.
        """
        return self._codes.get(value)

    def intern_row(self, row: Iterable[ConstValue]) -> tuple[int, ...]:
        """Encode a tuple of values, interning unseen ones."""
        intern = self.intern
        return tuple(intern(value) for value in row)

    def code_row(self, row: Iterable[ConstValue]
                 ) -> Optional[tuple[int, ...]]:
        """Encode a tuple of values; None when any value is unseen."""
        get = self._codes.get
        out = []
        for value in row:
            code = get(value)
            if code is None:
                return None
            out.append(code)
        return tuple(out)

    # -- decode ----------------------------------------------------------------
    def value(self, code: int) -> ConstValue:
        """The constant a code stands for."""
        return self.values[code]

    def decode_row(self, row: Iterable[int]) -> tuple[ConstValue, ...]:
        """Decode a coded row back to its values."""
        values = self.values
        return tuple(values[code] for code in row)
