"""An indexed in-memory relation.

Relations store ground tuples of Python values (the ``value`` field of
:class:`repro.datalog.terms.Constant`).  Lookups during joins supply a
*bound-column pattern*: a sorted tuple of (column, value) pairs.  The
relation lazily builds and caches a hash index per set of bound columns,
which turns the engine's literal-at-a-time joins into hash joins.
"""

from __future__ import annotations

from typing import Collection, Iterable, Iterator

from ..datalog.terms import ConstValue

Row = tuple[ConstValue, ...]

#: A hash index: bound-column values -> list of rows with those values.
Index = dict[tuple, list[Row]]


class Relation:
    """A set of fixed-arity ground tuples with on-demand hash indexes."""

    def __init__(self, name: str, arity: int,
                 rows: Iterable[Row] | None = None) -> None:
        if arity < 0:
            raise ValueError("arity must be non-negative")
        self.name = name
        self.arity = arity
        self._rows: set[Row] = set()
        self._indexes: dict[tuple[int, ...], dict[tuple, list[Row]]] = {}
        if rows:
            self.add_all(rows)

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self._rows

    def __repr__(self) -> str:
        return f"Relation({self.name!r}/{self.arity}, {len(self)} rows)"

    # -- mutation ------------------------------------------------------------
    def add(self, row: Iterable[ConstValue]) -> bool:
        """Insert one tuple; returns True when it was new."""
        materialized = tuple(row)
        if len(materialized) != self.arity:
            raise ValueError(
                f"{self.name}: expected arity {self.arity}, "
                f"got {len(materialized)}")
        if materialized in self._rows:
            return False
        self._rows.add(materialized)
        for columns, index in self._indexes.items():
            key = tuple(materialized[c] for c in columns)
            index.setdefault(key, []).append(materialized)
        return True

    def add_all(self, rows: Iterable[Iterable[ConstValue]]) -> int:
        """Insert many tuples; returns the number of new ones.

        Bulk path: rows land in the backing set first and every live
        index is extended once at the end, instead of per row as
        :meth:`add` does.
        """
        arity = self.arity
        store = self._rows
        new_rows: list[Row] = []
        for row in rows:
            materialized = tuple(row)
            if len(materialized) != arity:
                raise ValueError(
                    f"{self.name}: expected arity {arity}, "
                    f"got {len(materialized)}")
            if materialized not in store:
                store.add(materialized)
                new_rows.append(materialized)
        if new_rows:
            for columns, index in self._indexes.items():
                for materialized in new_rows:
                    index.setdefault(
                        tuple(materialized[c] for c in columns),
                        []).append(materialized)
        return len(new_rows)

    def clear(self) -> None:
        self._rows.clear()
        self._indexes.clear()

    # -- lookup ----------------------------------------------------------------
    def rows(self) -> frozenset[Row]:
        return frozenset(self._rows)

    def lookup(self, bound: tuple[tuple[int, ConstValue], ...]
               ) -> Collection[Row]:
        """Rows matching the bound-column pattern.

        ``bound`` is a tuple of ``(column, value)`` pairs; columns must be
        sorted ascending and unique.  With an empty pattern this is a full
        scan.

        Returns the relation's *internal* container (an index bucket, or
        the backing row set for a full scan) to avoid a per-call copy:
        callers must treat the result as read-only and must not hold it
        across mutations of the relation.
        """
        if not bound:
            return self._rows
        columns = tuple(c for c, _ in bound)
        key = tuple(v for _, v in bound)
        index = self._indexes.get(columns)
        if index is None:
            index = self._build_index(columns)
        return index.get(key, ())

    def index_for(self, columns: tuple[int, ...]) -> Index:
        """The hash index over ``columns`` (built on first use).

        ``columns`` must be sorted ascending and unique.  The returned
        dict maps a tuple of values (one per column) to the list of rows
        carrying those values.  It is the live index — kept up to date by
        subsequent :meth:`add` calls — and must be treated as read-only.
        The kernel compiler pre-resolves this once per rule firing
        instead of re-deriving it per probe.
        """
        index = self._indexes.get(columns)
        if index is None:
            index = self._build_index(columns)
        return index

    def _build_index(self, columns: tuple[int, ...]) -> Index:
        index: Index = {}
        for row in self._rows:
            index.setdefault(
                tuple(row[c] for c in columns), []).append(row)
        self._indexes[columns] = index
        return index

    def copy(self) -> "Relation":
        out = Relation(self.name, self.arity)
        out._rows = set(self._rows)
        return out

    def difference_update_into(self, other: "Relation") -> "Relation":
        """Return a relation with this one's rows that are not in ``other``."""
        out = Relation(self.name, self.arity)
        out.add_all(row for row in self._rows if row not in other._rows)
        return out
