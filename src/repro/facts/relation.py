"""An indexed in-memory relation.

Relations store ground tuples.  Lookups during joins supply a
*bound-column pattern*: a sorted tuple of (column, value) pairs.  The
relation lazily builds and caches a hash index per set of bound columns,
which turns the engine's literal-at-a-time joins into hash joins.

Storage comes in two modes:

- **raw** (the default): rows are tuples of Python values (the ``value``
  field of :class:`repro.datalog.terms.Constant`), exactly as stored by
  the original engine.
- **interned**: the relation is bound to a shared
  :class:`~repro.facts.symbols.SymbolTable` and rows are tuples of dense
  ``int`` codes.  The value-level API below (``add``, ``lookup``,
  iteration, ...) is unchanged — values are encoded/decoded at the call
  boundary — while the *raw* API (:meth:`raw_rows`, :meth:`raw_add`,
  :meth:`index_for`) exposes the coded storage that the compiled
  kernels join over directly.

In both modes :meth:`index_for` returns the live index over the
*storage domain* (values in raw mode, codes in interned mode); callers
that obtained their probe keys from the same storage domain — the
kernels — never pay an encode/decode per probe.

The physical row container and index maintenance live behind a
pluggable :class:`~repro.facts.backend.StorageBackend`
(:class:`~repro.facts.backend.DictBackend` by default; pass
``backend=`` to supply another, e.g. a
:class:`~repro.facts.backend.ShardedBackend` whose hash-partitioned
buckets the parallel executor scatters over).  The relation keeps the
semantics — arity checks, interning, statistics — and delegates the
physical operations.

When :meth:`enable_stats` has been called the relation also maintains a
:class:`~repro.engine.stats.RelationStats` (cardinality + per-column
distinct counts) incrementally on every insert, which feeds the
adaptive join planner.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Collection, Iterable, Iterator, Optional

from ..datalog.terms import ConstValue
from .backend import ColumnarBackend, DictBackend, Index, StorageBackend
from .symbols import SymbolTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine.stats import RelationStats

Row = tuple[ConstValue, ...]

__all__ = ["Relation", "Row", "Index"]


class Relation:
    """A set of fixed-arity ground tuples with on-demand hash indexes."""

    __slots__ = ("name", "arity", "symbols", "backend",
                 "_stats", "_distinct_cache")

    def __init__(self, name: str, arity: int,
                 rows: Iterable[Row] | None = None,
                 symbols: SymbolTable | None = None,
                 backend: StorageBackend | None = None) -> None:
        if arity < 0:
            raise ValueError("arity must be non-negative")
        self.name = name
        self.arity = arity
        #: The shared intern table, or None in raw mode.
        self.symbols = symbols
        #: The physical row/index store (see :mod:`repro.facts.backend`).
        self.backend: StorageBackend = \
            backend if backend is not None else DictBackend()
        self._stats: Optional["RelationStats"] = None
        #: column -> (cardinality the count was taken at, count); the
        #: scan fallback of :meth:`distinct_count`.
        self._distinct_cache: dict[int, tuple[int, int]] = {}
        if rows:
            self.add_all(rows)

    @property
    def interned(self) -> bool:
        return self.symbols is not None

    @property
    def version(self) -> int:
        """The backend's mutation counter (see its ``version`` attr).

        Bumps on every content change; together with the backend's
        ``uid`` it keys the vectorized executor's column-level predicate
        cache, whose invalidation rule is exactly "the version moved".
        """
        return self.backend.version

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.backend.rows)

    def __iter__(self) -> Iterator[Row]:
        if self.symbols is None:
            return iter(self.backend.rows)
        values = self.symbols.values
        return (tuple(values[code] for code in row)
                for row in self.backend.rows)

    def __contains__(self, row: Row) -> bool:
        materialized = tuple(row)
        if self.symbols is None:
            return materialized in self.backend.rows
        coded = self.symbols.code_row(materialized)
        return coded is not None and coded in self.backend.rows

    def __repr__(self) -> str:
        mode = ", interned" if self.symbols is not None else ""
        return f"Relation({self.name!r}/{self.arity}, {len(self)} rows{mode})"

    # -- mutation ------------------------------------------------------------
    def add(self, row: Iterable[ConstValue]) -> bool:
        """Insert one tuple of *values*; returns True when it was new."""
        materialized = tuple(row)
        if len(materialized) != self.arity:
            raise ValueError(
                f"{self.name}: expected arity {self.arity}, "
                f"got {len(materialized)}")
        if self.symbols is not None:
            materialized = self.symbols.intern_row(materialized)
        return self._insert(materialized)

    def raw_add(self, row: Row) -> bool:
        """Insert one storage-domain tuple (codes when interned).

        The fast path for the compiled kernels, which derive rows in the
        storage domain already: no re-encoding, no arity re-check (the
        kernel's head constructor fixes the arity).  In raw mode this is
        :meth:`add` minus the validation.
        """
        return self._insert(row)

    def _insert(self, materialized: Row) -> bool:
        if not self.backend.insert(materialized):
            return False
        if self._stats is not None:
            self._stats.observe(materialized)
        return True

    def add_all(self, rows: Iterable[Iterable[ConstValue]]) -> int:
        """Insert many value tuples; returns the number of new ones.

        Bulk path: rows land in the backing set first and every live
        index is extended once at the end, instead of per row as
        :meth:`add` does.
        """
        arity = self.arity
        symbols = self.symbols

        def materialize() -> Iterator[Row]:
            for row in rows:
                materialized = tuple(row)
                if len(materialized) != arity:
                    raise ValueError(
                        f"{self.name}: expected arity {arity}, "
                        f"got {len(materialized)}")
                if symbols is not None:
                    materialized = symbols.intern_row(materialized)
                yield materialized

        new_rows = self.backend.add_new(materialize())
        if new_rows and self._stats is not None:
            self._stats.observe_all(new_rows)
        return len(new_rows)

    def raw_add_all(self, rows: Iterable[Row]) -> int:
        """Bulk :meth:`raw_add`: storage-domain rows, one index sweep."""
        new_rows = self.backend.add_new(rows)
        if new_rows and self._stats is not None:
            self._stats.observe_all(new_rows)
        return len(new_rows)

    def raw_merge_new(self, rows: Collection[Row]) -> list[Row]:
        """Bulk raw insert via set difference; returns the new rows.

        The duplicate screen runs as one C-level set difference instead
        of a per-row membership probe, so the engines' insert loops pay
        Python call overhead per *batch* rather than per derived row.
        Rows that collide with existing ones (or repeat within ``rows``)
        are silently dropped, exactly as a sequence of :meth:`raw_add`
        calls would drop them.
        """
        new_rows = self.backend.merge_new(rows)
        if new_rows and self._stats is not None:
            self._stats.observe_all(new_rows)
        return new_rows

    def raw_merge(self, rows: list[Row]) -> None:
        """Bulk raw insert of rows known to be absent from the relation.

        Caller guarantees ``rows`` is duplicate-free and disjoint from
        the current contents (e.g. the return value of another
        relation's :meth:`raw_merge_new`); skipping the membership
        screen makes this the cheapest insert path.
        """
        self.backend.merge(rows)
        if rows and self._stats is not None:
            self._stats.observe_all(rows)

    # -- deletion ------------------------------------------------------------
    def discard(self, row: Iterable[ConstValue]) -> bool:
        """Remove one tuple of *values*; returns True when it was present.

        Every live index drops the row (empty buckets are deleted, so
        single-column index key counts stay exact distinct counts for
        :meth:`distinct_count`).  Attached statistics are adjusted via
        :meth:`~repro.engine.stats.RelationStats.forget` — cardinality
        stays exact, per-column distinct counts become upper bounds.
        """
        materialized = tuple(row)
        if self.symbols is not None:
            coded = self.symbols.code_row(materialized)
            if coded is None:
                return False
            materialized = coded
        return self._remove(materialized)

    def raw_discard(self, row: Row) -> bool:
        """Remove one storage-domain tuple (codes when interned)."""
        return self._remove(row)

    def _remove(self, materialized: Row) -> bool:
        if not self.backend.remove(materialized):
            return False
        if self._distinct_cache:
            self._distinct_cache.clear()
        if self._stats is not None:
            self._stats.forget(materialized)
        return True

    def discard_all(self, rows: Iterable[Iterable[ConstValue]]) -> int:
        """Remove many value tuples; returns the number removed."""
        return sum(1 for row in rows if self.discard(row))

    def raw_discard_all(self, rows: Iterable[Row]) -> list[Row]:
        """Remove storage-domain tuples; returns those actually removed."""
        return [row for row in rows if self._remove(row)]

    def clear(self) -> None:
        self.backend.clear()
        self._distinct_cache.clear()
        if self._stats is not None:
            self._stats.reset()

    # -- statistics ------------------------------------------------------------
    def enable_stats(self) -> "RelationStats":
        """Attach (or return) incrementally-maintained statistics.

        The first call builds cardinality and per-column distinct counts
        from the current rows in one pass; afterwards every insert keeps
        them current.  Idempotent.  (Lazy import: :mod:`repro.engine`
        imports this module at package load.)
        """
        if self._stats is None:
            from ..engine.stats import RelationStats

            self._stats = RelationStats(self.arity, self.backend.rows)
        return self._stats

    @property
    def stats(self) -> Optional["RelationStats"]:
        """The live statistics, or None when never enabled."""
        return self._stats

    def distinct_count(self, column: int) -> int:
        """Number of distinct values in ``column``, at zero hot-path cost.

        When a live single-column hash index over ``column`` exists —
        and for columns the joins probe, it does — its key count *is*
        the distinct count, maintained incrementally by the very same
        index upkeep every insert already pays.  Otherwise one scan
        computes it, cached until the cardinality changes (inserts only
        grow the cardinality, and every removal empties the cache
        outright, so a cached entry always describes the current rows).
        This is what keeps the adaptive planner's cost model off the
        insert hot path.
        """
        index = self.backend.indexes.get((column,))
        if index is not None:
            return len(index)
        cindex = self.backend.code_indexes.get(column)
        if cindex is not None:
            return len(cindex)
        rows = self.backend.rows
        cardinality = len(rows)
        cached = self._distinct_cache.get(column)
        if cached is not None and cached[0] == cardinality:
            return cached[1]
        count = len({row[column] for row in rows})
        self._distinct_cache[column] = (cardinality, count)
        return count

    def probe_estimate(self, bound_columns: Collection[int]) -> float:
        """Expected rows matched by one probe with ``bound_columns``.

        The independence-assumption estimate of
        :meth:`repro.engine.stats.RelationStats.probe_estimate`, but
        computed from :meth:`distinct_count` — the engines' adaptive
        planner uses this form so that evaluation never pays per-insert
        statistics maintenance.
        """
        estimate = float(len(self.backend.rows))
        for column in bound_columns:
            estimate /= max(1, self.distinct_count(column))
        return estimate

    # -- lookup ----------------------------------------------------------------
    def rows(self) -> frozenset[Row]:
        if self.symbols is None:
            return frozenset(self.backend.rows)
        values = self.symbols.values
        return frozenset(tuple(values[code] for code in row)
                         for row in self.backend.rows)

    def raw_rows(self) -> Collection[Row]:
        """The internal storage-domain row container, read-only.

        Codes when interned, values in raw mode.  This is what kernel
        scans and negation membership tests iterate/probe; callers must
        not mutate it or hold it across mutations.
        """
        return self.backend.rows

    def lookup(self, bound: tuple[tuple[int, ConstValue], ...]
               ) -> Collection[Row]:
        """Rows (as *values*) matching the bound-column pattern.

        ``bound`` is a tuple of ``(column, value)`` pairs; columns must be
        sorted ascending and unique.  With an empty pattern this is a full
        scan.

        In raw mode this returns the relation's *internal* container (an
        index bucket, or the backing row set for a full scan) to avoid a
        per-call copy: callers must treat the result as read-only and
        must not hold it across mutations of the relation.  In interned
        mode the pattern is encoded, the coded index is probed, and the
        matching rows are decoded into a fresh list (bucket order
        preserved); a pattern mentioning a never-interned value matches
        nothing.
        """
        symbols = self.symbols
        if not bound:
            if symbols is None:
                return self.backend.rows
            values = symbols.values
            return [tuple(values[code] for code in row)
                    for row in self.backend.rows]
        columns = tuple(c for c, _ in bound)
        if symbols is None:
            key = tuple(v for _, v in bound)
        else:
            get = symbols.code
            encoded = []
            for _, value in bound:
                code = get(value)
                if code is None:
                    return ()
                encoded.append(code)
            key = tuple(encoded)
        bucket = self.backend.index_for(columns).get(key, ())
        if symbols is None or not bucket:
            return bucket
        values = symbols.values
        return [tuple(values[code] for code in row) for row in bucket]

    def index_for(self, columns: tuple[int, ...]) -> Index:
        """The hash index over ``columns`` (built on first use).

        ``columns`` must be sorted ascending and unique.  The returned
        dict maps a tuple of storage-domain keys (values in raw mode,
        codes when interned) — one per column — to the list of rows
        carrying those values.  It is the live index — kept up to date
        by subsequent :meth:`add` calls — and must be treated as
        read-only.  The kernel compiler pre-resolves this once per rule
        firing instead of re-deriving it per probe.
        """
        return self.backend.index_for(columns)

    def code_index_for(self, column: int) -> dict:
        """Single-column index keyed by the bare storage value.

        Same buckets as ``index_for((column,))`` but without the 1-tuple
        key wrapper — the vectorized kernels' probe path.  Live and
        read-only, like :meth:`index_for`.
        """
        return self.backend.code_index_for(column)

    def projection_index(self, key_column: int, value_column: int) -> dict:
        """Bare key value -> list of ``value_column`` entries (live)."""
        return self.backend.projection_index(key_column, value_column)

    def column_view(self, column: int):
        """A dense snapshot of one column, in the storage domain.

        In interned mode this is an ``array('q')`` of codes — a compact,
        cache-friendly columnar view suitable for bulk scans; in raw
        mode it is a plain list of values.  A snapshot, not a live view.
        On a :class:`~repro.facts.backend.ColumnarBackend` the snapshot
        is a C-level copy of the already-materialized column array.
        """
        if self.symbols is not None:
            from array import array

            backend = self.backend
            if isinstance(backend, ColumnarBackend):
                return array("q", backend.columns()[column])
            return array("q", (row[column] for row in backend.rows))
        return [row[column] for row in self.backend.rows]

    def copy(self) -> "Relation":
        """An independent relation with the same rows.

        Rows are copied (one C-level set copy); indexes are **not** —
        they rebuild lazily on the copy's first probe, exactly as on a
        freshly loaded relation.  Snapshot-style copies (serving's
        published snapshots, incremental maintenance's state
        reconstruction) therefore pay nothing for indexes the copy
        never probes, which profiling showed dominating copy cost when
        every index was eagerly duplicated.  The backend type is
        preserved (a sharded relation copies to a sharded relation).
        Statistics are not carried over; they rebuild lazily if needed.
        """
        return Relation(self.name, self.arity, symbols=self.symbols,
                        backend=self.backend.copy())

    def difference(self, other: "Relation") -> "Relation":
        """A new relation with this one's rows that are not in ``other``.

        Neither operand is modified.  When both relations share the same
        symbol table (or both are raw) the set difference runs directly
        over the storage domain; otherwise rows are compared by value.
        """
        out = Relation(self.name, self.arity, symbols=self.symbols)
        if self.symbols is other.symbols:
            other_rows = other.backend.rows
            out.raw_add_all(row for row in self.backend.rows
                            if row not in other_rows)
        else:
            out.add_all(row for row in self if row not in other)
        return out
