"""An indexed in-memory relation.

Relations store ground tuples of Python values (the ``value`` field of
:class:`repro.datalog.terms.Constant`).  Lookups during joins supply a
*bound-column pattern*: a sorted tuple of (column, value) pairs.  The
relation lazily builds and caches a hash index per set of bound columns,
which turns the engine's literal-at-a-time joins into hash joins.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..datalog.terms import ConstValue

Row = tuple[ConstValue, ...]


class Relation:
    """A set of fixed-arity ground tuples with on-demand hash indexes."""

    def __init__(self, name: str, arity: int,
                 rows: Iterable[Row] | None = None) -> None:
        if arity < 0:
            raise ValueError("arity must be non-negative")
        self.name = name
        self.arity = arity
        self._rows: set[Row] = set()
        self._indexes: dict[tuple[int, ...], dict[tuple, list[Row]]] = {}
        if rows:
            self.add_all(rows)

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self._rows

    def __repr__(self) -> str:
        return f"Relation({self.name!r}/{self.arity}, {len(self)} rows)"

    # -- mutation ------------------------------------------------------------
    def add(self, row: Iterable[ConstValue]) -> bool:
        """Insert one tuple; returns True when it was new."""
        materialized = tuple(row)
        if len(materialized) != self.arity:
            raise ValueError(
                f"{self.name}: expected arity {self.arity}, "
                f"got {len(materialized)}")
        if materialized in self._rows:
            return False
        self._rows.add(materialized)
        for columns, index in self._indexes.items():
            key = tuple(materialized[c] for c in columns)
            index.setdefault(key, []).append(materialized)
        return True

    def add_all(self, rows: Iterable[Iterable[ConstValue]]) -> int:
        """Insert many tuples; returns the number of new ones."""
        return sum(1 for row in rows if self.add(row))

    def clear(self) -> None:
        self._rows.clear()
        self._indexes.clear()

    # -- lookup ----------------------------------------------------------------
    def rows(self) -> frozenset[Row]:
        return frozenset(self._rows)

    def lookup(self, bound: tuple[tuple[int, ConstValue], ...]) -> Iterator[Row]:
        """Yield rows matching the bound-column pattern.

        ``bound`` is a tuple of ``(column, value)`` pairs; columns must be
        sorted ascending and unique.  With an empty pattern this is a full
        scan.
        """
        if not bound:
            yield from self._rows
            return
        columns = tuple(c for c, _ in bound)
        key = tuple(v for _, v in bound)
        index = self._indexes.get(columns)
        if index is None:
            index = {}
            for row in self._rows:
                index.setdefault(
                    tuple(row[c] for c in columns), []).append(row)
            self._indexes[columns] = index
        yield from index.get(key, ())

    def copy(self) -> "Relation":
        out = Relation(self.name, self.arity)
        out._rows = set(self._rows)
        return out

    def difference_update_into(self, other: "Relation") -> "Relation":
        """Return a relation with this one's rows that are not in ``other``."""
        out = Relation(self.name, self.arity)
        out.add_all(row for row in self._rows if row not in other._rows)
        return out
