"""Free (partial) subsumption and free residues (Definition 2.1).

Free subsumption tests the IC against a clause *as written* — without the
expansion step — so the subsuming substitution must respect the IC's
shared variables and constants directly.  The *free residue* is the part
of ``ic theta`` that did not participate.

*Maximal* free subsumption (Definition 3.1) requires the subclause of the
IC consisting of **all** its database subgoals to subsume the clause
completely; the resulting residue body then contains only evaluable atoms,
which is what makes it usable for query-independent optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..datalog.atoms import Atom, Literal
from ..datalog.unify import Substitution
from .ic import IntegrityConstraint
from .residue import Residue
from .subsumption import (_is_maximal, _matchings, match_literal,
                          rename_ic_apart)


@dataclass(frozen=True)
class FreeSubsumption:
    """One way an IC freely subsumes a clause.

    Attributes:
        matched: indices (into the IC's database atoms) that participated.
        subst: the subsuming substitution theta.
        residue: the free residue arising from this subsumption.
        complete: True when every database atom of the IC participated
            (i.e. this is a *maximal* subsumption in the Def. 3.1 sense).
    """

    matched: frozenset[int]
    subst: Substitution
    residue: Residue
    complete: bool


def free_subsumptions(ic: IntegrityConstraint,
                      target: Sequence[Literal],
                      only_maximal: bool = False
                      ) -> Iterator[FreeSubsumption]:
    """Enumerate free (partial) subsumptions of ``ic`` against a clause.

    With ``only_maximal`` every database atom of the IC must be matched
    (Definition 3.1); otherwise all maximal non-empty partial matchings
    are produced, mirroring Example 2.1's free residues.
    """
    target = tuple(target)
    ic = rename_ic_apart(ic, target)
    atoms = ic.database_atoms()
    seen: set[tuple[frozenset[int], tuple]] = set()
    for matched, theta in _matchings(atoms, target):
        if not matched:
            continue
        complete = len(matched) == len(atoms)
        if only_maximal and not complete:
            continue
        if not complete and not _is_maximal(atoms, target, matched, theta):
            continue
        key = (matched, tuple(sorted(
            (v.name, str(t)) for v, t in theta.items())))
        if key in seen:
            continue
        seen.add(key)
        leftover: list[Literal] = [
            atom for index, atom in enumerate(atoms) if index not in matched]
        leftover.extend(ic.evaluable_atoms())
        body = theta.apply_literals(leftover)
        head = theta.apply_literal(ic.head) if ic.head is not None else None
        residue = Residue(body, head, theta, ic).simplified()
        yield FreeSubsumption(matched, theta, residue, complete)


def maximal_free_subsumptions(ic: IntegrityConstraint,
                              target: Sequence[Literal]
                              ) -> Iterator[FreeSubsumption]:
    """Only the complete (maximal) free subsumptions of Definition 3.1."""
    yield from free_subsumptions(ic, target, only_maximal=True)


def freely_subsumes(ic: IntegrityConstraint,
                    target: Sequence[Literal]) -> bool:
    """True when ``ic`` maximally (freely) subsumes the clause."""
    return next(maximal_free_subsumptions(ic, target), None) is not None


def extend_to_useful(residue: Residue, target: Sequence[Literal],
                     strict: bool = True) -> Residue | None:
    """Try to extend theta so the residue head equals an atom of the clause.

    Section 3: a residue with database atom ``A`` in its head is *useful*
    for a sequence when theta extends to a substitution with
    ``A theta' = B`` for some atom ``B`` of the sequence.  Returns the
    residue under the extended substitution, or None when no extension
    exists.  Residues without a database-atom head are trivially useful
    and returned unchanged.

    With ``strict=False`` the extension may additionally *re-bind clause
    variables* occurring in the residue head onto a sequence atom.  This
    looser reading reproduces the paper's Examples 3.2/4.2 (where the
    implied ``expert(P, F')`` is identified with the sequence atom
    ``expert(P, F)``); it is not sound by itself, so the optimizer always
    re-validates loose eliminations with the chase guard.

    The residue's literals already carry theta; only the extension's *new*
    bindings are applied on top (safe because subsumption renames the IC
    apart from the clause first, so leftover residue variables are
    IC-private).
    """
    head = residue.head_atom()
    if head is None:
        return residue
    base = residue.subst
    if strict and residue.ic is not None:
        # Freeze non-IC (clause) variables so only genuinely-unbound IC
        # variables can be extended, per the letter of the definition.
        ic_vars = residue.ic.variables()
        frozen = {v: v for v in head.variable_set()
                  if v not in ic_vars and v not in base}
        if frozen:
            base = Substitution(dict(base.items()) | frozen)
    known = set(base)
    for lit in target:
        if not isinstance(lit, Atom):
            continue
        extension = next(match_literal(head, lit, base), None)
        if extension is not None:
            new_only = Substitution(
                {v: t for v, t in extension.items() if v not in known})
            return Residue(new_only.apply_literals(residue.body),
                           new_only.apply_literal(head),
                           extension, residue.ic).simplified()
    return None


def is_useful(residue: Residue, target: Sequence[Literal],
              strict: bool = True) -> bool:
    """Usefulness test of Section 3 (see :func:`extend_to_useful`)."""
    return extend_to_useful(residue, target, strict=strict) is not None
