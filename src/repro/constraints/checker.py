"""Checking integrity constraints against a database.

Workload generators must produce EDBs that *satisfy* their ICs (otherwise
semantic optimization would change answers); this module provides the
check, plus a repair helper that completes a database so a fact-style IC
holds (used by generators and property tests).
"""

from __future__ import annotations

from typing import Iterator

from ..datalog.atoms import Atom, Comparison
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Variable
from ..engine import builtins
from ..engine.bindings import Binding, EvalStats, solve_body
from ..errors import ConstraintError
from ..facts.database import Database
from ..facts.relation import Relation
from .ic import IntegrityConstraint


def _fetch_edb(edb: Database):
    def fetch(atom: Atom, index: int) -> Relation:
        return edb.relation_or_empty(atom.pred, atom.arity)
    return fetch


def violations(ic: IntegrityConstraint, edb: Database,
               limit: int | None = None) -> Iterator[Binding]:
    """Yield body bindings that violate ``ic`` (up to ``limit``)."""
    probe = Rule(Atom("__ic__", ()), ic.body)
    stats = EvalStats()
    produced = 0
    for binding in solve_body(probe, _fetch_edb(edb), stats):
        if _head_holds(ic, binding, edb):
            continue
        yield binding
        produced += 1
        if limit is not None and produced >= limit:
            return


def _head_holds(ic: IntegrityConstraint, binding: Binding,
                edb: Database) -> bool:
    head = ic.head
    if head is None:
        return False
    if isinstance(head, Comparison):
        return builtins.holds(head, binding)
    if isinstance(head, Atom):
        row = []
        for arg in head.args:
            if isinstance(arg, Constant):
                row.append(arg.value)
            elif isinstance(arg, Variable) and arg in binding:
                row.append(binding[arg])
            else:
                # Existential head variable: satisfied when some row
                # matches the bound prefix.
                return _exists_match(head, binding, edb)
        return tuple(row) in edb.relation_or_empty(head.pred, head.arity)
    raise ConstraintError(f"unsupported IC head: {head}")


def _exists_match(head: Atom, binding: Binding, edb: Database) -> bool:
    relation = edb.relation_or_empty(head.pred, head.arity)
    pattern = []
    for column, arg in enumerate(head.args):
        if isinstance(arg, Constant):
            pattern.append((column, arg.value))
        elif isinstance(arg, Variable) and arg in binding:
            pattern.append((column, binding[arg]))
    return bool(relation.lookup(tuple(pattern)))


def satisfies(edb: Database, *ics: IntegrityConstraint) -> bool:
    """True when the database satisfies every given IC."""
    return all(next(violations(ic, edb, limit=1), None) is None
               for ic in ics)


def repair(edb: Database, ic: IntegrityConstraint,
           max_rounds: int = 50) -> int:
    """Add facts until a fact-style IC (database-atom head) holds.

    Returns the number of facts added.  Denials and evaluable-headed ICs
    cannot be repaired by adding facts; they raise
    :class:`ConstraintError`.
    """
    head = ic.head
    if not isinstance(head, Atom):
        raise ConstraintError(
            "can only repair ICs whose head is a database atom")
    added = 0
    for _ in range(max_rounds):
        batch = []
        for binding in violations(ic, edb):
            row = []
            for arg in head.args:
                if isinstance(arg, Constant):
                    row.append(arg.value)
                elif isinstance(arg, Variable) and arg in binding:
                    row.append(binding[arg])
                else:
                    raise ConstraintError(
                        f"cannot repair {ic}: head variable {arg} is "
                        "existential")
            batch.append(tuple(row))
        if not batch:
            return added
        for row in batch:
            if edb.add_fact(head.pred, *row):
                added += 1
    raise ConstraintError(f"repair of {ic} did not converge")
