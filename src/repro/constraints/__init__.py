"""Integrity constraints, subsumption and residues."""

from .ic import (IntegrityConstraint, from_parsed, ic_from_text,
                 ics_from_text, validate_ics)
from .expansion import ExpandedIC, expand
from .residue import Residue
from .subsumption import (match_literal, partial_subsumptions,
                          rename_ic_apart, rule_residues, subsumes,
                          subsumptions)
from .free import (FreeSubsumption, extend_to_useful, free_subsumptions,
                   freely_subsumes, is_useful, maximal_free_subsumptions)
from .checker import repair, satisfies, violations

__all__ = [
    "IntegrityConstraint", "from_parsed", "ic_from_text", "ics_from_text",
    "validate_ics",
    "ExpandedIC", "expand",
    "Residue",
    "match_literal", "partial_subsumptions", "rename_ic_apart",
    "rule_residues", "subsumes", "subsumptions",
    "FreeSubsumption", "extend_to_useful", "free_subsumptions",
    "freely_subsumes", "is_useful", "maximal_free_subsumptions",
    "repair", "satisfies", "violations",
]
