"""Clause subsumption and Chakravarthy-style partial subsumption.

Definitions (Section 2):

- a clause ``C`` **subsumes** ``D`` when there is a substitution theta
  (the *subsuming substitution*, mapping variables of C only) with
  ``C theta`` a subclause of ``D``;
- ``C`` **partially subsumes** ``D`` when a subclause of C subsumes D;
- an IC partially subsumes a rule when its *expanded form* does; the
  **residue** is the part of the expanded IC that did not participate.

The enumeration is exponential in the size of the IC — which is tiny in
practice — and linear passes over the target clause, matching the
algorithm of Chakravarthy et al. [3].
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..datalog.atoms import Atom, Comparison, Literal, Negation
from ..datalog.terms import FreshVariableSupply
from ..datalog.unify import (EMPTY_SUBSTITUTION, Substitution, match,
                             match_terms)
from .expansion import expand
from .ic import IntegrityConstraint
from .residue import Residue


def rename_ic_apart(ic: IntegrityConstraint,
                    target: Sequence[Literal]) -> IntegrityConstraint:
    """Rename IC variables clashing with the clause's variables.

    Subsuming substitutions map IC variables onto clause terms; when the
    two share a variable name the leftover residue could capture clause
    variables by accident, so colliding IC variables are freshened first.
    """
    clause_vars = {v.name for lit in target for v in lit.variables()}
    colliding = {v for v in ic.variables() if v.name in clause_vars}
    if not colliding:
        return ic
    supply = FreshVariableSupply(
        clause_vars | {v.name for v in ic.variables()})
    mapping = {v: supply.fresh(v.name) for v in sorted(
        colliding, key=lambda v: v.name)}
    return ic.apply(Substitution(mapping))


def match_literal(pattern: Literal, target: Literal,
                  subst: Substitution) -> Iterator[Substitution]:
    """Yield extensions of ``subst`` mapping ``pattern`` onto ``target``.

    Comparisons match with equal operators, or with the converse operator
    and swapped operands (``a < b`` matches ``b > a``); equality and
    inequality additionally match with their operands swapped.
    """
    if isinstance(pattern, Atom) and isinstance(target, Atom):
        extended = match(pattern, target, subst)
        if extended is not None:
            yield extended
        return
    if isinstance(pattern, Negation) and isinstance(target, Negation):
        extended = match(pattern.atom, target.atom, subst)
        if extended is not None:
            yield extended
        return
    if isinstance(pattern, Comparison) and isinstance(target, Comparison):
        candidates = [(pattern.op, pattern.lhs, pattern.rhs)]
        converse = pattern.converse()
        if (converse.op, converse.lhs, converse.rhs) != candidates[0]:
            candidates.append((converse.op, converse.lhs, converse.rhs))
        for op, lhs, rhs in candidates:
            if op != target.op:
                continue
            step = match_terms(lhs, target.lhs, subst)
            if step is None:
                continue
            final = match_terms(rhs, target.rhs, step)
            if final is not None:
                yield final


def subsumptions(pattern: Sequence[Literal], target: Sequence[Literal],
                 subst: Substitution = EMPTY_SUBSTITUTION
                 ) -> Iterator[Substitution]:
    """Yield every theta with ``pattern theta`` a subclause of ``target``.

    Distinct pattern literals may map to the same target literal, as in
    classical clause subsumption.
    """
    pattern = tuple(pattern)
    target = tuple(target)

    def assign(index: int, current: Substitution) -> Iterator[Substitution]:
        if index == len(pattern):
            yield current
            return
        for candidate in target:
            for extended in match_literal(pattern[index], candidate,
                                          current):
                yield from assign(index + 1, extended)

    yield from assign(0, subst)


def subsumes(pattern: Sequence[Literal],
             target: Sequence[Literal]) -> Optional[Substitution]:
    """First subsuming substitution, or None."""
    return next(subsumptions(pattern, target), None)


def _matchings(atoms: Sequence[Atom], target: Sequence[Literal]
               ) -> Iterator[tuple[frozenset[int], Substitution]]:
    """Enumerate partial matchings of ``atoms`` into ``target``.

    Yields ``(matched_indices, theta)`` pairs, including the empty
    matching; callers filter for maximality.
    """
    target = tuple(target)

    def assign(index: int, matched: frozenset[int],
               current: Substitution
               ) -> Iterator[tuple[frozenset[int], Substitution]]:
        if index == len(atoms):
            yield matched, current
            return
        # Option 1: skip this IC atom.
        yield from assign(index + 1, matched, current)
        # Option 2: map it onto some target literal.
        for candidate in target:
            for extended in match_literal(atoms[index], candidate, current):
                yield from assign(index + 1, matched | {index}, extended)

    yield from assign(0, frozenset(), EMPTY_SUBSTITUTION)


def _is_maximal(atoms: Sequence[Atom], target: Sequence[Literal],
                matched: frozenset[int], subst: Substitution) -> bool:
    """No skipped atom can still be matched consistently with theta."""
    for index, atom in enumerate(atoms):
        if index in matched:
            continue
        for candidate in target:
            if next(match_literal(atom, candidate, subst), None) is not None:
                return False
    return True


def partial_subsumptions(ic: IntegrityConstraint,
                         target: Sequence[Literal]
                         ) -> Iterator[Residue]:
    """Chakravarthy-style residues of ``ic`` w.r.t. a clause body.

    The IC is first converted to expanded form; every *maximal* non-empty
    matching of its database atoms into the clause's literals yields a
    residue consisting of the unmatched database atoms, the introduced
    equalities, the IC's evaluable atoms and the head — all under theta.
    """
    target = tuple(target)
    expanded = expand(rename_ic_apart(ic, target))
    seen: set[tuple[frozenset[int], tuple]] = set()
    for matched, theta in _matchings(expanded.database_atoms, target):
        if not matched:
            continue
        if not _is_maximal(expanded.database_atoms, target, matched, theta):
            continue
        key = (matched, tuple(sorted(
            (v.name, str(t)) for v, t in theta.items())))
        if key in seen:
            continue
        seen.add(key)
        leftover: list[Literal] = [
            atom for index, atom in enumerate(expanded.database_atoms)
            if index not in matched]
        leftover.extend(expanded.equalities)
        leftover.extend(expanded.evaluable_atoms)
        body = theta.apply_literals(leftover)
        head = theta.apply_literal(expanded.head) \
            if expanded.head is not None else None
        yield Residue(body, head, theta, ic).simplified()


def rule_residues(ic: IntegrityConstraint,
                  body: Sequence[Literal]) -> list[Residue]:
    """All distinct simplified residues of ``ic`` w.r.t. a rule body."""
    out: list[Residue] = []
    for residue in partial_subsumptions(ic, body):
        if residue not in out:
            out.append(residue)
    return out
