"""Chakravarthy et al.'s *expanded form* of an integrity constraint.

An IC is in expanded form when no constant appears among the arguments of
any database predicate in its body and each argument is a distinct
variable; the constraints thereby hidden are made explicit as equality
atoms (Section 2 and Example 2.1 of the paper).

Only the occurrences *after the first* of a repeated variable are renamed
(matching the paper's ``ic_e`` in Example 2.1); constants always are.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.atoms import Atom, Comparison, Literal
from ..datalog.terms import (Constant, FreshVariableSupply, Term, Variable)
from .ic import IntegrityConstraint


@dataclass(frozen=True)
class ExpandedIC:
    """An IC in expanded form.

    Attributes:
        original: the IC this was derived from.
        database_atoms: the rewritten database atoms (distinct variables).
        equalities: the equality atoms introduced by the rewriting.
        evaluable_atoms: the IC's original evaluable body atoms.
        head: the IC's (unchanged) head.
    """

    original: IntegrityConstraint
    database_atoms: tuple[Atom, ...]
    equalities: tuple[Comparison, ...]
    evaluable_atoms: tuple[Comparison, ...]
    head: Literal | None

    @property
    def body(self) -> tuple[Literal, ...]:
        return (self.database_atoms + self.equalities
                + self.evaluable_atoms)

    def __str__(self) -> str:
        body = ", ".join(str(lit) for lit in self.body)
        head = str(self.head) if self.head is not None else ""
        return f"{body} -> {head}".rstrip() + "."


def expand(ic: IntegrityConstraint,
           prefix: str = "V") -> ExpandedIC:
    """Convert ``ic`` to expanded form."""
    supply = FreshVariableSupply({v.name for v in ic.variables()},
                                 prefix=prefix)
    seen: set[Variable] = set()
    equalities: list[Comparison] = []
    new_atoms: list[Atom] = []
    for atom in ic.database_atoms():
        new_args: list[Term] = []
        for arg in atom.args:
            if isinstance(arg, Variable) and arg not in seen:
                seen.add(arg)
                new_args.append(arg)
                continue
            fresh = supply.fresh(prefix)
            new_args.append(fresh)
            if isinstance(arg, (Variable, Constant)):
                equalities.append(Comparison("=", fresh, arg))
            else:  # pragma: no cover - db atoms never hold arithmetic
                equalities.append(Comparison("=", fresh, arg))
        new_atoms.append(Atom(atom.pred, tuple(new_args)))
    return ExpandedIC(
        original=ic,
        database_atoms=tuple(new_atoms),
        equalities=tuple(equalities),
        evaluable_atoms=ic.evaluable_atoms(),
        head=ic.head)
