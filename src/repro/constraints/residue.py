"""Residues and their classification.

A residue (Section 2; classified in Definition 4.1) is the part of an IC
left over after (partially) subsuming it against a clause: a condition
``body -> head`` that is guaranteed to hold whenever the clause produces a
tuple.

Definition 4.1 classifies residues arising from *free* subsumption, whose
bodies contain only evaluable atoms:

- **fact residue** ``E1,...,Em -> A`` (m >= 0): *conditional* when m > 0,
  *unconditional* otherwise;
- **null residue** ``E1,...,Em ->``: the clause can produce nothing when
  the ``Ei`` hold (conditional/unconditional as above).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..datalog.atoms import Atom, Comparison, Literal
from ..datalog.unify import Substitution

if TYPE_CHECKING:  # pragma: no cover
    from .ic import IntegrityConstraint


@dataclass(frozen=True)
class Residue:
    """The leftover of a subsumption: ``body -> head`` plus provenance.

    Attributes:
        body: leftover body literals (with the subsuming substitution
            applied).  Free residues contain only evaluable atoms here.
        head: leftover head (None for denials).
        subst: the subsuming substitution theta.
        ic: the integrity constraint the residue came from.
    """

    body: tuple[Literal, ...]
    head: Literal | None
    subst: Substitution = field(compare=False)
    ic: "IntegrityConstraint | None" = field(default=None, compare=False)

    def __str__(self) -> str:
        body = ", ".join(str(lit) for lit in self.body)
        head = str(self.head) if self.head is not None else ""
        return f"{body} -> {head}".strip()

    # -- Definition 4.1 ------------------------------------------------------
    @property
    def is_free(self) -> bool:
        """True when the body contains only evaluable atoms."""
        return all(isinstance(lit, Comparison) for lit in self.body)

    @property
    def is_fact(self) -> bool:
        """Fact residue: has a head (and, for Def 4.1, a free body)."""
        return self.head is not None and self.is_free

    @property
    def is_null(self) -> bool:
        """Null residue: no head (the clause is unsatisfiable under body)."""
        return self.head is None and self.is_free

    @property
    def is_conditional(self) -> bool:
        return bool(self.body)

    @property
    def kind(self) -> str:
        """A human-readable classification string."""
        if not self.is_free:
            return "non-free"
        shape = "null" if self.head is None else "fact"
        mode = "conditional" if self.is_conditional else "unconditional"
        return f"{mode} {shape}"

    # -- simplification --------------------------------------------------------
    def simplified(self) -> "Residue":
        """Drop trivially-true equalities and duplicate body literals."""
        seen: list[Literal] = []
        for lit in self.body:
            if (isinstance(lit, Comparison) and lit.op == "="
                    and lit.lhs == lit.rhs):
                continue
            if lit not in seen:
                seen.append(lit)
        return Residue(tuple(seen), self.head, self.subst, self.ic)

    @property
    def is_tautology(self) -> bool:
        """True when the head also occurs in the body (nothing to enforce)."""
        return self.head is not None and self.head in self.body

    def head_atom(self) -> Atom | None:
        """The head as a database atom, when it is one."""
        return self.head if isinstance(self.head, Atom) else None
