"""Integrity constraints.

An IC is an implication ``D1, ..., Dk, E1, ..., Em -> A`` (Section 3):
``Di`` are database atoms over EDB predicates, ``Ej`` evaluable atoms, and
the head ``A`` — possibly absent — is either kind of atom.  The paper
notes the reversal of head and body relative to rule notation.

A *denial* has no head: its body must never be satisfiable.  Semantically
a database satisfies an IC when every binding that satisfies the body also
satisfies the head.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..datalog.atoms import Atom, Comparison, Literal, literal_variables
from ..datalog.parser import ParsedIC, parse_ic
from ..datalog.program import Program
from ..datalog.rules import is_connected
from ..datalog.spans import Span
from ..datalog.terms import Variable
from ..datalog.unify import Substitution
from ..errors import ConstraintError


@dataclass(frozen=True)
class IntegrityConstraint:
    """An integrity constraint ``body -> head`` (head may be None)."""

    body: tuple[Literal, ...]
    head: Literal | None = None
    label: str | None = field(default=None, compare=False)
    span: Span | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.body:
            raise ConstraintError("an IC needs a non-empty body")
        if not self.database_atoms():
            raise ConstraintError(
                "an IC needs at least one database atom in its body (k >= 1)")

    def __str__(self) -> str:
        body = ", ".join(str(lit) for lit in self.body)
        head = str(self.head) if self.head is not None else ""
        text = f"{body} -> {head}".rstrip()
        if self.label:
            return f"{self.label}: {text}."
        return f"{text}."

    # -- structure -----------------------------------------------------------
    @property
    def is_denial(self) -> bool:
        return self.head is None

    def database_atoms(self) -> tuple[Atom, ...]:
        return tuple(lit for lit in self.body if isinstance(lit, Atom))

    def evaluable_atoms(self) -> tuple[Comparison, ...]:
        return tuple(lit for lit in self.body if isinstance(lit, Comparison))

    def variables(self) -> frozenset[Variable]:
        out = set(literal_variables(self.body))
        if self.head is not None:
            out.update(self.head.variables())
        return frozenset(out)

    def all_literals(self) -> tuple[Literal, ...]:
        if self.head is None:
            return self.body
        return self.body + (self.head,)

    def apply(self, subst: Substitution) -> "IntegrityConstraint":
        head = subst.apply_literal(self.head) if self.head is not None \
            else None
        return IntegrityConstraint(subst.apply_literals(self.body), head,
                                   label=self.label, span=self.span)

    # -- the paper's well-formedness conditions ---------------------------------
    def is_connected(self) -> bool:
        """Assumption (2): the IC's literals form a connected conjunction."""
        return is_connected(self.all_literals())

    def is_edb_only(self, program: Program) -> bool:
        """Assumption (4): database atoms (body and head) are over EDB."""
        atoms = list(self.database_atoms())
        if isinstance(self.head, Atom):
            atoms.append(self.head)
        return all(program.is_edb(a.pred) for a in atoms)

    def is_chain(self) -> bool:
        """Section 3's shape: ``Di`` shares variables with exactly its
        chain neighbours ``D(i-1)`` and ``D(i+1)`` among the database
        atoms (evaluable atoms may attach anywhere).

        A single database atom is trivially a chain.
        """
        atoms = self.database_atoms()
        if len(atoms) <= 1:
            return True
        var_sets = [a.variable_set() for a in atoms]
        for i, left in enumerate(var_sets):
            for j in range(i + 1, len(var_sets)):
                shared = left & var_sets[j]
                adjacent = j == i + 1
                if shared and not adjacent:
                    return False
                if adjacent and not shared:
                    return False
        return True

    def require_chain(self) -> None:
        if not self.is_chain():
            raise ConstraintError(
                f"IC {self.label or self} is not chain-shaped; "
                "Algorithm 3.1 requires each Di to share variables "
                "exactly with its neighbours")


def from_parsed(parsed: ParsedIC) -> IntegrityConstraint:
    """Convert a :class:`repro.datalog.parser.ParsedIC`."""
    return IntegrityConstraint(parsed.body, parsed.head, label=parsed.label,
                               span=parsed.span)


def ic_from_text(text: str) -> IntegrityConstraint:
    """Parse an IC from text, e.g. ``"a(X, Y), X > 5 -> b(Y)."``"""
    return from_parsed(parse_ic(text))


def ics_from_text(text: str) -> list[IntegrityConstraint]:
    """Parse several ICs from a block of text."""
    from ..datalog.parser import parse_statements

    out = []
    for statement in parse_statements(text):
        if not isinstance(statement, ParsedIC):
            raise ConstraintError(
                f"expected only integrity constraints, found {statement}")
        out.append(from_parsed(statement))
    return out


def validate_ics(ics: Iterable[IntegrityConstraint],
                 program: Program) -> list[str]:
    """Return human-readable problems for ICs violating the assumptions."""
    problems = []
    for ic in ics:
        name = ic.label or str(ic)
        if not ic.is_connected():
            problems.append(f"{name}: not connected")
        if not ic.is_edb_only(program):
            problems.append(f"{name}: mentions IDB predicates")
    return problems
