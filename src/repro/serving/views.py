"""Materialized views and the view registry (the serving core).

Promoted from ``repro.incremental.serving`` (PR 5) and extended for the
concurrent serving tier: a :class:`MaterializedView` pairs one program
with one :class:`~repro.facts.changelog.VersionedDatabase` and keeps
the program's full IDB materialized across EDB versions — the first
use pays a fixpoint evaluation, every later use pays only
:func:`~repro.incremental.maintain.maintain` over the net changeset
since the version the view last saw.  Compiled rule kernels and
support counts persist inside the view, so the compile-once /
reuse-many economics the paper argues for rewrites (Section 3) extend
across the whole update stream.

A :class:`Server` is a registry of such views keyed by
``(program fingerprint, planner, executor)`` — the knobs that change
what a materialization physically is — plus the shared versioned
database.  ``serve`` refreshes lazily: queries between updates are
answered straight from the warm IDB.

Concurrency additions (PR 6):

* **State transitions are atomic.**  ``_materialize`` computes the new
  IDB and support counts into locals and commits them in one step, so
  a fault mid-rebuild (budget, chaos, bug) leaves the previous
  state — in particular the last published snapshot — fully intact and
  the view cleanly ``valid=False``, never half-built.
* **Snapshot publication.**  With ``publish_snapshots=True`` every
  successful refresh ends by swapping in an immutable
  :class:`~repro.serving.snapshots.Snapshot` (version-pinned EDB + IDB
  copies).  Readers use only the snapshot; the live ``idb`` is the
  writer's workspace.
* **Chaos fault points** at every serving transition —
  ``serving:refresh`` (incremental maintenance), ``serving:materialize``
  (full rebuild), ``serving:apply`` (changeset ingestion) and
  ``serving:snapshot-swap`` (publication) — so tests and the chaos
  benchmark can prove each recovery path fires.
* **Fault-aggregating ``refresh_all``.**  One raising view no longer
  aborts the sweep: every view is refreshed, failures are collected
  into a :class:`RefreshReport`, and the caller decides.

Self-healing is unchanged: a refresh interrupted mid-flight leaves the
view invalid and the next refresh discards the partial state with a
full, from-scratch materialization.  A changeset the maintenance
engine cannot handle (:class:`~repro.errors.IncrementalUnsupported`)
falls back the same way, silently — correctness never depends on the
incremental path.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Optional

from ..datalog.parser import parse_query
from ..datalog.program import Program
from ..errors import IncrementalUnsupported, ReproError
from ..facts.changelog import Changeset, VersionedDatabase
from ..facts.database import Database
from ..engine.bindings import EvalStats
from ..engine.compile import KernelCache, validate_executor
from ..engine.bindings import validate_planner
from ..engine.seminaive import DerivationHook, answers, \
    seminaive_evaluate
from ..incremental.maintain import SupportCounts, maintain, \
    support_counts
from ..runtime import chaos
from ..runtime.budget import Budget
from .snapshots import Snapshot


def program_fingerprint(program: Program) -> str:
    """A stable 16-hex-digit digest of the program's rules, in order."""
    text = "\n".join(str(rule) for rule in program)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def relation_fingerprint(db: Database) -> str:
    """A digest of a database's facts, interning-agnostic.

    Computed over the sorted value-domain serialization, so a raw and an
    interned database holding the same facts fingerprint identically —
    the property the differential tests lean on.
    """
    return hashlib.sha256(db.to_text().encode()).hexdigest()[:16]


class MaterializedView:
    """One program's IDB, kept live against a versioned database."""

    def __init__(self, program: Program, source: VersionedDatabase,
                 planner: str = "greedy", executor: str = "compiled",
                 hook: Optional[DerivationHook] = None,
                 use_counts: bool = True,
                 publish_snapshots: bool = False) -> None:
        validate_executor(executor)
        validate_planner(planner)
        self.program = program
        self.source = source
        self.planner = planner
        self.executor = executor
        self.hook = hook
        self.use_counts = use_counts
        self.idb: Database | None = None
        self.counts: SupportCounts | None = None
        self.kernels = KernelCache(
            keep_atom_order=planner == "source",
            symbols=source.db.symbols,
            fuse=executor != "vectorized") \
            if executor in ("compiled", "parallel", "vectorized") \
            else None
        #: EDB version the materialization reflects; -1 = never built.
        self.version = -1
        #: False while the IDB may be mid-maintenance garbage.
        self.valid = False
        #: When True, every successful refresh publishes an immutable
        #: :class:`Snapshot` for lock-free concurrent readers.
        self.publish_snapshots = publish_snapshots
        #: The last-good snapshot; swapped atomically, never mutated.
        self.snapshot: Snapshot | None = None
        self.stats = EvalStats()
        self.full_refreshes = 0
        self.incremental_refreshes = 0
        self.snapshots_published = 0
        self.last_mode: str | None = None
        self.last_refresh_s: float | None = None

    @property
    def key(self) -> tuple[str, str, str]:
        return (program_fingerprint(self.program), self.planner,
                self.executor)

    def __repr__(self) -> str:
        state = "stale" if self.version < self.source.version \
            else "fresh"
        if not self.valid:
            state = "invalid"
        return (f"MaterializedView({self.key[0]}, v{self.version} "
                f"{state}, planner={self.planner}, "
                f"executor={self.executor})")

    # -- lifecycle -----------------------------------------------------------
    def _materialize(self, budget: Budget | None) -> str:
        """Full from-scratch rebuild with an atomic commit.

        The new IDB and support counts are computed into locals; the
        view's own state is only touched once everything succeeded.  An
        error at any point (chaos fault, budget expiry, engine bug)
        therefore leaves the previous ``idb``/``counts``/``snapshot``
        exactly as they were — the view is cleanly invalid, never
        half-built.
        """
        started = time.perf_counter()
        self.valid = False
        chaos.checkpoint("serving:materialize")
        target_version = self.source.version
        stats = EvalStats()
        idb = seminaive_evaluate(
            self.program, self.source.db, stats=stats,
            hook=self.hook, planner=self.planner, budget=budget,
            executor=self.executor)
        counts = support_counts(
            self.program, self.source.db, idb, stats=stats,
            executor=self.executor, hook=self.hook) \
            if self.use_counts else None
        self.idb = idb
        self.counts = counts
        self.stats.merge(stats)
        self.version = target_version
        self.valid = True
        self.full_refreshes += 1
        self.last_mode = "full"
        self.last_refresh_s = time.perf_counter() - started
        self._publish()
        return "full"

    def refresh(self, budget: Budget | None = None) -> str:
        """Bring the view current; returns how it got there.

        ``"fresh"`` — already at the source version, nothing ran.
        ``"incremental"`` — delta maintenance over the net changeset.
        ``"full"`` — from-scratch materialization (first build, an
        invalidated view, or an unsupported changeset).

        Any error escaping a refresh leaves the view invalid; the next
        call self-heals with a full rebuild.
        """
        if not self.valid or self.idb is None:
            return self._materialize(budget)
        if self.version >= self.source.version:
            self.last_mode = "fresh"
            self._publish()
            return "fresh"
        changes = self.source.changes_since(self.version)
        if changes.is_empty:
            self.version = self.source.version
            self.last_mode = "fresh"
            self._publish()
            return "fresh"
        started = time.perf_counter()
        self.valid = False
        try:
            chaos.checkpoint("serving:refresh")
            maintain(self.program, self.source.db, self.idb, changes,
                     counts=self.counts, stats=self.stats,
                     planner=self.planner, executor=self.executor,
                     hook=self.hook, budget=budget,
                     kernels=self.kernels)
        except IncrementalUnsupported:
            return self._materialize(budget)
        self.version = self.source.version
        self.valid = True
        self.incremental_refreshes += 1
        self.last_mode = "incremental"
        self.last_refresh_s = time.perf_counter() - started
        self._publish()
        return "incremental"

    def _publish(self) -> None:
        """Swap in a fresh snapshot when publication is enabled.

        Runs only on a *valid* view; skipped when the last-good
        snapshot already reflects the view's version.  The chaos
        checkpoint sits before the swap, so an injected fault leaves
        the previous snapshot serving — and because ``refresh`` then
        raises, the write pipeline retries and the next successful
        refresh (mode ``"fresh"``) re-attempts the swap.
        """
        if not self.publish_snapshots or self.idb is None:
            return
        if self.snapshot is not None \
                and self.snapshot.version >= self.version:
            return
        chaos.checkpoint("serving:snapshot-swap")
        snapshot = Snapshot(self.program, self.version,
                            self.source.db.copy(), self.idb.copy())
        self.snapshot = snapshot
        self.snapshots_published += 1

    def invalidate(self) -> None:
        """Force the next refresh to rebuild from scratch."""
        self.valid = False

    # -- reads ---------------------------------------------------------------
    def query(self, text_or_literals) -> set[tuple]:
        """Answer a conjunctive query from the warm materialization.

        The caller is responsible for refreshing first (``Server.serve``
        does); querying a stale view answers as of :attr:`version`.
        """
        if self.idb is None:
            raise ReproError("view was never materialized; call refresh()")
        if isinstance(text_or_literals, str):
            literals = parse_query(text_or_literals).literals
        else:
            literals = tuple(text_or_literals)
        return answers(literals, self.program, self.source.db,
                       self.idb, self.stats)

    def facts(self, pred: str) -> frozenset[tuple]:
        if self.idb is None:
            raise ReproError("view was never materialized; call refresh()")
        return self.idb.facts(pred)

    def fingerprint(self) -> str:
        """Digest of the current IDB (for differential comparison)."""
        if self.idb is None:
            raise ReproError("view was never materialized; call refresh()")
        return relation_fingerprint(self.idb)

    def describe(self) -> dict:
        """A JSON-friendly summary (CLI ``serve --describe``)."""
        return {
            "program": self.key[0],
            "planner": self.planner,
            "executor": self.executor,
            "version": self.version,
            "source_version": self.source.version,
            "valid": self.valid,
            "counts": self.counts is not None
            and len(self.counts.by_pred),
            "full_refreshes": self.full_refreshes,
            "incremental_refreshes": self.incremental_refreshes,
            "last_mode": self.last_mode,
            "idb_facts": self.idb.total_facts()
            if self.idb is not None else 0,
            "snapshot": self.snapshot.describe()
            if self.snapshot is not None else None,
        }


@dataclass
class RefreshReport:
    """What :meth:`Server.refresh_all` did, per view.

    ``modes`` maps program fingerprint to the refresh mode for every
    view that succeeded; ``errors`` maps program fingerprint to the
    exception for every view that raised.  The sweep never aborts
    early: one failing view costs only that view's refresh, not the
    freshness of every view registered after it.
    """

    modes: dict[str, str] = field(default_factory=dict)
    errors: dict[str, Exception] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_first(self) -> None:
        """Re-raise the first failure, for callers that want the old
        abort-on-error behaviour after the full sweep."""
        for error in self.errors.values():
            raise error

    def summary(self) -> str:
        lines = [f"view {fp}: {mode}"
                 for fp, mode in self.modes.items()]
        lines.extend(
            f"view {fp}: FAILED {type(err).__name__}: {err}"
            for fp, err in self.errors.items())
        return "\n".join(lines) if lines else "(no views)"


class Server:
    """A versioned database plus a registry of materialized views."""

    def __init__(self, db: Database | None = None,
                 source: VersionedDatabase | None = None) -> None:
        if source is not None and db is not None:
            raise ReproError("pass either db or source, not both")
        self.source = source if source is not None \
            else VersionedDatabase(db)
        self.views: dict[tuple[str, str, str], MaterializedView] = {}

    def __repr__(self) -> str:
        return (f"Server(v{self.source.version}, "
                f"{len(self.views)} views)")

    @property
    def version(self) -> int:
        return self.source.version

    def view(self, program: Program, planner: str = "greedy",
             executor: str = "compiled",
             hook: Optional[DerivationHook] = None,
             use_counts: bool = True,
             publish_snapshots: bool = False) -> MaterializedView:
        """Get or create the view for ``(program, planner, executor)``."""
        key = (program_fingerprint(program), planner, executor)
        existing = self.views.get(key)
        if existing is not None:
            if publish_snapshots:
                existing.publish_snapshots = True
            return existing
        view = MaterializedView(program, self.source, planner=planner,
                                executor=executor, hook=hook,
                                use_counts=use_counts,
                                publish_snapshots=publish_snapshots)
        self.views[key] = view
        return view

    def idb_predicates(self) -> frozenset[str]:
        """IDB predicates across every registered view's program."""
        preds: set[str] = set()
        for view in list(self.views.values()):
            preds |= view.program.idb_predicates
        return frozenset(preds)

    def apply(self, changeset: Changeset) -> int:
        """Apply a changeset to the shared database; views go stale.

        Nothing recomputes here — refresh is lazy, at the next serve.
        The ``serving:apply`` chaos point fires *before* any mutation,
        so an injected ingestion fault is atomic: either the whole
        changeset lands (and is logged) or none of it does.
        """
        chaos.checkpoint("serving:apply")
        return self.source.apply(changeset,
                                 idb_predicates=self.idb_predicates())

    def serve(self, program: Program, query,
              planner: str = "greedy", executor: str = "compiled",
              budget: Budget | None = None) -> set[tuple]:
        """Answer ``query`` from a warm, current materialization."""
        view = self.view(program, planner=planner, executor=executor)
        view.refresh(budget)
        return view.query(query)

    def refresh_all(self, budget: Budget | None = None) -> RefreshReport:
        """Refresh every view, aggregating failures instead of aborting.

        A view whose refresh raises is recorded in the report's
        ``errors`` (and left invalid, to self-heal on its next refresh)
        while the sweep continues with the remaining views.
        """
        report = RefreshReport()
        # Iterate a copy: a concurrent reader may register a view
        # mid-sweep (it will be picked up by the next sweep).
        for key, view in list(self.views.items()):
            try:
                report.modes[key[0]] = view.refresh(budget)
            except Exception as error:  # noqa: BLE001 - aggregated
                report.errors[key[0]] = error
        return report

    def describe(self) -> dict:
        return {
            "version": self.source.version,
            "edb_facts": self.source.db.total_facts(),
            "log_entries": len(self.source.log),
            "views": [view.describe()
                      for view in list(self.views.values())],
        }
