"""The concurrent, fault-tolerant serving tier.

Promoted from ``repro.incremental.serving`` (which remains as a
compatibility shim) and grown into the layer the ROADMAP's
"millions of users" story runs on:

* :mod:`~repro.serving.views` — :class:`MaterializedView` /
  :class:`Server`: warm materializations kept live by incremental
  maintenance, with atomic state transitions and chaos fault points.
* :mod:`~repro.serving.snapshots` — MVCC :class:`Snapshot` reads with
  a :class:`StalenessBound`: readers pin an immutable version and
  never block on (or observe) a half-applied refresh.
* :mod:`~repro.serving.pipeline` — the :class:`WritePipeline`: one
  maintenance writer draining a batching/coalescing ingestion queue
  under retry-with-backoff and a circuit breaker.
* :mod:`~repro.serving.threaded` — :class:`ThreadedServer`: admission
  control, per-request deadlines, and the background writer thread.

See ``docs/serving.md`` for the failure matrix: every fault mode maps
to a defined recovery path and a typed, client-visible behaviour.
"""

from .pipeline import BackgroundWriter, WritePipeline
from .snapshots import Snapshot, StalenessBound
from .threaded import ReadResult, ThreadedServer
from .views import (MaterializedView, RefreshReport, Server,
                    program_fingerprint, relation_fingerprint)

__all__ = [
    "MaterializedView", "Server", "RefreshReport",
    "program_fingerprint", "relation_fingerprint",
    "Snapshot", "StalenessBound",
    "WritePipeline", "BackgroundWriter",
    "ThreadedServer", "ReadResult",
]
