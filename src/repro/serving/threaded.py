"""The concurrent front-end: snapshot readers over a single writer.

:class:`ThreadedServer` is the deployment shape of the serving tier:
any number of reader threads answer queries from immutable MVCC
snapshots (:mod:`repro.serving.snapshots`) while one background
maintenance writer (:mod:`repro.serving.pipeline`) drains the write
queue and keeps the materializations current.  The synchronization
story is deliberately thin:

* **Readers are lock-free on the hot path.**  A read pins the view's
  current snapshot with one reference load and never touches shared
  mutable state again; a refresh — or a *failed, mid-flight* refresh —
  concurrently churning the live IDB is invisible to it.  This is the
  epoch scheme: the snapshot reference is the epoch pointer, old
  epochs die when their last reader drops them.
* **Admission control** caps concurrent readers with a semaphore;
  over-admission sheds load with a typed
  :class:`~repro.errors.ServingUnavailable` (``reason="admission"``)
  instead of queueing unbounded work.
* **Per-request deadlines**: every read carries a deadline; a reader
  whose staleness bound cannot be met in time gets
  ``reason="deadline"`` (or ``"no-snapshot"`` before the first
  materialization) rather than blocking forever.
* **Bounded staleness**: a read is served from the last-good snapshot
  whenever it satisfies the :class:`~repro.serving.snapshots.
  StalenessBound`; otherwise the reader nudges the writer
  (``request_refresh``) and waits on a condition variable the writer
  notifies after every cycle.

Without a running writer (``start()`` never called) the server
degrades to a synchronous mode: a reader that needs freshness runs the
refresh inline under a lock — same results, no background thread —
which is what keeps the CLI and deterministic tests simple.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

from ..datalog.program import Program
from ..errors import ServingUnavailable
from ..facts.changelog import Changeset, VersionedDatabase
from ..facts.database import Database
from ..runtime.retry import CircuitBreaker, HealthState, RetryPolicy
from .pipeline import BackgroundWriter, WritePipeline
from .snapshots import Snapshot, StalenessBound
from .views import MaterializedView, Server


@dataclass
class ReadResult:
    """One answered read, with its consistency provenance.

    ``rows`` came from an immutable snapshot at ``version``;
    ``source_version`` is where the live database stood at serve time,
    so ``lag = source_version - version`` is exactly how many applied
    changesets the answer may predate (0 = current).
    """

    rows: set
    version: int
    source_version: int
    snapshot_age_s: float
    latency_s: float

    @property
    def lag(self) -> int:
        return self.source_version - self.version

    @property
    def stale(self) -> bool:
        return self.lag > 0


class ThreadedServer:
    """A :class:`Server` behind admission control, deadlines, and a
    background maintenance writer.

    Args:
        db / source: the database to serve (exactly one, as with
            :class:`Server`).
        max_readers: concurrent-reader cap (admission control).
        staleness: default :class:`StalenessBound` for reads; ``None``
            means "any last-good snapshot" (maximum availability).
        default_deadline_s: per-read deadline when the caller gives
            none.
        max_queue / retry / breaker / rebuild_after /
        refresh_timeout_s: forwarded to the :class:`WritePipeline`.
        poll_s: writer loop poll interval.
    """

    def __init__(self, db: Database | None = None,
                 source: VersionedDatabase | None = None, *,
                 max_readers: int = 8,
                 staleness: StalenessBound | None = None,
                 default_deadline_s: float = 5.0,
                 max_queue: int = 256,
                 retry: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 rebuild_after: int = 2,
                 refresh_timeout_s: float | None = None,
                 poll_s: float = 0.02) -> None:
        if max_readers < 1:
            raise ValueError("max_readers must be >= 1")
        self.server = Server(db=db, source=source)
        self.staleness = staleness if staleness is not None \
            else StalenessBound()
        self.default_deadline_s = default_deadline_s
        self.pipeline = WritePipeline(
            self.server, max_queue=max_queue, retry=retry,
            breaker=breaker, rebuild_after=rebuild_after,
            refresh_timeout_s=refresh_timeout_s)
        self._writer = BackgroundWriter(self.pipeline, poll_s=poll_s,
                                        on_cycle=self._notify_readers)
        self._fresh = threading.Condition()
        self._admission = threading.BoundedSemaphore(max_readers)
        self.max_readers = max_readers
        self._views_lock = threading.Lock()
        self._inline_refresh_lock = threading.Lock()
        self._stopped = False
        # -- counters (best-effort under the GIL; for reports) --------------
        self.reads = 0
        self.stale_reads = 0
        self.reads_rejected = 0

    # -- lifecycle -----------------------------------------------------------
    @property
    def version(self) -> int:
        return self.server.version

    @property
    def health(self) -> HealthState:
        return self.pipeline.health

    def start(self) -> "ThreadedServer":
        """Start the background maintenance writer."""
        self._stopped = False
        self._writer.start()
        return self

    def stop(self, flush: bool = True, timeout_s: float = 10.0) -> None:
        """Stop serving; optionally flush queued writes first.

        New reads and writes are rejected (``reason="stopped"``) as
        soon as this is called; with ``flush`` the writer is given
        ``timeout_s`` to drain what was already queued.
        """
        self._stopped = True
        if flush:
            self.flush(timeout_s=timeout_s)
        self._writer.stop(timeout_s=timeout_s)
        self._notify_readers()

    def flush(self, timeout_s: float = 10.0) -> bool:
        """Block until every accepted write is applied (a barrier).

        Returns False when the pipeline could not drain before the
        timeout (e.g. the circuit is open); queued work is preserved
        either way.
        """
        deadline = time.monotonic() + timeout_s
        if not self._writer.running:
            while not self.pipeline.drained() \
                    and time.monotonic() < deadline:
                self.pipeline.process_once()
                self._notify_readers()
            return self.pipeline.drained()
        while time.monotonic() < deadline:
            if self.pipeline.drained():
                return True
            time.sleep(0.005)
        return self.pipeline.drained()

    def __enter__(self) -> "ThreadedServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _notify_readers(self) -> None:
        with self._fresh:
            self._fresh.notify_all()

    # -- writes --------------------------------------------------------------
    def update(self, changeset: Changeset,
               timeout_s: float | None = 0.0) -> None:
        """Submit one changeset to the write pipeline.

        Raises :class:`ServingUnavailable` when stopped, when the
        circuit is open, or on queue backpressure.  When no writer
        thread is running the batch is processed synchronously before
        returning (degraded single-threaded mode).
        """
        if self._stopped:
            raise ServingUnavailable("server is stopped",
                                     reason="stopped")
        self.pipeline.submit(changeset, timeout_s=timeout_s)
        if not self._writer.running:
            self.pipeline.process_once()
            self._notify_readers()

    # -- reads ---------------------------------------------------------------
    def view(self, program: Program, planner: str = "greedy",
             executor: str = "compiled") -> MaterializedView:
        """Get or create the (snapshot-publishing) view for a program."""
        with self._views_lock:
            return self.server.view(program, planner=planner,
                                    executor=executor,
                                    publish_snapshots=True)

    def read(self, program: Program, query,
             planner: str = "greedy", executor: str = "compiled",
             deadline_s: float | None = None,
             staleness: StalenessBound | None = None) -> ReadResult:
        """Answer ``query`` from a snapshot within the staleness bound.

        The returned :class:`ReadResult` names the exact version the
        answer reflects.  Failure modes are all typed
        :class:`ServingUnavailable`: ``"stopped"``, ``"admission"``
        (reader cap), ``"no-snapshot"`` / ``"deadline"`` (the bound
        could not be met before the deadline).
        """
        if self._stopped:
            raise ServingUnavailable("server is stopped",
                                     reason="stopped")
        started = time.perf_counter()
        deadline = time.monotonic() + (
            deadline_s if deadline_s is not None
            else self.default_deadline_s)
        bound = staleness if staleness is not None else self.staleness
        if not self._admission.acquire(
                timeout=max(0.0, deadline - time.monotonic())):
            self.reads_rejected += 1
            raise ServingUnavailable(
                f"admission control: {self.max_readers} concurrent "
                "readers already admitted", reason="admission")
        try:
            view = self.view(program, planner=planner, executor=executor)
            snapshot = self._pin_snapshot(view, bound, deadline)
            source_version = self.server.version
            rows = snapshot.query(query)
            self.reads += 1
            if snapshot.version < source_version:
                self.stale_reads += 1
            return ReadResult(
                rows=rows, version=snapshot.version,
                source_version=source_version,
                snapshot_age_s=snapshot.age_s(),
                latency_s=time.perf_counter() - started)
        finally:
            self._admission.release()

    def _pin_snapshot(self, view: MaterializedView,
                      bound: StalenessBound,
                      deadline: float) -> Snapshot:
        """A snapshot satisfying ``bound``, or a typed failure.

        Fast path: the current snapshot already qualifies.  Slow path:
        nudge the writer and wait for publication; without a running
        writer, refresh inline (one reader at a time — the others wait
        on the condition as if a writer existed).
        """
        while True:
            snapshot = view.snapshot
            if bound.allows(snapshot, self.server.version):
                return snapshot  # type: ignore[return-value]
            if not self._writer.running:
                if self._inline_refresh_lock.acquire(blocking=False):
                    try:
                        view.refresh()
                    except Exception:  # noqa: BLE001 - mapped below
                        # Same contract as threaded mode, where the
                        # writer absorbs refresh faults: the reader
                        # keeps the last-good snapshot and times out
                        # with a typed deadline failure if the bound
                        # stays unreachable.
                        pass
                    finally:
                        self._inline_refresh_lock.release()
                        self._notify_readers()
                    if bound.allows(view.snapshot, self.server.version):
                        return view.snapshot  # type: ignore[return-value]
            else:
                self.pipeline.request_refresh()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                snapshot = view.snapshot
                if snapshot is None:
                    raise ServingUnavailable(
                        "view has no materialized snapshot yet and the "
                        "deadline expired", reason="no-snapshot")
                raise ServingUnavailable(
                    f"staleness bound {bound!r} not met by deadline "
                    f"(last-good snapshot is v{snapshot.version}, "
                    f"source at v{self.server.version})",
                    reason="deadline")
            with self._fresh:
                self._fresh.wait(timeout=min(remaining, 0.05))

    def describe(self) -> dict:
        return {
            "health": str(self.health),
            "version": self.server.version,
            "reads": self.reads,
            "stale_reads": self.stale_reads,
            "reads_rejected": self.reads_rejected,
            "max_readers": self.max_readers,
            "writer_running": self._writer.running,
            "pipeline": self.pipeline.describe(),
            "server": self.server.describe(),
        }
