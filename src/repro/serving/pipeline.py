"""The fault-tolerant write pipeline: queue, coalescing, retry, breaker.

All mutation of a served database funnels through one
:class:`WritePipeline`: clients :meth:`submit` changesets into a
bounded ingestion queue and a *single* maintenance writer drains it —
batching every queued changeset into one net delta via
:meth:`Changeset.compose <repro.facts.changelog.Changeset.compose>`
(three queued updates cost one refresh, and an insert a later delete
cancels never touches the engine at all), applying it, and refreshing
the registered views under a per-refresh budget.

Failure handling is layered, each layer with a defined client-visible
behaviour (see ``docs/serving.md`` for the full matrix):

1. **Bounded retry with exponential backoff + jitter**
   (:class:`~repro.runtime.retry.RetryPolicy`) absorbs transient
   faults; readers meanwhile serve the last-good snapshot.
2. After ``rebuild_after`` consecutive refresh failures the pipeline
   abandons the incremental path: views are invalidated so the next
   attempt is a **full from-scratch rebuild** (health
   ``REBUILDING``).
3. A :class:`~repro.runtime.retry.CircuitBreaker` counts refresh
   failures; when it opens (``failure_threshold``), new writes are
   **rejected** with a typed
   :class:`~repro.errors.ServingUnavailable` (health
   ``UNAVAILABLE``) instead of queueing work that cannot complete.
   After the cooldown one probe batch is let through; success closes
   the circuit and re-opens ingestion.

The pipeline itself never lets an exception escape ``process_once`` —
every failure is recorded (``last_error``, counters) and mapped to a
state transition, which is what the chaos tests assert.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Optional

from ..errors import ServingUnavailable
from ..facts.changelog import Changeset
from ..runtime.budget import Budget
from ..runtime.retry import CircuitBreaker, HealthState, RetryPolicy
from .views import Server

#: Sentinel queued to request a refresh sweep without new changes
#: (readers waiting on a staleness bound use this to nudge the writer).
_REFRESH = object()


class WritePipeline:
    """Changeset ingestion and the single maintenance writer.

    Thread-compatible by construction: any number of threads may call
    :meth:`submit`; exactly one thread (the owner — a
    :class:`~repro.serving.threaded.ThreadedServer`'s writer loop, or
    a test driving :meth:`process_once` directly) runs the
    apply/refresh side.

    Args:
        server: the view registry and versioned database to maintain.
        max_queue: ingestion queue bound; a full queue rejects writes
            with :class:`ServingUnavailable` (backpressure).
        retry: backoff policy for one batch's apply+refresh attempts.
        breaker: circuit breaker over *batches*; opens after its
            failure threshold and then rejects new writes.
        rebuild_after: consecutive batch failures before views are
            invalidated and recovery switches to full rebuilds.
        refresh_timeout_s: per-refresh budget deadline; ``None`` for
            unbounded refreshes.
        sleep: injectable sleep (tests pass a no-op to run backoff
            schedules in zero wall-clock time).
    """

    def __init__(self, server: Server, max_queue: int = 256,
                 retry: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 rebuild_after: int = 2,
                 refresh_timeout_s: float | None = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.server = server
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None \
            else CircuitBreaker(failure_threshold=4, cooldown_s=0.5)
        self.rebuild_after = rebuild_after
        self.refresh_timeout_s = refresh_timeout_s
        self._sleep = sleep
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=max_queue)
        #: A drained-but-not-yet-applied net changeset from a batch
        #: whose every retry failed; re-composed *before* newly queued
        #: changesets on the next cycle so update order is preserved
        #: and no submitted write is ever dropped.
        self._carry: Changeset | None = None
        self._consecutive_failures = 0
        self.health = HealthState.HEALTHY
        self.last_error: Exception | None = None
        # -- counters (single-writer updated; read freely) ------------------
        self.submitted = 0
        self.absorbed = 0
        #: True while a batch (drain -> apply -> refresh) is in flight.
        self.busy = False
        self.rejected = 0
        self.batches = 0
        self.changesets_coalesced = 0
        self.applied_versions = 0
        self.refresh_failures = 0
        self.full_rebuilds_forced = 0

    def __repr__(self) -> str:
        return (f"WritePipeline({self.health}, "
                f"queue={self._queue.qsize()}, "
                f"breaker={self.breaker.state})")

    # -- ingestion (any thread) ---------------------------------------------
    def submit(self, changeset: Changeset,
               timeout_s: float | None = 0.0) -> None:
        """Enqueue one changeset for the maintenance writer.

        Raises :class:`ServingUnavailable` when the circuit is open
        (``reason="circuit-open"``, with a ``retry_after_s`` hint) or
        the queue stays full past ``timeout_s``
        (``reason="backpressure"``).
        """
        if self.breaker.state == "open":
            self.rejected += 1
            raise ServingUnavailable(
                "write pipeline circuit is open after repeated refresh "
                "failures; retry later", reason="circuit-open",
                retry_after_s=self.breaker.retry_after_s())
        try:
            if timeout_s is None:
                self._queue.put(changeset)
            else:
                self._queue.put(changeset, block=timeout_s > 0,
                                timeout=timeout_s or None)
        except queue.Full:
            self.rejected += 1
            raise ServingUnavailable(
                "write queue is full; the maintenance writer is not "
                "keeping up", reason="backpressure") from None
        self.submitted += 1

    def request_refresh(self) -> None:
        """Ask the writer for a refresh sweep without new changes."""
        try:
            self._queue.put_nowait(_REFRESH)
        except queue.Full:
            pass  # a full queue already guarantees an imminent sweep

    def pending(self) -> int:
        return self._queue.qsize()

    def drained(self) -> bool:
        """True when every accepted write has been applied — nothing
        queued, nothing carried from a failed batch, no batch in
        flight.  The barrier tests and ``ThreadedServer.flush`` poll."""
        return (self._queue.empty() and self._carry is None
                and not self.busy and self.absorbed >= self.submitted)

    # -- the maintenance writer (single thread) -----------------------------
    def _drain(self, block_s: float | None
               ) -> tuple[Changeset | None, bool, int]:
        """Collect everything queued into one net changeset.

        Returns ``(net changeset or None, saw any work, changesets
        drained)``; composing here is the batching/coalescing step —
        one refresh absorbs the whole backlog.
        """
        items: list[object] = []
        try:
            if block_s is None:
                items.append(self._queue.get_nowait())
            else:
                items.append(self._queue.get(timeout=block_s))
        except queue.Empty:
            return None, self._carry is not None, 0
        while True:
            try:
                items.append(self._queue.get_nowait())
            except queue.Empty:
                break
        net: Changeset | None = None
        drained = 0
        for item in items:
            if item is _REFRESH:
                continue
            drained += 1
            self.changesets_coalesced += 1
            net = item if net is None else net.compose(item)
        return net, True, drained

    def process_once(self, block_s: float | None = None) -> bool:
        """Drain, apply, and refresh one batch; returns True if any
        work was seen.

        Never raises: every failure updates counters, health state,
        and the breaker, and leaves recovery to the next call.  The
        batch is only marked done once apply+refresh succeeded — a
        changeset is either fully applied and materialized, or still
        owned by the retry/rebuild ladder.
        """
        if not self.breaker.allow():
            # Open circuit: don't hammer a struggling engine.  Leave
            # queued work where it is; the cooldown will let a probe
            # batch through.
            self.health = HealthState.UNAVAILABLE
            return False
        net, saw_work, drained = self._drain(block_s)
        # ``busy`` covers drain-to-done (not the blocking wait), and the
        # carry is only picked up / put back inside it, so the
        # ``drained()`` barrier can never observe a half-claimed batch.
        self.busy = True
        try:
            carry, self._carry = self._carry, None
            if carry is not None:
                net = carry if net is None else carry.compose(net)
            if not saw_work and self.health == HealthState.HEALTHY:
                return False
            self.batches += 1
            state = {"applied": net is None or net.is_empty}
            try:
                self.retry.call(
                    lambda: self._apply_and_refresh(net, state),
                    retry_on=(Exception,), sleep=self._sleep,
                    on_failure=self._note_failure)
            except Exception as error:  # noqa: BLE001 - mapped to state
                self.last_error = error
                self.breaker.record_failure()
                self._consecutive_failures += 1
                if not state["applied"] and net is not None \
                        and not net.is_empty:
                    # The EDB mutation never landed: carry it into the
                    # next batch (composed before newer submissions) so
                    # no accepted write is ever dropped.
                    self._carry = net
                if self._consecutive_failures >= self.rebuild_after:
                    # The incremental path keeps failing batch after
                    # batch: discard the possibly poisoned
                    # materializations and recover from scratch.
                    self.health = HealthState.REBUILDING
                    self.full_rebuilds_forced += 1
                    for view in self.server.views.values():
                        view.invalidate()
                if self.breaker.state != "closed":
                    self.health = HealthState.UNAVAILABLE
                elif self.health == HealthState.HEALTHY:
                    self.health = HealthState.DEGRADED
                return True
            self._consecutive_failures = 0
            self.breaker.record_success()
            self.health = HealthState.HEALTHY
            return True
        finally:
            # Drained submissions are accounted for here — either fully
            # applied or parked in the carry (which ``drained()`` also
            # checks) — never while the batch is still in flight.
            self.absorbed += drained
            self.busy = False

    def _note_failure(self, attempt: int, error: BaseException) -> None:
        """Per-attempt bookkeeping; the batch-level ladder (consecutive
        failures, rebuilds, breaker) advances in :meth:`process_once`
        only once every retry of the batch is exhausted."""
        self.refresh_failures += 1
        if isinstance(error, Exception):
            self.last_error = error
        if self.health == HealthState.HEALTHY:
            self.health = HealthState.DEGRADED

    def _apply_and_refresh(self, net: Changeset | None,
                           state: dict) -> None:
        """One attempt: land the batch (once) and refresh every view.

        ``state["applied"]`` survives across retry attempts, so the
        changeset is applied exactly once even when a later refresh
        attempt fails and the batch is retried — a retry can never
        double-apply the EDB mutation.
        """
        if not state["applied"]:
            assert net is not None
            self.server.apply(net)
            self.applied_versions += 1
            state["applied"] = True
        budget = Budget(timeout_s=self.refresh_timeout_s) \
            if self.refresh_timeout_s is not None else None
        report = self.server.refresh_all(budget)
        report.raise_first()

    def describe(self) -> dict:
        return {
            "health": str(self.health),
            "queue": self._queue.qsize(),
            "submitted": self.submitted,
            "rejected": self.rejected,
            "batches": self.batches,
            "changesets_coalesced": self.changesets_coalesced,
            "applied_versions": self.applied_versions,
            "refresh_failures": self.refresh_failures,
            "full_rebuilds_forced": self.full_rebuilds_forced,
            "breaker": self.breaker.describe(),
            "last_error": f"{type(self.last_error).__name__}: "
                          f"{self.last_error}"
            if self.last_error is not None else None,
        }


class BackgroundWriter:
    """Runs a :class:`WritePipeline` on a dedicated daemon thread.

    The loop blocks briefly on the ingestion queue so a stop request is
    noticed within ``poll_s`` even when no traffic arrives.  ``stop``
    drains nothing: queued-but-unprocessed changesets are reported via
    ``pipeline.pending()`` so callers can decide to flush first
    (:meth:`ThreadedServer.stop <repro.serving.threaded.ThreadedServer.
    stop>` does, by default).
    """

    def __init__(self, pipeline: WritePipeline,
                 poll_s: float = 0.05,
                 on_cycle: Optional[Callable[[], None]] = None) -> None:
        self.pipeline = pipeline
        self.poll_s = poll_s
        self._on_cycle = on_cycle
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: Exception that killed the loop itself (never expected:
        #: process_once is no-raise; this catches harness bugs).
        self.crashed: BaseException | None = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "BackgroundWriter":
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-serving-writer", daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        try:
            while not self._stop.is_set():
                worked = self.pipeline.process_once(block_s=self.poll_s)
                if self._on_cycle is not None and worked:
                    self._on_cycle()
                if not worked and self.pipeline.health \
                        == HealthState.UNAVAILABLE:
                    # Open circuit with nothing to do: sleep out a
                    # slice of the cooldown instead of spinning.
                    self._stop.wait(self.poll_s)
        except BaseException as error:  # pragma: no cover - harness bug
            self.crashed = error
            raise

    def stop(self, timeout_s: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            self._thread = None
