"""MVCC snapshots: immutable, versioned materializations for readers.

The write side of the serving tier mutates shared state in place — the
:class:`~repro.facts.changelog.VersionedDatabase` EDB under ``apply``
and the view's live IDB under incremental maintenance.  Readers never
touch either.  Instead, after every successful refresh the view
publishes a :class:`Snapshot`: an independent copy of the EDB and IDB
as of one version, swapped in with a single reference assignment
(atomic under the GIL).  A reader pins whatever snapshot reference it
observes and answers queries from it without locks, unaffected by any
refresh — including a *failed* one — running concurrently.

Staleness is a first-class, bounded property rather than an accident:
a :class:`StalenessBound` says how far behind the live version (and/or
how old in wall-clock terms) a served snapshot may be.  The threaded
front-end serves the last-good snapshot whenever it satisfies the
bound, which is what keeps readers answering while the single
maintenance writer churns — or retries after a fault — underneath.
"""

from __future__ import annotations

import time
from typing import Optional

from ..datalog.parser import parse_query
from ..datalog.program import Program
from ..engine.bindings import EvalStats
from ..engine.seminaive import answers
from ..facts.database import Database


class Snapshot:
    """One immutable (by convention) materialization at one version.

    Holds independent copies of the EDB and IDB, so neither in-place
    ``apply`` mutations nor a half-finished maintenance pass can ever
    show through a reader's result set.  Construction cost is one
    relation copy per predicate (index buckets are duplicated warm, see
    :meth:`repro.facts.relation.Relation.copy`), paid once per refresh
    by the writer — never by readers.
    """

    def __init__(self, program: Program, version: int,
                 edb: Database, idb: Database) -> None:
        self.program = program
        self.version = version
        self.edb = edb
        self.idb = idb
        #: Monotonic creation stamp, for wall-clock staleness bounds.
        self.created_monotonic = time.monotonic()
        self._fingerprint: str | None = None

    def __repr__(self) -> str:
        return (f"Snapshot(v{self.version}, "
                f"{self.idb.total_facts()} IDB facts, "
                f"age={self.age_s():.3f}s)")

    def age_s(self) -> float:
        """Seconds since this snapshot was published."""
        return time.monotonic() - self.created_monotonic

    def query(self, text_or_literals,
              stats: EvalStats | None = None) -> set[tuple]:
        """Answer a conjunctive query from the pinned state.

        Each call uses its own :class:`EvalStats` unless one is passed,
        so concurrent readers never share a mutable counter object.
        """
        if isinstance(text_or_literals, str):
            literals = parse_query(text_or_literals).literals
        else:
            literals = tuple(text_or_literals)
        return answers(literals, self.program, self.edb, self.idb,
                       stats if stats is not None else EvalStats())

    def facts(self, pred: str) -> frozenset[tuple]:
        return self.idb.facts(pred)

    def fingerprint(self) -> str:
        """Digest of the snapshot IDB; cached — a snapshot is immutable.

        Import is local to avoid a cycle (views.py imports this module).
        """
        if self._fingerprint is None:
            from .views import relation_fingerprint
            self._fingerprint = relation_fingerprint(self.idb)
        return self._fingerprint

    def describe(self) -> dict:
        return {
            "version": self.version,
            "idb_facts": self.idb.total_facts(),
            "edb_facts": self.edb.total_facts(),
            "age_s": round(self.age_s(), 6),
        }


class StalenessBound:
    """How stale a served snapshot may be, in versions and/or seconds.

    ``max_lag`` bounds ``source.version - snapshot.version`` — the
    number of applied changesets the answer may be missing.  ``max_age_s``
    bounds wall-clock snapshot age.  ``None`` disables the respective
    axis; the default bound (``max_lag=None, max_age_s=None``) accepts
    any last-good snapshot, which is the availability-over-freshness
    corner of the trade-off.  ``max_lag=0`` demands the current version
    (readers then wait, up to their deadline, for the writer).
    """

    def __init__(self, max_lag: Optional[int] = None,
                 max_age_s: Optional[float] = None) -> None:
        if max_lag is not None and max_lag < 0:
            raise ValueError("max_lag must be >= 0")
        if max_age_s is not None and max_age_s < 0:
            raise ValueError("max_age_s must be >= 0")
        self.max_lag = max_lag
        self.max_age_s = max_age_s

    def __repr__(self) -> str:
        return (f"StalenessBound(max_lag={self.max_lag}, "
                f"max_age_s={self.max_age_s})")

    def allows(self, snapshot: Snapshot | None,
               source_version: int) -> bool:
        """May ``snapshot`` be served while the source is at
        ``source_version``?"""
        if snapshot is None:
            return False
        if self.max_lag is not None \
                and source_version - snapshot.version > self.max_lag:
            return False
        if self.max_age_s is not None \
                and snapshot.age_s() > self.max_age_s:
            return False
        return True
