"""An interactive Datalog shell with semantic optimization built in.

Start it with ``python -m repro shell``.  Plain input is parsed as
statements in the library's syntax — rules and facts accumulate, ICs
(``body -> head.``) register constraints, and queries (``?- ... .``)
evaluate immediately.  Meta-commands begin with a dot:

=================  =====================================================
``.program``       show the current program
``.ics``           show the registered integrity constraints
``.facts [PRED]``  show stored EDB facts
``.load FILE``     read statements from a file
``.csv PRED FILE`` load a CSV file into a relation
``.update ...``    apply a changeset (``+fact. -fact.`` statements, or
                   a file of them); materialized query state is
                   maintained incrementally instead of recomputed
``.validate``      check the program against the paper's assumptions
``.lint``          run the analysis passes over the program, ICs and
                   last query (also reachable as ``:lint``)
``.residues``      show the residues of the registered ICs
``.optimize``      push the residues; the shell switches to the
                   transformed program (``.original`` switches back)
``.original``      revert to the unoptimized program
``.explain ATOM``  print a derivation tree for a derived ground atom
``.describe ...``  intelligent query answering (Section 5)
``.reset``         clear everything
``.help``          this text
``.quit``          leave the shell
=================  =====================================================

Meta-commands also accept a leading colon (``:lint``, ``:program``,
...), matching the convention of other Datalog shells.
"""

from __future__ import annotations

import sys
from typing import Iterable, Iterator

from .constraints import IntegrityConstraint, from_parsed
from .core import SemanticOptimizer
from .datalog import format_program, validate_program
from .datalog.parser import (ParsedIC, ParsedQuery, parse_atom,
                             parse_statements)
from .datalog.program import Program
from .datalog.rules import Rule
from .engine.explain import explain
from .errors import ReproError
from .facts import Database, load_csv
from .iqa import describe, parse_describe

PROMPT = "repro> "


class Shell:
    """The shell's state machine; one :meth:`handle` call per input line.

    Incomplete statements (no terminating period yet) are buffered, so
    multi-line rules work as they do in Prolog systems.
    """

    def __init__(self) -> None:
        self.rules: list[Rule] = []
        self.ics: list[IntegrityConstraint] = []
        self.edb = Database()
        self._buffer = ""
        self._optimized: Program | None = None
        self._last_query = None  # query atom for query-dependent lints
        #: Warm serving session: queries answer from materialized views
        #: kept live by `.update`.  Dropped (None) whenever the EDB is
        #: mutated behind the version log's back (plain facts, .csv).
        self._server = None

    # -- program state -------------------------------------------------------
    @property
    def program(self) -> Program:
        if self._optimized is not None:
            return self._optimized
        return Program(self.rules)

    def handle(self, line: str) -> Iterator[str]:
        """Process one input line; yields output lines."""
        stripped = line.strip()
        if not stripped:
            return
        if self._buffer:
            self._buffer += " " + stripped
            if stripped.endswith("."):
                text, self._buffer = self._buffer, ""
                yield from self._statements(text)
            return
        if stripped.startswith("."):
            yield from self._meta(stripped)
            return
        if stripped.startswith(":"):
            yield from self._meta("." + stripped[1:])
            return
        if not stripped.endswith("."):
            self._buffer = stripped
            return
        yield from self._statements(stripped)

    # -- statements ----------------------------------------------------------
    def _statements(self, text: str) -> Iterator[str]:
        try:
            statements = parse_statements(text)
        except ReproError as error:
            yield f"error: {error}"
            return
        for statement in statements:
            if isinstance(statement, ParsedQuery):
                yield from self._answer(statement)
            elif isinstance(statement, ParsedIC):
                try:
                    self.ics.append(from_parsed(statement))
                    yield f"ic registered: {self.ics[-1]}"
                except ReproError as error:
                    yield f"error: {error}"
            elif isinstance(statement, Rule):
                if statement.is_fact:
                    self.edb.add_atom(statement.head)
                    self._server = None  # edited around the change log
                    yield f"fact stored: {statement}"
                else:
                    self.rules.append(statement)
                    self._optimized = None  # stale after edits
                    label = self.program.rules[-1].label
                    yield f"rule added [{label}]: {statement}"

    def _answer(self, query: ParsedQuery) -> Iterator[str]:
        from .datalog.atoms import Atom

        if query.literals and isinstance(query.literals[0], Atom):
            self._last_query = query.literals[0]
        try:
            rows = sorted(self._serve(query.literals), key=str)
        except ReproError as error:
            yield f"error: {error}"
            return
        if not rows:
            yield "no."
        for row in rows:
            yield "  " + ", ".join(str(value) for value in row)
        if rows:
            yield f"{len(rows)} answer(s)."

    def _serve(self, literals) -> set[tuple]:
        """Answer from the warm serving session (lazily created).

        The first query after a cold start or an out-of-band EDB edit
        pays a full materialization; queries after ``.update`` pay only
        incremental maintenance of the view.
        """
        if self._server is None:
            from .facts.changelog import VersionedDatabase
            from .incremental import Server

            self._server = Server(source=VersionedDatabase(self.edb))
        return self._server.serve(self.program, literals)

    # -- meta commands -------------------------------------------------------
    def _meta(self, line: str) -> Iterator[str]:
        command, _, argument = line.partition(" ")
        argument = argument.strip()
        handler = {
            ".program": self._cmd_program,
            ".ics": self._cmd_ics,
            ".facts": self._cmd_facts,
            ".load": self._cmd_load,
            ".csv": self._cmd_csv,
            ".update": self._cmd_update,
            ".validate": self._cmd_validate,
            ".lint": self._cmd_lint,
            ".residues": self._cmd_residues,
            ".optimize": self._cmd_optimize,
            ".original": self._cmd_original,
            ".explain": self._cmd_explain,
            ".describe": self._cmd_describe,
            ".reset": self._cmd_reset,
            ".help": self._cmd_help,
        }.get(command)
        if handler is None:
            yield f"unknown command {command}; try .help"
            return
        try:
            yield from handler(argument)
        except ReproError as error:
            yield f"error: {error}"
        except FileNotFoundError as error:
            yield f"error: {error}"

    def _cmd_program(self, _: str) -> Iterator[str]:
        if not self.rules:
            yield "(no rules)"
            return
        tag = " (optimized)" if self._optimized is not None else ""
        yield f"% program{tag}"
        yield format_program(self.program, group_by_head=True)

    def _cmd_ics(self, _: str) -> Iterator[str]:
        if not self.ics:
            yield "(no integrity constraints)"
        for ic in self.ics:
            yield str(ic)

    def _cmd_facts(self, argument: str) -> Iterator[str]:
        predicates = [argument] if argument else sorted(self.edb)
        empty = True
        for pred in predicates:
            for row in sorted(self.edb.facts(pred), key=str):
                empty = False
                yield f"{pred}({', '.join(str(v) for v in row)})."
        if empty:
            yield "(no facts)"

    def _cmd_load(self, argument: str) -> Iterator[str]:
        if not argument:
            yield "usage: .load FILE"
            return
        with open(argument, "r", encoding="utf-8") as handle:
            text = handle.read()
        yield from self._statements(text)

    def _cmd_csv(self, argument: str) -> Iterator[str]:
        parts = argument.split()
        if len(parts) != 2:
            yield "usage: .csv PRED FILE"
            return
        pred, path = parts
        added = load_csv(self.edb, pred, path)
        self._server = None  # edited around the change log
        yield f"{added} fact(s) loaded into {pred}"

    def _cmd_update(self, argument: str) -> Iterator[str]:
        from .facts.changelog import Changeset

        if not argument:
            yield "usage: .update +pred(args). -pred(args). (or a FILE)"
            return
        text = argument
        if not argument.lstrip().startswith(("+", "-")):
            with open(argument, "r", encoding="utf-8") as handle:
                text = handle.read()
        changeset = Changeset.from_text(text)
        if changeset.is_empty:
            yield "(empty changeset)"
            return
        if self._server is None:
            from .facts.changelog import VersionedDatabase
            from .incremental import Server

            self._server = Server(source=VersionedDatabase(self.edb))
        version = self._server.apply(changeset)
        yield (f"applied +{changeset.total_inserts()}"
               f"/-{changeset.total_deletes()} -> v{version}")
        report = self._server.refresh_all()
        for line in report.summary().splitlines():
            yield line

    def _cmd_validate(self, _: str) -> Iterator[str]:
        yield validate_program(self.program).summary()

    def _cmd_lint(self, argument: str) -> Iterator[str]:
        from .analysis import lint_program

        query = self._last_query
        if argument:
            query = parse_atom(argument)
        report = lint_program(self.program, ics=tuple(self.ics),
                              query=query)
        if report.clean:
            yield "no findings"
            return
        for diagnostic in report:
            yield diagnostic.render()
        yield report.summary()

    def _cmd_residues(self, _: str) -> Iterator[str]:
        if not self.ics:
            yield "(no integrity constraints)"
            return
        optimizer = self._optimizer()
        items = optimizer.all_residues()
        if not items:
            yield "(no residues)"
        for item in items:
            yield str(item)

    def _cmd_optimize(self, _: str) -> Iterator[str]:
        if not self.ics:
            yield "(no integrity constraints to push)"
            return
        report = self._optimizer().optimize()
        yield report.summary()
        if report.changed:
            self._optimized = report.optimized
            yield "switched to the optimized program (.original reverts)"

    def _optimizer(self) -> SemanticOptimizer:
        return SemanticOptimizer(Program(self.rules), self.ics)

    def _cmd_original(self, _: str) -> Iterator[str]:
        self._optimized = None
        yield "using the original program"

    def _cmd_explain(self, argument: str) -> Iterator[str]:
        if not argument:
            yield "usage: .explain pred(c1, ...)"
            return
        goal = parse_atom(argument)
        derivation = explain(self.program, self.edb, goal)
        if derivation is None:
            yield f"{goal} is not derivable"
        else:
            yield derivation.render()

    def _cmd_describe(self, argument: str) -> Iterator[str]:
        query = parse_describe(f".describe {argument}".replace(
            ".describe", "describe", 1))
        result = describe(self.program, query, ics=tuple(self.ics))
        yield result.summary()

    def _cmd_reset(self, _: str) -> Iterator[str]:
        self.__init__()
        yield "cleared"

    def _cmd_help(self, _: str) -> Iterator[str]:
        yield __doc__.split("meta-commands begin with a dot:")[-1].strip()


def run(lines: Iterable[str]) -> list[str]:
    """Run the shell over a sequence of input lines (for scripting/tests)."""
    shell = Shell()
    output: list[str] = []
    for line in lines:
        if line.strip() in (".quit", ".exit"):
            break
        output.extend(shell.handle(line))
    return output


def interactive() -> int:  # pragma: no cover - needs a terminal
    """The interactive loop used by ``python -m repro shell``."""
    shell = Shell()
    print("repro shell — .help for commands, .quit to leave")
    while True:
        try:
            line = input(PROMPT)
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if line.strip() in (".quit", ".exit"):
            return 0
        for out in shell.handle(line):
            print(out)
