"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish parse errors from semantic ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """Raised when Datalog source text cannot be parsed.

    Attributes:
        line: 1-based line number of the offending token, if known.
        column: 1-based column number of the offending token, if known.
        excerpt: a caret-annotated extract of the offending source line,
            when the parser had the source text at hand; rendered on the
            lines following the message.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None,
                 excerpt: str | None = None) -> None:
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        text = message + location
        if excerpt:
            text += "\n" + excerpt
        super().__init__(text)
        self.line = line
        self.column = column
        self.excerpt = excerpt


class ProgramError(ReproError):
    """Raised when a program violates a structural requirement.

    Examples: unsafe rules, mutual recursion where linear recursion is
    required, rules that are not range restricted.
    """


class ConstraintError(ReproError):
    """Raised when an integrity constraint is malformed for an algorithm.

    For instance, Algorithm 3.1 requires chain-shaped ICs whose database
    subgoals share variables only with their chain neighbours.
    """


class EvaluationError(ReproError):
    """Raised when bottom-up evaluation cannot proceed.

    Examples: an evaluable predicate applied to unbound variables, a
    non-stratifiable use of negation, or a query over an unknown predicate.
    """


class BudgetExceededError(EvaluationError):
    """Raised when evaluation exhausts a resource budget.

    The error reports *how far* evaluation got before the budget ran
    out, so callers can distinguish "almost done" from "barely started".

    Attributes:
        resource: which limit was hit (``"deadline"``, ``"derivations"``,
            ``"facts"`` or ``"rounds"``).
        limit: the configured limit for that resource.
        spent: how much of the resource had been consumed when the check
            fired (seconds for deadlines, counts otherwise).
        stats: partial :class:`repro.engine.bindings.EvalStats`
            accumulated up to the interruption, when available.
        last_round: the last *completed* fixpoint round, when available.
    """

    def __init__(self, message: str, resource: str = "unknown",
                 limit: float | int | None = None,
                 spent: float | int | None = None,
                 stats: object | None = None,
                 last_round: int | None = None) -> None:
        super().__init__(message)
        self.resource = resource
        self.limit = limit
        self.spent = spent
        self.stats = stats
        self.last_round = last_round


class EvaluationCancelledError(EvaluationError):
    """Raised when a cooperative :meth:`repro.runtime.Budget.cancel`
    interrupts an evaluation.

    Attributes:
        stats: partial :class:`repro.engine.bindings.EvalStats`
            accumulated up to the interruption, when available.
        last_round: the last *completed* fixpoint round, when available.
    """

    def __init__(self, message: str = "evaluation cancelled",
                 stats: object | None = None,
                 last_round: int | None = None) -> None:
        super().__init__(message)
        self.stats = stats
        self.last_round = last_round


class IncrementalUnsupported(EvaluationError):
    """Raised when a changeset cannot be maintained incrementally.

    Deletion maintenance (counting / DRed) is only exact for the
    *monotone* part of a program: when a changed predicate can reach a
    negated occurrence, removing or adding EDB rows may grow or shrink
    relations non-monotonically and the delta passes no longer bound the
    effect.  The serving layer treats this error as "fall back to a full
    recomputation", so callers never observe wrong answers — only the
    loss of the incremental speedup.

    Attributes:
        reason: short machine-readable tag (``"negation"``, ...).
    """

    def __init__(self, message: str, reason: str = "unsupported") -> None:
        super().__init__(message)
        self.reason = reason


class ServingUnavailable(ReproError):
    """Raised when the serving tier cannot honour a request right now.

    The concurrent serving layer (:mod:`repro.serving`) degrades in
    defined steps rather than letting internal failures escape to
    clients: admission control sheds load, a tripped circuit breaker
    rejects writes, and a reader whose staleness bound cannot be met
    before its deadline is told so — always with this typed error, so
    clients can distinguish "back off and retry" from a genuine bug.

    Attributes:
        reason: short machine-readable tag — ``"admission"`` (too many
            concurrent readers), ``"circuit-open"`` (write pipeline
            tripped after repeated refresh failures), ``"deadline"``
            (the per-request deadline expired before a fresh-enough
            snapshot existed), ``"no-snapshot"`` (the view has never
            been successfully materialized), or ``"stopped"`` (the
            server is shutting down).
        retry_after_s: a hint for when retrying might succeed, when the
            server can estimate one (circuit-breaker cooldown).
    """

    def __init__(self, message: str, reason: str = "unavailable",
                 retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after_s = retry_after_s


class TransformError(ReproError):
    """Raised when a program transformation receives invalid input.

    Examples: isolating an empty expansion sequence, pushing a residue that
    does not belong to the isolated sequence.
    """
