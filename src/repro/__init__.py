"""repro — semantic optimization of recursive queries by pushing
integrity-constraint residues inside recursion.

A from-scratch reproduction of Lakshmanan & Missaoui, *"Pushing Semantics
inside Recursion: A General Framework for Semantic Optimization of
Recursive Queries"*, ICDE 1995.

Quickstart::

    from repro import (parse_program, ics_from_text, Database,
                       SemanticOptimizer, evaluate)

    program = parse_program('''
        r0: anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).
        r1: anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za), par(Z, Za, Y, Ya).
    ''')
    ics = ics_from_text('''
        ic1: Ya <= 50, par(Z, Za, Y, Ya), par(Z2, Z2a, Z, Za),
             par(Z3, Z3a, Z2, Z2a) -> .
    ''')
    report = SemanticOptimizer(program, ics).optimize()
    print(report.summary())
    result = evaluate(report.optimized, Database.from_text("..."))

Subpackages:

- :mod:`repro.datalog` — AST, parser, analysis (the substrate);
- :mod:`repro.analysis` — the diagnostics engine behind ``repro lint``:
  the paper's assumptions and the engine preconditions as stable,
  span-carrying diagnostic codes;
- :mod:`repro.facts` — indexed relations and databases;
- :mod:`repro.engine` — naive/semi-naive evaluation, stratification,
  magic sets;
- :mod:`repro.constraints` — ICs, (free) subsumption, residues;
- :mod:`repro.core` — the paper's contribution: Algorithm 3.1
  (residue generation over expansion sequences), Algorithm 4.1
  (sequence isolation) and the push transformations;
- :mod:`repro.baselines` — the evaluation-paradigm comparators;
- :mod:`repro.iqa` — intelligent query answering (Section 5);
- :mod:`repro.workloads` / :mod:`repro.bench` — paper fixtures,
  generators and the experiment suite;
- :mod:`repro.runtime` — resilience layer: budgets, deadlines,
  cooperative cancellation and deterministic fault injection.
"""

from .errors import (BudgetExceededError, ConstraintError,
                     EvaluationCancelledError, EvaluationError, ParseError,
                     ProgramError, ReproError, TransformError)
from .runtime import Budget, ChaosPlan, ResilienceReport, StageFailure
from .datalog import (Atom, Comparison, Constant, Program, Rule, Span,
                      Variable, atom, comparison, format_program,
                      parse_atom, parse_ic, parse_program, parse_query,
                      parse_rule, rule, validate_program)
from .analysis import (AnalysisReport, Diagnostic, analyze_program,
                       lint_program, lint_source)
from .facts import Database, Relation
from .engine import (EvaluationResult, evaluate, evaluate_with_magic,
                     magic_answers, magic_rewrite, naive_evaluate,
                     query_answers, seminaive_evaluate, topdown_query)
from .constraints import (IntegrityConstraint, Residue, ic_from_text,
                          ics_from_text, satisfies, violations)
from .core import (Isolation, OptimizationReport, SemanticOptimizer,
                   SequenceResidue, check_equivalent, generate_residues,
                   isolate, optimize, optimize_all_predicates, unfold)
from .baselines import (ResidueGuidedEngine, guided_evaluate,
                        optimize_rule_level)
from .iqa import KnowledgeQuery, describe, parse_describe

__version__ = "1.0.0"

__all__ = [
    "BudgetExceededError", "ConstraintError", "EvaluationCancelledError",
    "EvaluationError", "ParseError", "ProgramError",
    "ReproError", "TransformError",
    "Budget", "ChaosPlan", "ResilienceReport", "StageFailure",
    "Atom", "Comparison", "Constant", "Program", "Rule", "Span",
    "Variable", "atom", "comparison", "format_program", "parse_atom",
    "parse_ic", "parse_program", "parse_query", "parse_rule", "rule",
    "validate_program",
    "AnalysisReport", "Diagnostic", "analyze_program", "lint_program",
    "lint_source",
    "Database", "Relation",
    "EvaluationResult", "evaluate", "evaluate_with_magic",
    "magic_answers", "magic_rewrite", "naive_evaluate", "query_answers",
    "seminaive_evaluate", "topdown_query",
    "IntegrityConstraint", "Residue", "ic_from_text", "ics_from_text",
    "satisfies", "violations",
    "Isolation", "OptimizationReport", "SemanticOptimizer",
    "SequenceResidue", "check_equivalent", "generate_residues",
    "isolate", "optimize", "optimize_all_predicates", "unfold",
    "ResidueGuidedEngine", "guided_evaluate", "optimize_rule_level",
    "KnowledgeQuery", "describe", "parse_describe",
    "__version__",
]
