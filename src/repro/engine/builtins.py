"""Semantics of evaluable (built-in) predicates.

Evaluable atoms are comparisons over arithmetic expressions.  During
bottom-up evaluation, variables are bound to ground Python values; this
module evaluates expressions under such bindings and decides comparisons.

``=`` doubles as a *binding* builtin: when exactly one side is an unbound
variable and the other side is fully evaluable, it binds instead of
testing, which is what makes rectified rules (whose head constraints moved
into ``=`` body atoms) safe to evaluate.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..datalog.atoms import Comparison
from ..datalog.terms import ArithExpr, Constant, ConstValue, Term, Variable
from ..errors import EvaluationError

Binding = Mapping[Variable, ConstValue]

_UNBOUND = object()


def eval_term(term: Term, binding: Binding) -> ConstValue:
    """Evaluate a term to a ground value; raises when a variable is unbound."""
    value = try_eval_term(term, binding)
    if value is _UNBOUND:
        raise EvaluationError(f"unbound variable in evaluable atom: {term}")
    return value  # type: ignore[return-value]


def try_eval_term(term: Term, binding: Binding) -> object:
    """Like :func:`eval_term` but returns a sentinel instead of raising."""
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, Variable):
        return binding.get(term, _UNBOUND)
    left = try_eval_term(term.left, binding)
    right = try_eval_term(term.right, binding)
    if left is _UNBOUND or right is _UNBOUND:
        return _UNBOUND
    return _apply_arith(term.op, left, right)


def _apply_arith(op: str, left: object, right: object) -> ConstValue:
    if not isinstance(left, (int, float)) or not isinstance(right,
                                                            (int, float)):
        raise EvaluationError(
            f"arithmetic on non-numeric values: {left!r} {op} {right!r}")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise EvaluationError("division by zero")
        return left / right
    raise EvaluationError(f"unknown arithmetic operator {op!r}")


def _compare(op: str, left: ConstValue, right: ConstValue) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    # Ordering comparisons require compatible types.
    numeric = isinstance(left, (int, float)) and isinstance(right,
                                                            (int, float))
    textual = isinstance(left, str) and isinstance(right, str)
    if not numeric and not textual:
        raise EvaluationError(
            f"cannot order {left!r} and {right!r} with {op!r}")
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise EvaluationError(f"unknown comparison operator {op!r}")


#: Public aliases used by the kernel compiler, which pre-binds operands
#: to slots and only needs the value-level semantics.
def compare_values(op: str, left: ConstValue, right: ConstValue) -> bool:
    """Decide ``left op right`` with the engine's comparison semantics."""
    return _compare(op, left, right)


def apply_arith(op: str, left: object, right: object) -> ConstValue:
    """Apply an arithmetic operator with the engine's error semantics."""
    return _apply_arith(op, left, right)


def holds(comparison: Comparison, binding: Binding) -> bool:
    """Decide a comparison under a ground binding."""
    left = eval_term(comparison.lhs, binding)
    right = eval_term(comparison.rhs, binding)
    return _compare(comparison.op, left, right)


def solve(comparison: Comparison,
          binding: dict[Variable, ConstValue]) -> Optional[
              dict[Variable, ConstValue]]:
    """Decide or *bind* a comparison.

    Returns the (possibly extended) binding when the comparison holds or
    could be satisfied by binding one unbound variable through ``=``;
    returns None when it fails.  Raises :class:`EvaluationError` when the
    comparison cannot be decided (unbound variables in a non-binding
    position), which indicates an unsafe rule slipped past validation.
    """
    left = try_eval_term(comparison.lhs, binding)
    right = try_eval_term(comparison.rhs, binding)
    if left is not _UNBOUND and right is not _UNBOUND:
        if _compare(comparison.op, left, right):  # type: ignore[arg-type]
            return binding
        return None
    if comparison.op == "=":
        if (left is _UNBOUND and isinstance(comparison.lhs, Variable)
                and right is not _UNBOUND):
            extended = dict(binding)
            extended[comparison.lhs] = right  # type: ignore[assignment]
            return extended
        if (right is _UNBOUND and isinstance(comparison.rhs, Variable)
                and left is not _UNBOUND):
            extended = dict(binding)
            extended[comparison.rhs] = left  # type: ignore[assignment]
            return extended
    raise EvaluationError(
        f"cannot decide {comparison} with unbound variables")


def can_check(comparison: Comparison, bound: set[Variable]) -> bool:
    """True when all variables of the comparison are in ``bound``."""
    return comparison.variable_set() <= bound


def can_bind(comparison: Comparison, bound: set[Variable]) -> bool:
    """True when ``=`` could bind exactly one new variable given ``bound``."""
    if comparison.op != "=":
        return False
    lhs_free = comparison.lhs if isinstance(comparison.lhs, Variable) \
        and comparison.lhs not in bound else None
    rhs_free = comparison.rhs if isinstance(comparison.rhs, Variable) \
        and comparison.rhs not in bound else None
    lhs_ok = set(v for v in _vars(comparison.lhs)) <= bound
    rhs_ok = set(v for v in _vars(comparison.rhs)) <= bound
    return (lhs_free is not None and rhs_ok) or (rhs_free is not None
                                                 and lhs_ok)


def _vars(term: Term):
    if isinstance(term, Variable):
        yield term
    elif isinstance(term, ArithExpr):
        yield from _vars(term.left)
        yield from _vars(term.right)
