"""Join machinery: evaluating a rule body against stored relations.

The engine evaluates rule bodies literal-at-a-time with hash-index
lookups.  A simple greedy planner orders literals once per evaluation:
comparisons run as soon as their variables are bound (selections pushed
down), negations run when ground, and database atoms are chosen to
maximize bound columns (and, among equals, smaller relations), which keeps
intermediate binding sets small.

Semi-naive evaluation needs to force one designated occurrence of a
recursive predicate to read from the *delta* relation; the ``fetch``
callable receives the body index of the atom so callers can redirect
specific occurrences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from ..datalog.atoms import Atom, Comparison, Negation
from ..datalog.rules import Rule
from ..datalog.terms import ArithExpr, Constant, ConstValue, Variable
from ..errors import EvaluationError
from ..facts.relation import Relation, Row
from . import builtins

#: ``fetch(atom, body_index) -> Relation`` — resolves an atom occurrence to
#: the relation it should scan (full relation, delta, EDB, ...).
Fetch = Callable[[Atom, int], Relation]

#: ``cost(atom, body_index, bound_columns) -> float`` — estimated rows
#: one placement of the atom would match, given the columns bound so
#: far.  Supplied by the adaptive planner from live relation statistics.
Cost = Callable[[Atom, int, tuple[int, ...]], float]

#: Known join planners: ``greedy`` orders by boundness then raw size,
#: ``adaptive`` by statistics-estimated selectivity, ``source`` keeps
#: database atoms in rule order, ``cbo`` enumerates whole-program
#: rewrites (:mod:`repro.engine.optimizer`) and executes the chosen
#: candidate with the adaptive runtime machinery.
PLANNERS = ("greedy", "adaptive", "source", "cbo")

Binding = dict[Variable, ConstValue]


def validate_planner(planner: str) -> None:
    if planner not in PLANNERS:
        raise EvaluationError(
            f"unknown planner {planner!r}; expected one of {PLANNERS}")


@dataclass
class EvalStats:
    """Instrumentation counters accumulated during evaluation.

    These are the quantities the benchmark harness reports alongside wall
    time: they make the *work saved* by an optimization visible even when
    timings are noisy.
    """

    atom_lookups: int = 0
    rows_matched: int = 0
    comparisons_checked: int = 0
    negation_checks: int = 0
    derivations: int = 0
    duplicate_derivations: int = 0
    iterations: int = 0
    rules_fired: int = 0
    residue_checks: int = 0
    #: Adaptive-planner recompilations triggered by cardinality drift.
    replans: int = 0
    #: Incremental maintenance: IDB rows removed by DRed's overdeletion.
    overdeleted: int = 0
    #: Incremental maintenance: overdeleted rows with surviving proofs.
    rederived: int = 0
    #: Incremental maintenance: IDB rows whose removal stuck (net Δ⁻).
    retracted: int = 0
    #: Matched rows attributed to each rule label (semi-naive only).
    rule_rows: dict = field(default_factory=dict)

    def rows_for_rules(self, prefix: str) -> int:
        """Total matched rows in rules whose label starts with ``prefix``."""
        return sum(rows for label, rows in self.rule_rows.items()
                   if label.startswith(prefix))

    def merge(self, other: "EvalStats") -> None:
        self.atom_lookups += other.atom_lookups
        self.rows_matched += other.rows_matched
        self.comparisons_checked += other.comparisons_checked
        self.negation_checks += other.negation_checks
        self.derivations += other.derivations
        self.duplicate_derivations += other.duplicate_derivations
        self.iterations += other.iterations
        self.rules_fired += other.rules_fired
        self.residue_checks += other.residue_checks
        self.replans += other.replans
        self.overdeleted += other.overdeleted
        self.rederived += other.rederived
        self.retracted += other.retracted
        for label, rows in other.rule_rows.items():
            self.rule_rows[label] = self.rule_rows.get(label, 0) + rows

    def as_dict(self) -> dict[str, int]:
        return {
            "atom_lookups": self.atom_lookups,
            "rows_matched": self.rows_matched,
            "comparisons_checked": self.comparisons_checked,
            "negation_checks": self.negation_checks,
            "derivations": self.derivations,
            "duplicate_derivations": self.duplicate_derivations,
            "iterations": self.iterations,
            "rules_fired": self.rules_fired,
            "residue_checks": self.residue_checks,
            "replans": self.replans,
            "overdeleted": self.overdeleted,
            "rederived": self.rederived,
            "retracted": self.retracted,
        }


def _check_atom_args(atom: Atom) -> None:
    for arg in atom.args:
        if isinstance(arg, ArithExpr):
            raise EvaluationError(
                f"arithmetic expressions are not allowed in database "
                f"atoms: {atom}")


def bound_columns_of(atom: Atom, bound: set[Variable]) -> tuple[int, ...]:
    """The atom's columns that would be bound given ``bound`` variables."""
    return tuple(
        column for column, arg in enumerate(atom.args)
        if isinstance(arg, Constant)
        or (isinstance(arg, Variable) and arg in bound))


def plan_body(rule: Rule, sizes: Callable[[Atom, int], int],
              keep_atom_order: bool = False,
              cost: Cost | None = None) -> list[int]:
    """Order body literal indexes greedily (see module docstring).

    With ``keep_atom_order`` database atoms stay in source order (the
    1995-style fixed-join-order evaluator the paper assumes); evaluable
    literals still run as soon as their variables are bound, since no
    reasonable evaluator defers a ready selection.

    When ``cost`` is given (the adaptive planner) the next database
    atom is the one with the smallest estimated match count — size
    scaled by the selectivity of its bound columns — instead of the
    boundness/size heuristic; boundness is implicit in the estimate,
    since every bound column divides it by the column's distinct count.
    Ties break by source order, keeping plans deterministic.
    """
    remaining = set(range(len(rule.body)))
    bound: set[Variable] = set()
    order: list[int] = []

    def ready_builtin() -> Optional[int]:
        for index in sorted(remaining):
            lit = rule.body[index]
            if isinstance(lit, Comparison):
                if builtins.can_check(lit, bound) or builtins.can_bind(
                        lit, bound):
                    return index
            elif isinstance(lit, Negation):
                if lit.variable_set() <= bound:
                    return index
        return None

    while remaining:
        index = ready_builtin()
        if index is not None:
            order.append(index)
            remaining.discard(index)
            lit = rule.body[index]
            if isinstance(lit, Comparison):
                bound.update(lit.variable_set())
            continue
        # Pick the database atom with the most bound variables, breaking
        # ties by smaller relation size, then by source order — or by
        # smallest estimated match count under the adaptive planner — or
        # simply the next atom in source order under keep_atom_order.
        best: tuple | None = None
        best_index: Optional[int] = None
        for index in sorted(remaining):
            lit = rule.body[index]
            if not isinstance(lit, Atom):
                continue
            if keep_atom_order:
                best_index = index
                break
            if cost is not None:
                key = (cost(lit, index, bound_columns_of(lit, bound)),
                       index)
            else:
                bound_count = sum(
                    1 for arg in lit.args
                    if isinstance(arg, Constant)
                    or (isinstance(arg, Variable) and arg in bound))
                key = (-bound_count, sizes(lit, index), index)
            if best is None or key < best:
                best = key
                best_index = index
        if best_index is None:
            # Only unready builtins remain: unsafe rule.
            stuck = [str(rule.body[i]) for i in sorted(remaining)]
            raise EvaluationError(
                f"unsafe rule {rule.label or rule}: cannot evaluate "
                f"{', '.join(stuck)}")
        order.append(best_index)
        remaining.discard(best_index)
        bound.update(rule.body[best_index].variable_set())
    return order


def _match_row(atom: Atom, row: Row, binding: Binding) -> Optional[Binding]:
    """Extend ``binding`` so that ``atom`` matches ``row``; None on clash."""
    extended: Binding | None = None
    current = binding
    for arg, value in zip(atom.args, row):
        if isinstance(arg, Constant):
            if arg.value != value:
                return None
        else:  # Variable
            known = current.get(arg, _MISSING)
            if known is _MISSING:
                if extended is None:
                    extended = dict(binding)
                    current = extended
                extended[arg] = value
            elif known != value:
                return None
    return extended if extended is not None else dict(binding)


_MISSING = object()


def _bound_pattern(atom: Atom,
                   binding: Binding) -> tuple[tuple[int, ConstValue], ...]:
    pairs: list[tuple[int, ConstValue]] = []
    seen_vars: set[Variable] = set()
    for column, arg in enumerate(atom.args):
        if isinstance(arg, Constant):
            pairs.append((column, arg.value))
        elif isinstance(arg, Variable):
            if arg in binding:
                pairs.append((column, binding[arg]))
            else:
                seen_vars.add(arg)
    return tuple(pairs)


def solve_body(rule: Rule, fetch: Fetch, stats: EvalStats,
               order: list[int] | None = None,
               initial: Binding | None = None,
               keep_atom_order: bool = False) -> Iterator[Binding]:
    """Yield every binding of the body variables satisfying the body."""
    if order is None:
        def sizes(atom: Atom, index: int) -> int:
            return len(fetch(atom, index))
        order = plan_body(rule, sizes, keep_atom_order=keep_atom_order)

    def solve(position: int, binding: Binding) -> Iterator[Binding]:
        if position == len(order):
            yield binding
            return
        index = order[position]
        lit = rule.body[index]
        if isinstance(lit, Comparison):
            stats.comparisons_checked += 1
            extended = builtins.solve(lit, binding)
            if extended is not None:
                yield from solve(position + 1, extended)
            return
        if isinstance(lit, Negation):
            stats.negation_checks += 1
            _check_atom_args(lit.atom)
            relation = fetch(lit.atom, index)
            pattern = _bound_pattern(lit.atom, binding)
            found = False
            for row in relation.lookup(pattern):
                if _match_row(lit.atom, row, binding) is not None:
                    found = True
                    break
            if not found:
                yield from solve(position + 1, binding)
            return
        # Database atom
        _check_atom_args(lit)
        relation = fetch(lit, index)
        stats.atom_lookups += 1
        pattern = _bound_pattern(lit, binding)
        for row in relation.lookup(pattern):
            extended = _match_row(lit, row, binding)
            if extended is None:
                continue
            stats.rows_matched += 1
            yield from solve(position + 1, extended)

    yield from solve(0, dict(initial or {}))


def instantiate_head(rule: Rule, binding: Binding) -> Row:
    """Build the head tuple from a complete body binding."""
    values: list[ConstValue] = []
    for arg in rule.head.args:
        if isinstance(arg, Constant):
            values.append(arg.value)
        elif isinstance(arg, Variable):
            try:
                values.append(binding[arg])
            except KeyError:
                raise EvaluationError(
                    f"head variable {arg} unbound in rule "
                    f"{rule.label or rule}; rule is not range "
                    "restricted") from None
        else:
            values.append(builtins.eval_term(arg, binding))
    return tuple(values)
