"""Stratification for negation.

The optimizer itself never emits negated database atoms (conditional
splits use comparison complements), but the substrate supports stratified
negation as any real deductive database would.  A program is stratifiable
when no cycle of the predicate dependency graph contains a negative edge;
strata are then the SCC condensation in topological order.
"""

from __future__ import annotations

import networkx as nx

from ..datalog.program import Program
from ..errors import EvaluationError


def stratify(program: Program) -> list[frozenset[str]]:
    """Partition the IDB predicates into evaluation strata.

    Returns a list of predicate sets; stratum ``i`` may depend positively
    on strata ``<= i`` and negatively only on strata ``< i``.  Raises
    :class:`EvaluationError` for non-stratifiable programs.
    """
    graph = program.dependency_graph()
    condensation = nx.condensation(graph)
    # Check for negative edges inside a component.
    component_of: dict[str, int] = condensation.graph["mapping"]
    for source, target, data in graph.edges(data=True):
        if data.get("negative") and component_of[source] == \
                component_of[target]:
            raise EvaluationError(
                f"program is not stratifiable: {target} depends "
                f"negatively on {source} within a recursive component")
    idb = program.idb_predicates
    strata: list[frozenset[str]] = []
    for node in nx.topological_sort(condensation):
        members = frozenset(condensation.nodes[node]["members"]) & idb
        if members:
            strata.append(members)
    return strata
