"""Magic-sets rewriting.

Section 6 of the paper frames its contribution as the semantic analogue of
magic sets: "just as the magic sets method pushes the goal selectivity of
queries inside recursion, our approach tries to push the semantics (in
ICs) inside the recursion."  We implement the classic supplementary-free
magic-sets transformation (left-to-right sideways information passing)
both as a substrate feature and for experiment E6, which composes magic
sets *on top of* the semantic transformation to show the two
optimizations are orthogonal.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.atoms import Atom, Comparison, Literal, Negation
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Term, Variable
from ..errors import TransformError
from ..facts.database import Database
from ..runtime import chaos
from ..runtime.budget import Budget, resolve_budget

Adornment = str  # e.g. "bf" — one letter per argument position


def adornment_of(query: Atom) -> Adornment:
    """Compute the binding pattern of a query atom: constants are bound."""
    return "".join(
        "b" if isinstance(arg, Constant) else "f" for arg in query.args)


def _adorned(pred: str, adornment: Adornment) -> str:
    return f"{pred}__{adornment}"


def _magic(pred: str, adornment: Adornment) -> str:
    return f"m_{pred}__{adornment}"


def _bound_args(atom: Atom, adornment: Adornment) -> tuple[Term, ...]:
    return tuple(arg for arg, a in zip(atom.args, adornment) if a == "b")


@dataclass(frozen=True)
class MagicProgram:
    """Result of the rewriting.

    Attributes:
        program: the rewritten rules (adorned + magic + seed).
        query_pred: adorned name of the query predicate; evaluate the
            rewritten program and read answers from this relation.
        seed: the magic seed fact added as a rule (also in ``program``).
    """

    program: Program
    query_pred: str
    seed: Rule

    def answers(self, idb: Database) -> frozenset[tuple]:
        """Project the adorned query relation out of an IDB database."""
        return frozenset(idb.facts(self.query_pred))


def magic_rewrite(program: Program, query: Atom,
                  budget: Budget | None = None,
                  adornment: Adornment | None = None) -> MagicProgram:
    """Rewrite ``program`` for the given query atom.

    The query must target an IDB predicate; its constant arguments define
    the binding pattern.  Negation is not supported by this rewriting (the
    paper's programs are negation-free).  ``budget`` bounds the adornment
    worklist (in the worst case one adorned copy per binding pattern —
    exponential in arity), checked once per worklist entry.

    ``adornment``, when given, overrides the query's natural binding
    pattern with a *weakening* of it: every position marked ``b`` must
    hold a constant in ``query``, but constant positions may be marked
    ``f`` to trade filter tightness for fewer adorned variants.  The
    cost-based optimizer (:mod:`repro.engine.optimizer`) enumerates
    these weakenings as separate candidates.
    """
    budget = resolve_budget(budget)
    chaos.checkpoint("magic_rewrite")
    if query.pred not in program.idb_predicates:
        raise TransformError(
            f"magic rewriting needs an IDB query predicate, got "
            f"{query.pred!r}")
    for rule in program:
        if rule.negated_atoms():
            raise TransformError(
                "magic rewriting does not support negation")

    natural = adornment_of(query)
    if adornment is not None:
        if len(adornment) != len(query.args) \
                or any(a not in "bf" for a in adornment):
            raise TransformError(
                f"adornment {adornment!r} does not match "
                f"{query.pred}/{len(query.args)}")
        if any(a == "b" and n == "f"
               for a, n in zip(adornment, natural)):
            raise TransformError(
                f"adornment {adornment!r} marks a non-constant query "
                "argument bound")
        if "b" not in adornment:
            raise TransformError(
                "all-free adornment passes no bindings; evaluate "
                "without magic rewriting instead")
    query_adornment = adornment if adornment is not None else natural
    out_rules: list[Rule] = []
    pending: list[tuple[str, Adornment]] = [(query.pred, query_adornment)]
    done: set[tuple[str, Adornment]] = set()

    while pending:
        if budget is not None:
            # Deadline/cancellation only: max_rounds bounds *evaluation*
            # rounds, not the rewriting worklist.
            budget.check_round(last_round=None)
        pred, adornment = pending.pop()
        if (pred, adornment) in done:
            continue
        done.add((pred, adornment))
        for rule in program.rules_for(pred):
            out_rules.extend(
                _rewrite_rule(program, rule, adornment, pending))

    seed_args = _bound_args(query, query_adornment)
    seed = Rule(Atom(_magic(query.pred, query_adornment), seed_args), (),
                label="magic_seed")
    out_rules.append(seed)
    rewritten = Program(
        out_rules, edb_hint=tuple(program.edb_predicates))
    return MagicProgram(rewritten, _adorned(query.pred, query_adornment),
                        seed)


def _rewrite_rule(program: Program, rule: Rule, adornment: Adornment,
                  pending: list[tuple[str, Adornment]]) -> list[Rule]:
    """Produce the modified rule plus one magic rule per IDB body atom."""
    head_bound = {
        arg for arg, a in zip(rule.head.args, adornment)
        if a == "b" and isinstance(arg, Variable)}
    magic_head = Atom(_magic(rule.head.pred, adornment),
                      _bound_args(rule.head, adornment))
    bound: set[Variable] = set(head_bound)
    new_body: list[Literal] = [magic_head]
    magic_rules: list[Rule] = []
    prefix: list[Literal] = []  # literals usable in magic-rule bodies

    for lit in rule.body:
        if isinstance(lit, Comparison):
            new_body.append(lit)
            if lit.variable_set() <= bound:
                prefix.append(lit)
            continue
        if isinstance(lit, Negation):  # pragma: no cover - guarded above
            raise TransformError("negation in magic rewriting")
        if program.is_edb(lit.pred):
            new_body.append(lit)
            prefix.append(lit)
            bound.update(lit.variable_set())
            continue
        # IDB body atom: adorn by current boundness.
        sub_adornment = "".join(
            "b" if (isinstance(arg, Constant)
                    or (isinstance(arg, Variable) and arg in bound))
            else "f" for arg in lit.args)
        pending.append((lit.pred, sub_adornment))
        magic_body = [magic_head] + list(prefix)
        magic_rules.append(Rule(
            Atom(_magic(lit.pred, sub_adornment),
                 _bound_args(lit, sub_adornment)),
            tuple(magic_body),
            label=None))
        adorned_atom = Atom(_adorned(lit.pred, sub_adornment), lit.args)
        new_body.append(adorned_atom)
        prefix.append(adorned_atom)
        bound.update(lit.variable_set())

    modified = Rule(Atom(_adorned(rule.head.pred, adornment),
                         rule.head.args),
                    tuple(new_body), label=None)
    return magic_rules + [modified]
