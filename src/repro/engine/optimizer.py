"""Cost-based enumerating optimizer for recursive plans (``planner="cbo"``).

The adaptive planner (PR 3) orders one rule body at a time; the semantic
optimizer (Algorithm 3.1 + Section 4) pushes residues greedily; magic
sets rewrite unconditionally.  This module composes all of them into a
*transformation-based enumerating optimizer* in the style of Fejza &
Genevès (arXiv:2312.02572), whose search space — semantically equivalent
whole programs — subsumes magic-sets- and residue-style rewrites the way
Wang et al.'s FGH rule does (arXiv:2202.10390):

1. **Enumerate** a bounded rewrite space per program: residue pushing
   on/off per integrity constraint, magic sets with a per-adornment
   choice (each bound query position may be kept or weakened), left/right
   linearization of transitive-closure-shaped linear rules, and rule
   fusion (unfolding single-definition non-recursive auxiliaries).
   Candidates live in a :class:`Memo`: groups are keyed by program
   fingerprint, so transform paths that converge on the same program
   share one group and are costed once (group-level deduplication).
2. **Cost** each group with a unified model: *warm* index-backed
   statistics (:meth:`Relation.probe_estimate`) where relations hold
   rows, *cold* dataflow size bounds (:class:`DataflowResult`, PR 9)
   everywhere else — including the adorned bounds that price what a
   magic-restricted predicate will materialize.
3. **Choose** the cheapest whole-program candidate *before the fixpoint
   starts* and execute it with the adaptive runtime machinery
   (statistics-driven join orders, drift-triggered replans).  Per-rule
   kernel choice (batch-vectorized vs compiled row-at-a-time, costed by
   predicted frontier width) re-enters on every adaptive-drift replan:
   a replanned kernel is a new identity, so its batch-vs-row decision is
   re-costed against the statistics that triggered the replan.

Equivalence discipline: whole-program evaluation
(:func:`repro.engine.evaluate` with ``planner="cbo"``) must reproduce
every IDB relation with exact per-rule counters, so only
counter-preserving choices are admissible there — join ordering and
kernel choice — and the differential-fuzz matrix pins them bit-identical
to ``planner="adaptive"``.  Rewrites that preserve the *answer* but not
the full IDB trace (magic, linearization, fusion) or that rely on
IC-consistency (residue pushing) engage only at the query-bearing entry
points (:func:`cbo_evaluate`, :func:`cbo_answers`, ``bench-optimizer``).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import (TYPE_CHECKING, Callable, Iterable, Iterator,
                    Sequence)

from ..datalog.atoms import Atom, Comparison, Negation
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Variable
from ..errors import ReproError, TransformError
from ..facts.database import Database
from ..runtime.budget import Budget, resolve_budget
from .bindings import EvalStats, plan_body
from .magic import MagicProgram, adornment_of, magic_rewrite

if TYPE_CHECKING:
    from ..analysis.dataflow import DataflowResult
    from .compile import CompiledKernel
    from .engine import EvaluationResult

INF = math.inf

#: Predicted frontier width below which a generated batch kernel loses
#: to the compiled row-at-a-time kernel: the batch pays per-firing
#: column gathers and index materializations that only amortize over
#: wide frontiers.
MIN_BATCH_WIDTH = 16.0

#: Enumeration ceiling — the rewrite space is bounded by construction
#: (per-IC on/off, per-adornment weakening, per-pred linearization,
#: one fusion pass) but the cross product is still capped outright.
MAX_CANDIDATES = 32

#: Cost estimate used for predicates the model knows nothing about
#: (no rows, no dataflow bound).
_UNKNOWN_ESTIMATE = 1000.0


# ---------------------------------------------------------------------------
# per-rule kernel choice
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class KernelChoice:
    """Batch-vs-row decision for one rule, with its rationale."""

    mode: str  # "batch" | "row"
    width: float
    reason: str

    @property
    def use_batch(self) -> bool:
        return self.mode == "batch"


def predicted_frontier_width(rule: Rule, program: Program, edb: Database,
                             idb: Database | None = None,
                             dataflow: "DataflowResult | None" = None,
                             ) -> float:
    """Predicted average delta-frontier width for ``rule``'s firings.

    The batch kernel processes one whole delta frontier per firing; its
    setup cost amortizes over the frontier width.  Cold, the dataflow
    size bound of the head predicate prices the frontier
    (:meth:`DataflowResult.frontier_estimate`); warm, the largest
    already-materialized body relation stands in — both feed the same
    square-root heuristic (a fixpoint deriving ``n`` facts over ``~sqrt
    n`` rounds averages ``sqrt n`` rows per delta).
    """
    if dataflow is not None:
        estimate = dataflow.frontier_estimate(rule.head.pred)
        if estimate != INF:
            return estimate
    largest = 0
    for lit in rule.body:
        if not isinstance(lit, Atom):
            continue
        if lit.pred in program.idb_predicates:
            if idb is not None and lit.pred in idb:
                largest = max(largest, len(idb.relation(lit.pred)))
        else:
            largest = max(largest,
                          len(edb.relation_or_empty(lit.pred, lit.arity)))
    if idb is not None and rule.head.pred in idb:
        largest = max(largest, len(idb.relation(rule.head.pred)))
    return max(1.0, math.sqrt(largest)) if largest else 1.0


def kernel_chooser(program: Program, edb: Database,
                   idb: Database | None = None,
                   dataflow: "DataflowResult | None" = None,
                   ) -> Callable[["CompiledKernel"], KernelChoice]:
    """Build the per-kernel batch-vs-row chooser for ``planner="cbo"``.

    The returned callable is consulted once per kernel *identity*
    (:meth:`VectorRunner.batch_for` caches the verdict), so an
    adaptive-drift replan — which compiles a fresh kernel — re-enters
    the choice against the statistics that triggered it.  Both verdicts
    derive identical rows and counters (the row path is exactly the
    batch lowering's per-rule fallback), so the choice is admissible
    under the bit-identical fuzz pinning.
    """

    def choose(kernel: "CompiledKernel") -> KernelChoice:
        width = predicted_frontier_width(kernel.rule, program, edb,
                                         idb=idb, dataflow=dataflow)
        if width >= MIN_BATCH_WIDTH:
            shown = "inf" if width == INF else f"{width:.0f}"
            return KernelChoice(
                "batch", width,
                f"predicted frontier width ~{shown} >= "
                f"{MIN_BATCH_WIDTH:.0f}: batch setup amortizes")
        return KernelChoice(
            "row", width,
            f"predicted frontier width ~{width:.0f} < "
            f"{MIN_BATCH_WIDTH:.0f}: per-firing batch setup would "
            "dominate; row-at-a-time kernel chosen")

    return choose


# ---------------------------------------------------------------------------
# the memo
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PlanCandidate:
    """One enumerated rewrite of the input program."""

    program: Program
    transforms: tuple[str, ...]
    magic: MagicProgram | None = None

    @property
    def label(self) -> str:
        return " + ".join(self.transforms) if self.transforms \
            else "identity"


@dataclass
class MemoGroup:
    """All transform paths that produced one (fingerprint-equal) program.

    ``derivations`` records every path; the candidate itself — and its
    cost — is shared, which is the group-level deduplication that keeps
    the enumeration linear in *distinct* programs rather than in
    transform paths.
    """

    fingerprint: str
    candidate: PlanCandidate
    derivations: list[tuple[str, ...]]
    cost: float = INF
    detail: str = ""


def _program_fingerprint(candidate: PlanCandidate) -> str:
    text = "\n".join(sorted(str(rule) for rule in candidate.program))
    if candidate.magic is not None:
        text += f"\n% answers: {candidate.magic.query_pred}"
    return hashlib.sha256(text.encode()).hexdigest()[:16]


class Memo:
    """Fingerprint-keyed group store for enumerated candidates."""

    def __init__(self) -> None:
        self._groups: dict[str, MemoGroup] = {}
        self._order: list[MemoGroup] = []

    def add(self, candidate: PlanCandidate) -> MemoGroup:
        fingerprint = _program_fingerprint(candidate)
        group = self._groups.get(fingerprint)
        if group is None:
            group = MemoGroup(fingerprint, candidate,
                              [candidate.transforms])
            self._groups[fingerprint] = group
            self._order.append(group)
        else:
            group.derivations.append(candidate.transforms)
        return group

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[MemoGroup]:
        return iter(self._order)

    @property
    def paths(self) -> int:
        """Total transform paths enumerated (>= number of groups)."""
        return sum(len(group.derivations) for group in self._order)


# ---------------------------------------------------------------------------
# rewrite enumeration
# ---------------------------------------------------------------------------

def _ic_subsets(ics: Sequence) -> list[tuple[tuple, str]]:
    """Per-IC on/off choices, bounded.

    Up to three ICs the full power set (minus the empty set — that is
    the identity candidate); beyond that, all-on plus each singleton.
    """
    labels = [getattr(ic, "label", None) or f"ic{index}"
              for index, ic in enumerate(ics)]
    out: list[tuple[tuple, str]] = []
    if len(ics) <= 3:
        for mask in range(1, 1 << len(ics)):
            subset = tuple(ic for bit, ic in enumerate(ics)
                           if mask & (1 << bit))
            chosen = "+".join(label for bit, label in enumerate(labels)
                              if mask & (1 << bit))
            out.append((subset, f"residues[{chosen}]"))
    else:
        out.append((tuple(ics), "residues[all]"))
        for ic, label in zip(ics, labels):
            out.append(((ic,), f"residues[{label}]"))
    return out


def _residue_variant(program: Program, ics: Sequence) -> Program | None:
    """Push the residues of ``ics`` into ``program``; None on no-op."""
    from ..core.optimizer import SemanticOptimizer
    try:
        report = SemanticOptimizer(program, list(ics)).optimize()
    except ReproError:
        return None
    if not report.changed or report.optimized == program:
        return None
    return report.optimized


def _linearizations(program: Program) -> list[tuple[Program, str]]:
    """Left/right linearization variants of transitive-closure shapes.

    Applicable exactly when a predicate ``p`` is defined by one exit
    rule ``p(X, Y) :- e(X, Y)`` and one linear recursive rule
    ``p(X, Z) :- p(X, Y), e(Y, Z)`` (or its right-linear mirror) over
    the *same* base predicate ``e`` — the classical case where both
    orientations compute ``e+`` and swapping is answer-preserving.
    """
    out: list[tuple[Program, str]] = []
    for pred in sorted(program.idb_predicates):
        rules = program.rules_for(pred)
        if len(rules) != 2:
            continue
        exit_rules = [r for r in rules if pred not in r.body_predicates()]
        recursive = [r for r in rules if pred in r.body_predicates()]
        if len(exit_rules) != 1 or len(recursive) != 1:
            continue
        base, rec = exit_rules[0], recursive[0]
        swapped = _swap_linear(pred, base, rec)
        if swapped is None:
            continue
        new_rule, direction = swapped
        rewritten = [new_rule if r is rec else r for r in program]
        out.append((Program(rewritten,
                            edb_hint=tuple(program.edb_predicates)),
                    f"linearize[{pred}:{direction}]"))
    return out


def _swap_linear(pred: str, base: Rule,
                 rec: Rule) -> tuple[Rule, str] | None:
    """Build the mirrored recursive rule, or None when the shape
    does not match the safe transitive-closure pattern."""
    if len(base.body) != 1 or len(rec.body) != 2:
        return None
    seed = base.body[0]
    if not isinstance(seed, Atom) or seed.pred == pred:
        return None
    if base.head.args != seed.args or len(base.head.args) != 2:
        return None
    if not all(isinstance(arg, Variable) for arg in base.head.args):
        return None
    first, second = rec.body
    if not (isinstance(first, Atom) and isinstance(second, Atom)):
        return None
    head = rec.head
    if len(head.args) != 2 or not all(isinstance(a, Variable)
                                      for a in head.args):
        return None
    x, z = head.args
    if first.pred == pred and second.pred == seed.pred:
        # left-linear p(X,Z) :- p(X,Y), e(Y,Z)  ->  right-linear
        if first.args[0] != x or second.args[1] != z \
                or first.args[1] != second.args[0]:
            return None
        y = first.args[1]
        if len({x, y, z}) != 3:
            return None
        mirrored = Rule(head, (Atom(seed.pred, (x, y)),
                               Atom(pred, (y, z))),
                        label=rec.label, span=rec.span)
        return mirrored, "right"
    if first.pred == seed.pred and second.pred == pred:
        # right-linear p(X,Z) :- e(X,Y), p(Y,Z)  ->  left-linear
        if first.args[0] != x or second.args[1] != z \
                or first.args[1] != second.args[0]:
            return None
        y = first.args[1]
        if len({x, y, z}) != 3:
            return None
        mirrored = Rule(head, (Atom(pred, (x, y)),
                               Atom(seed.pred, (y, z))),
                        label=rec.label, span=rec.span)
        return mirrored, "left"
    return None


def _fusion_variant(program: Program,
                    keep: str | None) -> Program | None:
    """Unfold single-definition, EDB-only auxiliaries into consumers.

    Classical rule fusion (Tamaki-Sato unfold, the same transformation
    :mod:`repro.core.collapse` applies to isolation chains): an IDB
    predicate with exactly one defining rule whose body is EDB-only is
    resolved away, trading one materialized intermediate for a wider
    join the planner can order freely.  ``keep`` (the query predicate)
    is never fused away.
    """
    from ..core.collapse import inline_auxiliaries

    fusible = set()
    for pred in program.idb_predicates:
        if pred == keep:
            continue
        rules = program.rules_for(pred)
        if len(rules) != 1 or rules[0].is_fact:
            continue
        if any(isinstance(lit, Negation) for lit in rules[0].body):
            continue
        if all(program.is_edb(lit.pred) for lit in rules[0].body
               if isinstance(lit, Atom)):
            fusible.add(pred)
    if not fusible:
        return None
    fused = inline_auxiliaries(program, fusible)
    if fused == program:
        return None
    return fused


def _adornment_choices(query: Atom) -> list[str]:
    """Weakenings of the query's natural adornment (all-free excluded).

    Each constant position may stay bound or be weakened to free —
    weakening trades a tighter magic filter for fewer adorned variants
    (and a broader, more reusable magic seed).  All-free is the
    "no magic" candidate, enumerated separately.
    """
    natural = adornment_of(query)
    bound_positions = [i for i, a in enumerate(natural) if a == "b"]
    choices: list[str] = []
    for mask in range(1, 1 << len(bound_positions)):
        pattern = list("f" * len(natural))
        for bit, position in enumerate(bound_positions):
            if mask & (1 << bit):
                pattern[position] = "b"
        choices.append("".join(pattern))
    choices.sort(key=lambda p: (-p.count("b"), p))
    return choices[:8]


def enumerate_candidates(program: Program, query: Atom | None = None,
                         ics: Sequence = (),
                         budget: Budget | None = None,
                         max_candidates: int = MAX_CANDIDATES) -> Memo:
    """Generate the bounded rewrite space of ``program`` into a memo.

    Without a query (and without ICs) the space degenerates to the
    identity program: every other rewrite preserves the query answer —
    or relies on IC-consistency — rather than the full IDB trace, and
    whole-program evaluation is pinned bit-identical to the adaptive
    planner (see module docstring).
    """
    budget = resolve_budget(budget)
    memo = Memo()
    base: list[PlanCandidate] = [PlanCandidate(program, ())]

    # Residue pushing on/off per IC (Algorithm 3.1 + Section 4 pushes).
    for subset, label in _ic_subsets(tuple(ics)):
        if budget is not None:
            budget.check_round(last_round=None)
        pushed = _residue_variant(program, subset)
        if pushed is not None:
            base.append(PlanCandidate(pushed, (label,)))

    if query is not None:
        # Left/right linearization of transitive-closure shapes.
        for candidate in list(base):
            for variant, label in _linearizations(candidate.program):
                base.append(PlanCandidate(
                    variant, candidate.transforms + (label,)))
        # Rule fusion (unfold EDB-only single-definition auxiliaries).
        for candidate in list(base):
            fused = _fusion_variant(candidate.program, query.pred)
            if fused is not None:
                base.append(PlanCandidate(
                    fused, candidate.transforms + ("fuse",)))

    out = list(base)
    if query is not None and query.pred in program.idb_predicates:
        # Magic sets, one candidate per adornment weakening.
        for candidate in base:
            for adornment in _adornment_choices(query):
                if budget is not None:
                    budget.check_round(last_round=None)
                try:
                    rewritten = magic_rewrite(candidate.program, query,
                                              budget=budget,
                                              adornment=adornment)
                except TransformError:
                    continue
                out.append(PlanCandidate(
                    rewritten.program,
                    candidate.transforms + (f"magic[{adornment}]",),
                    magic=rewritten))

    for candidate in out[:max_candidates]:
        memo.add(candidate)
    return memo


# ---------------------------------------------------------------------------
# the cost model
# ---------------------------------------------------------------------------

def _decode_adorned(pred: str) -> tuple[str, str, bool] | None:
    """Split an adorned/magic predicate name into (base, pattern, is_magic)."""
    name, magic = (pred[2:], True) if pred.startswith("m_") else (pred,
                                                                  False)
    base, sep, pattern = name.rpartition("__")
    if not sep or not pattern or any(c not in "bf" for c in pattern):
        return None
    return base, pattern, magic


class _Estimator:
    """Unified cold/warm cardinality estimates for one candidate.

    Warm: relations that already hold rows answer through their index
    statistics (:meth:`Relation.probe_estimate`).  Cold: the dataflow
    size bounds answer for everything else, with adorned predicates of
    magic candidates priced by the analysis's *adorned* bounds — the
    quantity PR 9 computes precisely so an enumerating optimizer can
    see what a magic-restricted predicate will materialize.
    """

    def __init__(self, edb: Database,
                 dataflow: "DataflowResult | None") -> None:
        self.edb = edb
        self.dataflow = dataflow

    def _cold(self, pred: str,
              bound_cols: tuple[int, ...]) -> float | None:
        flow = self.dataflow
        if flow is None:
            return None
        if pred in flow.bounds or pred in flow.columns:
            return flow.probe_estimate(pred, bound_cols)
        decoded = _decode_adorned(pred)
        if decoded is None:
            return None
        base, pattern, is_magic = decoded
        total = flow.adorned_bounds.get((base, pattern))
        if total is None:
            total = flow.size_bound(base)
        if total == INF:
            return None
        if is_magic:
            # The magic predicate is the bound-column projection of the
            # adorned relation; cap by the distinct-count bounds.  Its
            # column ``i`` is the ``i``-th b-position of the pattern,
            # so probes with bound columns discount by the base
            # relation's distinct counts at those positions.
            b_positions = [column for column, a in enumerate(pattern)
                           if a == "b"]
            width = 1.0
            for column in b_positions:
                width = _saturating_mul(
                    width, flow.counts.get((base, column), total))
            estimate = max(0.0, min(total, width))
            for column in bound_cols:
                if column < len(b_positions):
                    distinct = flow.counts.get(
                        (base, b_positions[column]), total)
                    estimate /= max(1.0, min(distinct, total))
            return estimate
        estimate = total
        for column in bound_cols:
            if column < len(pattern):
                distinct = flow.counts.get((base, column), total)
                estimate /= max(1.0, min(distinct, total))
        return estimate

    def __call__(self, pred: str, arity: int,
                 bound_cols: tuple[int, ...]) -> float:
        relation = self.edb.relation_or_empty(pred, arity)
        if len(relation):
            return relation.probe_estimate(bound_cols)
        cold = self._cold(pred, bound_cols)
        if cold is not None:
            return cold
        return _UNKNOWN_ESTIMATE / (1.0 + len(bound_cols))


def _saturating_mul(a: float, b: float) -> float:
    return INF if a == INF or b == INF else a * b


def _rule_cost(rule: Rule, estimator: _Estimator) -> float:
    """Estimated join work of one rule over the whole fixpoint.

    Semi-naive evaluation pushes every derived tuple through each rule
    body about once, so a single pass priced at full relation sizes
    approximates the total: walk the planner's join order, charging one
    probe per intermediate row plus the rows each probe returns.
    """

    def sizes(atom: Atom, index: int) -> int:
        estimate = estimator(atom.pred, atom.arity, ())
        return int(min(estimate, 10.0 ** 9))

    def cost(atom: Atom, index: int,
             bound_cols: tuple[int, ...]) -> float:
        return estimator(atom.pred, atom.arity, bound_cols)

    order = plan_body(rule, sizes, cost=cost)
    bound: set[Variable] = set()
    frontier = 1.0
    work = 0.0
    for position in order:
        literal = rule.body[position]
        if isinstance(literal, Comparison):
            work += frontier * 0.1
            continue
        if isinstance(literal, Negation):
            work += frontier
            continue
        atom = literal
        bound_cols = tuple(
            column for column, arg in enumerate(atom.args)
            if isinstance(arg, Constant)
            or (isinstance(arg, Variable) and arg in bound))
        step = estimator(atom.pred, atom.arity, bound_cols)
        work += frontier * (1.0 + step)
        frontier = _saturating_mul(frontier, max(step, 0.01))
        bound.update(arg for arg in atom.args
                     if isinstance(arg, Variable))
        if work == INF:
            return INF
    return work


def estimate_program_cost(candidate: PlanCandidate, edb: Database,
                          dataflow: "DataflowResult | None" = None,
                          ) -> tuple[float, str]:
    """Whole-program cost of one candidate, with a one-line breakdown."""
    estimator = _Estimator(edb, dataflow)
    total = 0.0
    heaviest, heaviest_cost = "", 0.0
    for rule in candidate.program:
        if rule.is_fact:
            continue
        rule_cost = _rule_cost(rule, estimator)
        total += rule_cost
        if rule_cost >= heaviest_cost:
            heaviest_cost = rule_cost
            heaviest = rule.label or str(rule.head)
    detail = (f"{len(candidate.program)} rules; heaviest "
              f"{heaviest} ~{heaviest_cost:.0f}") if heaviest else \
        f"{len(candidate.program)} rules"
    return total, detail


# ---------------------------------------------------------------------------
# plan choice
# ---------------------------------------------------------------------------

@dataclass
class ChosenPlan:
    """The optimizer's decision: cheapest candidate plus provenance."""

    program: Program
    transforms: tuple[str, ...]
    cost: float
    fingerprint: str
    magic: MagicProgram | None = field(default=None, repr=False)
    groups: int = 1
    paths: int = 1
    enumeration_seconds: float = 0.0
    table: list[tuple[str, str, float]] = field(default_factory=list,
                                                repr=False)

    @property
    def label(self) -> str:
        return " + ".join(self.transforms) if self.transforms \
            else "identity"

    def describe(self) -> str:
        """Explain-style rendering of the enumeration and the choice."""
        lines = [f"cost-based optimizer: {self.groups} candidate "
                 f"group(s) from {self.paths} transform path(s) in "
                 f"{self.enumeration_seconds * 1000.0:.1f} ms"]
        for fingerprint, label, cost in self.table:
            marker = "*" if fingerprint == self.fingerprint else " "
            shown = "inf" if cost == INF else f"{cost:.0f}"
            lines.append(f"  {marker} {label}: cost ~{shown} "
                         f"[{fingerprint}]")
        lines.append(f"chosen: {self.label} (cost ~"
                     + ("inf" if self.cost == INF
                        else f"{self.cost:.0f}") + ")")
        return "\n".join(lines)


def choose_plan(program: Program, edb: Database,
                query: Atom | None = None, ics: Sequence = (),
                budget: Budget | None = None,
                dataflow: "DataflowResult | None" = None,
                max_candidates: int = MAX_CANDIDATES) -> ChosenPlan:
    """Enumerate the rewrite space and pick the cheapest candidate.

    Ties break toward fewer transforms, then enumeration order, so the
    identity program wins any dead heat and the choice is deterministic.
    """
    start = perf_counter()
    budget = resolve_budget(budget)
    if dataflow is None:
        from ..analysis.dataflow import analyze_dataflow
        try:
            dataflow = analyze_dataflow(program, edb=edb, query=query)
        except ReproError:
            dataflow = None
    memo = enumerate_candidates(program, query=query, ics=ics,
                                budget=budget,
                                max_candidates=max_candidates)
    best: MemoGroup | None = None
    best_key: tuple[float, int, int] | None = None
    table: list[tuple[str, str, float]] = []
    for index, group in enumerate(memo):
        group.cost, group.detail = estimate_program_cost(
            group.candidate, edb, dataflow)
        table.append((group.fingerprint, group.candidate.label,
                      group.cost))
        key = (group.cost, len(group.candidate.transforms), index)
        if best_key is None or key < best_key:
            best, best_key = group, key
    assert best is not None  # the identity candidate is always present
    elapsed = perf_counter() - start
    return ChosenPlan(program=best.candidate.program,
                      transforms=best.candidate.transforms,
                      cost=best.cost, fingerprint=best.fingerprint,
                      magic=best.candidate.magic, groups=len(memo),
                      paths=memo.paths, enumeration_seconds=elapsed,
                      table=table)


# ---------------------------------------------------------------------------
# query-bearing evaluation entry points
# ---------------------------------------------------------------------------

def cbo_evaluate(program: Program, edb: Database,
                 query: Atom | None = None, ics: Sequence = (),
                 budget: Budget | None = None,
                 executor: str = "compiled", interning: str = "off",
                 shards: int | None = None, parallel_mode: str = "auto",
                 choice: ChosenPlan | None = None,
                 ) -> "EvaluationResult":
    """Evaluate ``program`` under the plan the enumerating optimizer picks.

    The whole rewrite space engages here (magic, residues, linearization,
    fusion — see :func:`enumerate_candidates`); the chosen candidate then
    runs with the adaptive runtime machinery.  The result's ``choice``
    attribute carries the :class:`ChosenPlan`; when magic was chosen the
    result's ``magic`` field is set and answers should be read through
    :func:`cbo_answers` (or ``choice.magic.answers``).  ``budget``
    covers enumeration *and* evaluation.
    """
    from ..facts.symbols import validate_interning
    from .compile import validate_executor
    from .engine import EvaluationResult
    from .seminaive import seminaive_evaluate
    from .vectorize import columnar_backend_factory

    validate_executor(executor)
    validate_interning(interning)
    budget = resolve_budget(budget)
    if interning == "on":
        edb = edb.interned(backend_factory=columnar_backend_factory
                           if executor == "vectorized" else None)
    if choice is None:
        choice = choose_plan(program, edb, query=query, ics=ics,
                             budget=budget)
    stats = EvalStats()
    start = perf_counter()
    idb = seminaive_evaluate(choice.program, edb, stats, budget=budget,
                             planner="cbo", executor=executor,
                             shards=shards, parallel_mode=parallel_mode)
    elapsed = perf_counter() - start
    return EvaluationResult(choice.program, edb, idb, stats, elapsed,
                            method="seminaive+cbo", magic=choice.magic,
                            executor=executor, choice=choice)


def cbo_answers(program: Program, edb: Database, query: Atom,
                ics: Sequence = (), budget: Budget | None = None,
                executor: str = "compiled", interning: str = "off",
                shards: int | None = None, parallel_mode: str = "auto",
                choice: ChosenPlan | None = None) -> frozenset[tuple]:
    """Answers to ``query`` under the optimizer's chosen plan.

    Full tuples of the query predicate, filtered on the query's
    constant positions — the same contract as
    :func:`repro.engine.magic_answers` regardless of whether the chosen
    candidate was a magic rewrite.
    """
    result = cbo_evaluate(program, edb, query=query, ics=ics,
                          budget=budget, executor=executor,
                          interning=interning, shards=shards,
                          parallel_mode=parallel_mode, choice=choice)
    if result.magic is not None:
        rows: Iterable[tuple] = result.magic.answers(result.idb)
    elif query.pred in result.program.idb_predicates:
        rows = result.facts(query.pred)
    else:
        rows = edb.facts(query.pred)
    wanted = []
    for row in rows:
        binding: dict[Variable, object] = {}
        keep = True
        for value, arg in zip(row, query.args):
            if isinstance(arg, Constant):
                if arg.value != value:
                    keep = False
                    break
            elif isinstance(arg, Variable):
                if binding.setdefault(arg, value) != value:
                    keep = False
                    break
        if keep:
            wanted.append(row)
    return frozenset(wanted)
