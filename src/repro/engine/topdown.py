"""Tabled top-down evaluation (SLD resolution with memoization).

The paper's Section 1 frames two paradigms for recursive query
processing — evaluation (semi-naive) and rewriting (magic sets) — and its
optimization targets the *proof trees* a program generates.  Top-down
evaluation materializes exactly those proof trees on demand, which makes
it the setting where subtree pruning pays directly: a pushed guard stops
the expansion of a doomed subtree before its subgoals are ever called
(experiment E9).

The engine is a classic tabling scheme:

- a *table* per subgoal call pattern ``(pred, bound-argument tuple)``
  caches the answers produced so far;
- recursive calls that hit an in-progress table consume its current
  answers and are resumed when new answers arrive (semi-naive style
  fixpoint over the call graph, implemented as an outer iteration);
- comparisons evaluate as soon as their variables are bound, and ``=``
  may bind, exactly as in the bottom-up engine.

Supported: positive programs with evaluable atoms (the class the paper
optimizes).  Negation is not supported top-down; use the bottom-up
engine for stratified programs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

from ..datalog.atoms import Atom, Comparison, Negation
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Constant, ConstValue, Variable
from ..errors import BudgetExceededError, EvaluationError
from ..facts.database import Database
from ..facts.relation import Relation, Row
from ..runtime import chaos
from ..runtime.budget import Budget, resolve_budget
from . import builtins
from .bindings import EvalStats

#: A call pattern: which argument positions are bound, and to what.
CallKey = tuple[str, tuple[tuple[int, ConstValue], ...]]


@dataclass
class _Table:
    """Answers accumulated for one call pattern."""

    answers: set[Row] = field(default_factory=set)
    complete: bool = False


@dataclass
class TopDownResult:
    """Result of a top-down query."""

    answers: frozenset[Row]
    stats: EvalStats
    elapsed_seconds: float
    tables: int

    def project(self, query: Atom) -> frozenset[tuple]:
        """Rows filtered to the query's constant positions."""
        keep = []
        for row in self.answers:
            ok = True
            binding: dict[Variable, ConstValue] = {}
            for value, arg in zip(row, query.args):
                if isinstance(arg, Constant):
                    if arg.value != value:
                        ok = False
                        break
                elif isinstance(arg, Variable):
                    if binding.setdefault(arg, value) != value:
                        ok = False
                        break
            if ok:
                keep.append(row)
        return frozenset(keep)


class TabledEvaluator:
    """Tabled SLD evaluation of one program over one database."""

    def __init__(self, program: Program, edb: Database,
                 max_rounds: int = 100_000,
                 budget: Budget | None = None) -> None:
        for rule in program:
            if any(isinstance(lit, Negation) for lit in rule.body):
                raise EvaluationError(
                    "the top-down engine does not support negation")
        self.program = program
        self.edb = edb
        self.max_rounds = max_rounds
        self.budget = resolve_budget(budget)
        self._chaos = chaos.active_plan()
        self._round = 0
        self.stats = EvalStats()
        self._tables: dict[CallKey, _Table] = {}
        self._changed = False

    # -- public API ---------------------------------------------------------
    def query(self, goal: Atom) -> TopDownResult:
        """Answer a single-atom query."""
        start = time.perf_counter()
        key = self._call_key(goal)
        rounds = 0
        while True:
            rounds += 1
            self._round = rounds
            self.stats.iterations += 1
            if rounds > self.max_rounds:
                raise BudgetExceededError(
                    f"top-down evaluation exceeded {self.max_rounds} "
                    "rounds", resource="rounds", limit=self.max_rounds,
                    spent=rounds - 1, stats=self.stats,
                    last_round=rounds - 1)
            if self.budget is not None:
                self.budget.check_round(self.stats, last_round=rounds - 1)
            self._changed = False
            self._in_progress: set[CallKey] = set()
            self._solve_call(goal, key)
            if not self._changed:
                break
        table = self._tables[key]
        table.complete = True
        elapsed = time.perf_counter() - start
        return TopDownResult(frozenset(table.answers), self.stats,
                             elapsed, len(self._tables))

    # -- internals -------------------------------------------------------------
    @staticmethod
    def _call_key(goal: Atom) -> CallKey:
        bound = tuple((index, arg.value)
                      for index, arg in enumerate(goal.args)
                      if isinstance(arg, Constant))
        return (goal.pred, bound)

    def _solve_call(self, goal: Atom, key: CallKey) -> _Table:
        table = self._tables.get(key)
        if table is None:
            table = _Table()
            self._tables[key] = table
        if key in self._in_progress or table.complete:
            return table
        self._in_progress.add(key)
        for rule in self.program.rules_for(goal.pred):
            self._expand(rule, goal, table)
        return table

    def _expand(self, rule: Rule, goal: Atom, table: _Table) -> None:
        """Resolve ``goal`` against one rule and collect head answers."""
        self.stats.rules_fired += 1
        # Bind head variables from the goal's constants.  Rectified
        # heads make this a plain assignment; repeated variables and
        # head constants are checked.
        binding: dict[Variable, ConstValue] = {}
        for head_arg, goal_arg in zip(rule.head.args, goal.args):
            if not isinstance(goal_arg, Constant):
                continue
            if isinstance(head_arg, Constant):
                if head_arg.value != goal_arg.value:
                    return
            elif isinstance(head_arg, Variable):
                known = binding.setdefault(head_arg, goal_arg.value)
                if known != goal_arg.value:
                    return
        for solution in self._solve_body(rule, list(rule.body), binding):
            row = []
            for head_arg in rule.head.args:
                if isinstance(head_arg, Constant):
                    row.append(head_arg.value)
                else:
                    try:
                        row.append(solution[head_arg])
                    except KeyError:
                        raise EvaluationError(
                            f"rule {rule.label or rule} is not range "
                            "restricted") from None
            materialized = tuple(row)
            if self._chaos is not None:
                self._chaos.derivation()
            if materialized not in table.answers:
                table.answers.add(materialized)
                self.stats.derivations += 1
                self._changed = True
            else:
                self.stats.duplicate_derivations += 1
            if self.budget is not None:
                self.budget.tick(self.stats,
                                 last_round=max(self._round - 1, 0))

    def _solve_body(self, rule: Rule, body: list,
                    binding: dict[Variable, ConstValue]
                    ) -> Iterator[dict[Variable, ConstValue]]:
        """Left-to-right SLD over the body with eager comparisons."""
        if not body:
            yield binding
            return
        # Run any decidable comparison first (selection pushdown).
        for index, literal in enumerate(body):
            if isinstance(literal, Comparison):
                bound_vars = set(binding)
                if builtins.can_check(literal, bound_vars) or \
                        builtins.can_bind(literal, bound_vars):
                    self.stats.comparisons_checked += 1
                    extended = builtins.solve(literal, binding)
                    if extended is None:
                        return
                    rest = body[:index] + body[index + 1:]
                    yield from self._solve_body(rule, rest, extended)
                    return
        # Otherwise take the first database atom.
        for index, literal in enumerate(body):
            if isinstance(literal, Atom):
                rest = body[:index] + body[index + 1:]
                for extended in self._solve_atom(literal, binding):
                    yield from self._solve_body(rule, rest, extended)
                return
        # Only undecidable comparisons remain: the rule is unsafe.
        stuck = ", ".join(str(lit) for lit in body)
        raise EvaluationError(
            f"unsafe rule {rule.label or rule}: cannot evaluate {stuck}")

    def _solve_atom(self, atom: Atom,
                    binding: dict[Variable, ConstValue]
                    ) -> Iterator[dict[Variable, ConstValue]]:
        grounded = self._ground(atom, binding)
        if atom.pred in self.program.idb_predicates:
            key = self._call_key(grounded)
            table = self._solve_call(grounded, key)
            rows: Iterator[Row] = iter(sorted(table.answers))
            self.stats.atom_lookups += 1
            for row in rows:
                extended = self._match_row(atom, row, binding)
                if extended is not None:
                    self.stats.rows_matched += 1
                    yield extended
            return
        relation: Relation = self.edb.relation_or_empty(
            atom.pred, atom.arity)
        pattern = tuple(
            (index, arg.value)
            for index, arg in enumerate(grounded.args)
            if isinstance(arg, Constant))
        self.stats.atom_lookups += 1
        for row in relation.lookup(pattern):
            extended = self._match_row(atom, row, binding)
            if extended is not None:
                self.stats.rows_matched += 1
                yield extended

    def _ground(self, atom: Atom,
                binding: dict[Variable, ConstValue]) -> Atom:
        args = []
        for arg in atom.args:
            if isinstance(arg, Variable) and arg in binding:
                args.append(Constant(binding[arg]))
            else:
                args.append(arg)
        return Atom(atom.pred, tuple(args))

    @staticmethod
    def _match_row(atom: Atom, row: Row,
                   binding: dict[Variable, ConstValue]
                   ) -> dict[Variable, ConstValue] | None:
        extended = None
        current = binding
        for arg, value in zip(atom.args, row):
            if isinstance(arg, Constant):
                if arg.value != value:
                    return None
            else:
                known = current.get(arg, _MISSING)
                if known is _MISSING:
                    if extended is None:
                        extended = dict(binding)
                        current = extended
                    extended[arg] = value
                elif known != value:
                    return None
        return extended if extended is not None else dict(binding)


_MISSING = object()


def topdown_query(program: Program, edb: Database, goal: Atom,
                  budget: Budget | None = None) -> TopDownResult:
    """One-call tabled top-down evaluation of ``goal``."""
    return TabledEvaluator(program, edb, budget=budget).query(goal)
