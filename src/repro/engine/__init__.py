"""Bottom-up evaluation: naive, semi-naive, stratification, magic sets."""

from .bindings import EvalStats, PLANNERS, validate_planner
from .builtins import holds
from .compile import (EXECUTORS, CompiledKernel, KernelCache,
                      compile_rule)
from .stats import RelationStats
from .parallel import (DEFAULT_SHARDS, PARALLEL_MODES, ShardExecutor,
                       choose_partition_key, validate_parallel_mode)
from .profile import EvalProfile
from .vectorize import (BatchKernel, PredicateCache, VectorRunner,
                        columnar_backend_factory, compile_batch)
from .engine import (EvaluationResult, consistent_answers, evaluate,
                     evaluate_with_magic, magic_answers, query_answers)
from .magic import MagicProgram, adornment_of, magic_rewrite
from .naive import naive_evaluate
from .optimizer import (ChosenPlan, KernelChoice, Memo, cbo_answers,
                        cbo_evaluate, choose_plan, enumerate_candidates,
                        kernel_chooser, predicted_frontier_width)
from .seminaive import seminaive_evaluate
from .stratify import stratify
from .topdown import TabledEvaluator, TopDownResult, topdown_query
from .explain import Derivation, Explainer, explain, explain_answer
from .plan import PlanStep, RulePlan, explain_kernels, explain_plan, \
    plan_rule

__all__ = [
    "EvalStats", "PLANNERS", "validate_planner", "holds",
    "EXECUTORS", "CompiledKernel", "KernelCache", "compile_rule",
    "RelationStats",
    "DEFAULT_SHARDS", "PARALLEL_MODES", "ShardExecutor",
    "choose_partition_key", "validate_parallel_mode",
    "EvalProfile",
    "BatchKernel", "PredicateCache", "VectorRunner",
    "columnar_backend_factory", "compile_batch",
    "EvaluationResult", "consistent_answers", "evaluate",
    "evaluate_with_magic", "magic_answers", "query_answers",
    "MagicProgram", "adornment_of", "magic_rewrite",
    "ChosenPlan", "KernelChoice", "Memo", "cbo_answers",
    "cbo_evaluate", "choose_plan", "enumerate_candidates",
    "kernel_chooser", "predicted_frontier_width",
    "naive_evaluate", "seminaive_evaluate", "stratify",
    "TabledEvaluator", "TopDownResult", "topdown_query",
    "Derivation", "Explainer", "explain", "explain_answer",
    "PlanStep", "RulePlan", "explain_kernels", "explain_plan",
    "plan_rule",
]
