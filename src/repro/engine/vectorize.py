"""Batch-vectorized rule kernels: whole-frontier execution per firing.

The compiled executor (:mod:`repro.engine.compile`) already fuses
pure-positive bodies into generated comprehensions, but every firing
still resolves probe targets through per-probe attribute lookups, wraps
every single-column key in a fresh 1-tuple, and runs comparisons,
negations and fully-bound membership tests through per-row closure
calls.  This module lowers a kernel's **symbolic batch plan**
(``CompiledKernel.batch_plan``) one step further, into a single
generated function that processes the whole delta frontier per firing:

- the first join level iterates its source *without* copying it;
- probes go through :meth:`Relation.code_index_for` — single-column
  indexes keyed by the **bare** interned code, so the hot loop never
  allocates a key tuple — with the bucket getter hoisted out of the
  loop once per firing;
- when the innermost join level feeds exactly one of its columns into
  the head, the probe is replaced by a
  :meth:`Relation.projection_index` lookup and the level emits
  projected codes directly, never touching a row tuple;
- comparisons against a constant are evaluated **per column, not per
  row**: a :class:`PredicateCache` memoizes, per
  ``(relation, version, predicate)``, the set of column codes passing
  the check, so each distinct code is compared once per relation
  version and the per-row work is one set-membership test.  The cache's
  invalidation rule is exactly the backend's version counter: any
  content change bumps it and orphans the entry;
- negations and fully-bound atoms become column/set membership filters
  inside the same comprehension cascade.

Statistics parity is exact: the generated function returns, alongside
the derived head rows, closed-form counter sums (lookups per level
entry, rows per level output, comparison/negation counts per entry)
that reproduce the closure chain's ``EvalStats`` accounting
bit-identically — the differential fuzz matrix pins the vectorized
executor to the compiled one on facts, counters, budget payloads and
chaos ordinals alike.

Anything the symbolic plan cannot express (arithmetic terms, empty
bodies, derivation hooks installed) falls back to
:meth:`CompiledKernel.execute` — same rows, same stats, just the
per-row path.
"""

from __future__ import annotations

import math
import types
from typing import (TYPE_CHECKING, Any, Callable, Mapping, Optional,
                    Sequence)

from ..datalog.rules import Rule
from ..errors import EvaluationError
from ..facts.relation import Relation, Row
from ..facts.symbols import SymbolTable
from . import builtins
from .bindings import EvalStats, Fetch
from .compile import CompiledKernel, Hook

if TYPE_CHECKING:
    from ..facts.backend import ColumnarBackend

__all__ = ["BatchKernel", "PredicateCache", "VectorRunner",
           "compile_batch", "columnar_backend_factory"]


def columnar_backend_factory(name: str, arity: int) -> ColumnarBackend:
    """``Database.backend_factory`` building columnar storage.

    Passed by the evaluation entry points when ``executor="vectorized"``
    runs over an interned database, so IDB and delta relations land in
    :class:`~repro.facts.backend.ColumnarBackend` stores (O(1)-copy
    snapshots, raw-array replica shipping).  Only valid for interned
    rows — codes are ints, which is what ``array('q')`` holds.
    """
    from ..facts.backend import ColumnarBackend

    return ColumnarBackend(arity)


class _Unvectorizable(Exception):
    """Internal: this plan cannot be expressed as a batch kernel."""


#: Generated source text -> compiled code object.  Batch kernels for
#: the same (plan shape, interned constants) recur across evaluations
#: — every benchmark repeat, every serving refresh — and ``compile`` is
#: the expensive half of instantiating one.
_CODE_CACHE: dict[str, types.CodeType] = {}


def _lit(value: object) -> str:
    """Embed a storage constant into generated code, or refuse.

    Only round-trippable literals are embedded; anything exotic (a
    non-finite float, an arbitrary object in raw mode) bails out of the
    batch lowering entirely rather than risk an unfaithful ``repr``.
    """
    if value is True or value is False or isinstance(value, (int, str)):
        return repr(value)
    if isinstance(value, float) and math.isfinite(value):
        return repr(value)
    raise _Unvectorizable()


class _CheckedColumn:
    """Predicate-cache container when some codes cannot be ordered.

    ``compare_values`` raises for mixed-type ordering comparisons; a
    cached column filter must preserve that, so codes whose comparison
    raised at build time re-raise on membership — the same error, at
    the same row, as the per-row executor.
    """

    __slots__ = ("passing", "raising", "op", "const", "slot_left", "values")

    def __init__(self, passing: frozenset[Any], raising: frozenset[Any],
                 op: str, const: object, slot_left: bool,
                 values: Sequence[Any] | None) -> None:
        self.passing = passing
        self.raising = raising
        self.op = op
        self.const = const
        self.slot_left = slot_left
        self.values = values

    def __contains__(self, code: Any) -> bool:
        if code in self.raising:
            value = self.values[code] if self.values is not None else code
            left, right = ((value, self.const) if self.slot_left
                           else (self.const, value))
            builtins.compare_values(self.op, left, right)
        return code in self.passing


class PredicateCache:
    """Memoized column-level predicate filters.

    ``passing(relation, column, op, const, slot_left)`` returns a
    membership container holding every code of ``relation``'s
    ``column`` that satisfies ``value <op> const`` (or ``const <op>
    value`` when ``slot_left`` is False).  Entries are keyed by the
    backend's ``(uid, ...)`` identity and stamped with its ``version``;
    **any mutation bumps the version and invalidates the entry** — the
    whole invalidation protocol.  Distinct codes are compared once per
    relation version instead of once per row per firing.
    """

    __slots__ = ("symbols", "entries", "builds")

    def __init__(self, symbols: SymbolTable | None = None) -> None:
        self.symbols = symbols
        self.entries: dict[tuple[Any, ...], tuple[int, object]] = {}
        #: Cache-miss rebuilds, for introspection/tests.
        self.builds = 0

    def passing(self, relation: Relation, column: int, op: str,
                const: object, slot_left: bool) -> object:
        backend = relation.backend
        key = (backend.uid, column, op, const, slot_left)
        version = backend.version
        entry = self.entries.get(key)
        if entry is not None and entry[0] == version:
            return entry[1]
        values = self.symbols.values if self.symbols is not None else None
        compare = builtins.compare_values
        passing: set[Any] = set()
        raising: set[Any] = set()
        for code in relation.code_index_for(column):
            value = values[code] if values is not None else code
            left, right = ((value, const) if slot_left
                           else (const, value))
            try:
                if compare(op, left, right):
                    passing.add(code)
            except EvaluationError:
                raising.add(code)
        container: object
        if raising:
            container = _CheckedColumn(frozenset(passing),
                                       frozenset(raising), op, const,
                                       slot_left, values)
        else:
            container = frozenset(passing)
        self.builds += 1
        self.entries[key] = (version, container)
        return container


class BatchKernel:
    """A compiled whole-frontier batch function plus its resolver specs.

    ``fn(*args) -> (head_rows, lookups, rows, cmps, negs)`` where
    ``args`` are the per-firing probe targets described by
    ``resolvers`` (see :meth:`VectorRunner.run`).  ``source`` keeps the
    generated code for introspection (``explain --kernels``).
    """

    __slots__ = ("fn", "resolvers", "source")

    def __init__(self, fn: Callable[..., tuple[list[Row], int, int,
                                               int, int]],
                 resolvers: tuple[Any, ...], source: str) -> None:
        self.fn = fn
        self.resolvers = resolvers
        self.source = source


def _eq_const_codes(plan: tuple[Any, ...],
                    symbols: SymbolTable | None) -> tuple[Any, ...]:
    """Interned codes of ``=``/``!=`` comparison constants.

    These are the only symbol-table lookups :func:`_generate` performs
    outside the plan itself (the plan already stores atom constants in
    the storage domain): equality against a *never-interned* constant
    lowers to a static ``False``/always-true, so the generated text
    depends on how each such constant resolves right now.  The tuple
    completes the structural cache key below.
    """
    if symbols is None:
        return ()
    codes: list[Any] = []
    for step in plan:
        if step[0] == "check" and step[1] in ("=", "!="):
            for sym in (step[2], step[3]):
                if sym[0] == "const":
                    codes.append(symbols.code(sym[1]))
    return tuple(codes)


#: ``(plan, head, interned, eq-codes)`` -> ``(source, specs)`` or the
#: ``_DECLINED`` sentinel.  The generated text is a pure function of
#: this key, so repeat evaluations (benchmark runs, serving refreshes)
#: skip the string assembly and go straight to the cached bytecode —
#: only the per-table ``exec`` instantiation remains.
_DECLINED = object()
_TEXT_CACHE: dict[tuple[Any, ...], object] = {}


def compile_batch(kernel: CompiledKernel,
                  true_checks: frozenset[int] = frozenset(),
                  ) -> BatchKernel | None:
    """Lower a kernel's symbolic batch plan, or None when it can't be.

    ``true_checks`` lists body indexes of comparisons the dataflow
    analysis proved always true for every reachable row; the generated
    code drops their per-row conditions (the accounting still counts
    them, so ``EvalStats`` stay bit-identical to the unskipped form).
    """
    if kernel.batch_plan is None or kernel.batch_head is None:
        return None
    symbols = kernel.symbols
    try:
        key = (kernel.batch_plan, kernel.batch_head, symbols is not None,
               _eq_const_codes(kernel.batch_plan, symbols),
               tuple(sorted(true_checks)))
    except TypeError:  # unhashable constant somewhere in the plan
        key = None
    if key is not None:
        cached = _TEXT_CACHE.get(key)
        if cached is _DECLINED:
            return None
        if isinstance(cached, tuple):
            source_text, specs = cached
            return _instantiate(
                source_text, specs,
                symbols.values if symbols is not None else None)
    try:
        batch = _generate(kernel, true_checks)
    except _Unvectorizable:
        if key is not None:
            _TEXT_CACHE[key] = _DECLINED
        return None
    if key is not None:
        _TEXT_CACHE[key] = (batch.source, batch.resolvers)
    return batch


def _generate(kernel: CompiledKernel,
              true_checks: frozenset[int] = frozenset()) -> BatchKernel:
    plan = kernel.batch_plan
    head = kernel.batch_head
    assert plan is not None and head is not None
    symbols = kernel.symbols
    interned = symbols is not None
    values = symbols.values if interned else None

    last_level = -1
    for pos, step in enumerate(plan):
        if step[0] != "bind":
            last_level = pos
    if last_level < 0:
        raise _Unvectorizable()
    deferred_binds = [step for pos, step in enumerate(plan)
                      if step[0] == "bind" and pos > last_level]

    specs: list[tuple[Any, ...]] = []
    spec_idx: dict[tuple[Any, ...], int] = {}

    def arg_of(spec: tuple[Any, ...]) -> int:
        found = spec_idx.get(spec)
        if found is None:
            found = len(specs)
            spec_idx[spec] = found
            specs.append(spec)
        return found

    reg_exprs: dict[int, str] = {}
    #: slot -> (source ordinal, column) at the slot's first atom write;
    #: the predicate cache can only filter slots with a column origin.
    origins: dict[int, tuple[int, int]] = {}
    regs: list[str] = []
    lines: list[str] = []
    lk: list[str] = []
    rm: list[str] = []
    cc: list[str] = []
    nc: list[str] = []
    state: dict[str, Any] = {"count": "1", "frontier": None, "levels": 0}

    def sym_storage(sym: tuple[str, Any]) -> str:
        kind, payload = sym
        if kind == "const":
            return _lit(payload)
        expr = reg_exprs.get(payload)
        if expr is None:
            raise _Unvectorizable()
        return expr

    def decode(expr: str) -> str:
        return f"V[{expr}]" if interned else expr

    def gens_prefix() -> str:
        frontier = state["frontier"]
        if frontier is None:
            return ""
        if frontier[0] == "virtual":
            return f"for {regs[0]} in {frontier[1]} "
        if not regs:
            pattern = "_"
        elif len(regs) == 1:
            pattern = regs[0]
        else:
            pattern = "(" + ", ".join(regs) + ",)"
        return f"for {pattern} in {frontier[1]} "

    def item_expr() -> str:
        if not regs:
            return "1"
        if len(regs) == 1:
            return regs[0]
        return "(" + ", ".join(regs) + ",)"

    def atom_source(src: int, keys: tuple[Any, ...] | None,
                    cols: tuple[int, ...]) -> str:
        if keys is None:
            return f"a{arg_of(('rows', src))}"
        if len(cols) == 1:
            j = arg_of(("probe1", src, cols[0]))
            return f"g{j}({sym_storage(keys[0])}, E)"
        j = arg_of(("probeN", src, cols))
        key = "(" + ", ".join(sym_storage(k) for k in keys) + ",)"
        return f"g{j}({key}, E)"

    def membership_cond(src: int, syms: tuple[Any, ...],
                        positive: bool) -> str:
        word = "in" if positive else "not in"
        if len(syms) == 1:
            j = arg_of(("member1", src, 0))
            return f"{sym_storage(syms[0])} {word} a{j}"
        j = arg_of(("rows", src))
        if not syms:
            return f"E {word} a{j}"
        key = "(" + ", ".join(sym_storage(s) for s in syms) + ",)"
        return f"{key} {word} a{j}"

    def check_cond(op: str, lhs_sym: tuple[str, Any],
                   rhs_sym: tuple[str, Any]) -> str | None:
        """A per-row condition for a comparison, or None when always
        true.  ``=``/``!=`` compare in the storage domain (interning is
        first-wins over value equality, so code equality is value
        equality); ordering comparisons against a constant route
        through the column-level predicate cache when the slot has a
        column origin, and decode inline otherwise."""
        lkind, lval = lhs_sym
        rkind, rval = rhs_sym
        if lkind == "const" and rkind == "const":
            try:
                return None if builtins.compare_values(op, lval, rval) \
                    else "False"
            except EvaluationError:
                # Preserve the per-row raise (only if a row arrives).
                return f"C({op!r}, {_lit(lval)}, {_lit(rval)})"
        if op in ("=", "!="):
            py = "==" if op == "=" else "!="
            if lkind == "slot" and rkind == "slot":
                return (f"{sym_storage(lhs_sym)} {py} "
                        f"{sym_storage(rhs_sym)}")
            slot_sym, const_val = ((lhs_sym, rval) if lkind == "slot"
                                   else (rhs_sym, lval))
            sexpr = sym_storage(slot_sym)
            if symbols is not None:
                code = symbols.code(const_val)
                if code is None:
                    # Never-interned constant: no stored value equals it.
                    return "False" if op == "=" else None
                return f"{sexpr} {py} {code}"
            return f"{sexpr} {py} {_lit(const_val)}"
        if lkind == "slot" and rkind == "slot":
            return (f"C({op!r}, {decode(sym_storage(lhs_sym))}, "
                    f"{decode(sym_storage(rhs_sym))})")
        slot_left = lkind == "slot"
        slot_no = lval if slot_left else rval
        const_val = rval if slot_left else lval
        sexpr = sym_storage(("slot", slot_no))
        origin = origins.get(slot_no)
        if origin is not None:
            j = arg_of(("pcache", origin[0], origin[1], op, const_val,
                        slot_left))
            return f"{sexpr} in a{j}"
        if slot_left:
            return f"C({op!r}, {decode(sexpr)}, {_lit(const_val)})"
        return f"C({op!r}, {_lit(const_val)}, {decode(sexpr)})"

    def emit_filter(cond: str | None, is_last: bool,
                    head_expr: str | None = None) -> None:
        if cond is None and not is_last:
            return  # statically true: the level is a no-op copy
        prefix = gens_prefix()
        name = "out" if is_last else f"lvl{state['levels']}"
        state["levels"] += 1
        item = head_expr if is_last else item_expr()
        if cond == "False":
            lines.append(f"{name} = []")
        elif state["frontier"] is None:
            if cond is None:
                lines.append(f"{name} = [{item}]")
            else:
                lines.append(f"{name} = [{item}] if {cond} else []")
        elif cond is None:
            lines.append(f"{name} = [{item} {prefix.rstrip()}]")
        else:
            lines.append(f"{name} = [{item} {prefix}if {cond}]")
        state["frontier"] = ("list", name)
        state["count"] = f"len({name})"

    def head_parts() -> list[str]:
        for dstep in deferred_binds:
            _tag, dslot, dsym = dstep
            reg_exprs[dslot] = sym_storage(dsym)
            cc.append("len(out)")
        return [sym_storage(sym) for sym in head]

    for pos, step in enumerate(plan):
        tag = step[0]
        is_last = pos == last_level
        if tag == "bind":
            if pos > last_level:
                continue  # folded into head_parts, counted vs len(out)
            _tag, slot_no, sym = step
            cc.append(state["count"])
            reg_exprs[slot_no] = sym_storage(sym)
            continue
        if tag == "check":
            _tag, op, lhs_sym, rhs_sym, body_index = step
            cc.append(state["count"])
            # Dataflow proved the comparison true for every reachable
            # row: no condition needed (the count above still accrues,
            # matching the row-at-a-time executors exactly).
            skip = body_index in true_checks
            if is_last:
                cond = None if skip else check_cond(op, lhs_sym, rhs_sym)
                parts = head_parts()
                head_expr = ("(" + ", ".join(parts) + ",)"
                             if parts else "()")
                emit_filter(cond, True, head_expr)
            else:
                cond = None if skip else check_cond(op, lhs_sym, rhs_sym)
                emit_filter(cond, False)
            continue
        if tag in ("member", "neg"):
            _tag, src, syms = step
            positive = tag == "member"
            (lk if positive else nc).append(state["count"])
            cond = membership_cond(src, syms, positive)
            if is_last:
                parts = head_parts()
                head_expr = ("(" + ", ".join(parts) + ",)"
                             if parts else "()")
                emit_filter(cond, True, head_expr)
            else:
                emit_filter(cond, False)
            if positive:
                rm.append(state["count"])
            continue
        # tag == "atom"
        _tag, src, keys, writes, checks = step
        cols = kernel.sources[src][2]
        lk.append(state["count"])
        prefix = gens_prefix()
        rname = f"r{len(regs)}"
        for col, slot_no in writes:
            reg_exprs[slot_no] = f"{rname}[{col}]"
            origins[slot_no] = (src, col)
        conds = "".join(f" if {rname}[{col}] == {reg_exprs[slot_no]}"
                        for col, slot_no in checks)
        source = atom_source(src, keys, cols)
        if not is_last:
            if state["frontier"] is None and not checks:
                # Virtual first level: iterate the source in place —
                # no list copy, count is just its length.
                sname = f"s{state['levels']}"
                state["levels"] += 1
                lines.append(f"{sname} = {source}")
                regs.append(rname)
                state["frontier"] = ("virtual", sname)
                state["count"] = f"len({sname})"
                rm.append(state["count"])
            else:
                name = f"lvl{state['levels']}"
                state["levels"] += 1
                regs.append(rname)
                item = item_expr()
                lines.append(
                    f"{name} = [{item} {prefix}for {rname} in "
                    f"{source}{conds}]")
                state["frontier"] = ("list", name)
                state["count"] = f"len({name})"
                rm.append(state["count"])
            continue
        # Final level: emit head rows directly.
        parts = head_parts()
        atom = kernel.sources[src][1]
        arity = len(atom.args)
        identity = (state["frontier"] is None and not checks and arity > 0
                    and parts == [f"{rname}[{i}]" for i in range(arity)])
        if identity:
            # The head is the row verbatim: one C-level list copy.
            lines.append(f"out = list({source})")
        else:
            if keys is not None and len(cols) == 1 and not checks:
                used = sorted({col for col, _slot in writes
                               if f"{rname}[{col}]" in parts})
                if len(used) == 1:
                    # Projection: the level contributes exactly one
                    # column to the head, so probe the projection index
                    # and emit its entries — no row tuples at all.
                    val_col = used[0]
                    j = arg_of(("proj", src, cols[0], val_col))
                    source = f"g{j}({sym_storage(keys[0])}, E)"
                    vname = f"v{len(regs)}"
                    parts = [vname if part == f"{rname}[{val_col}]"
                             else part for part in parts]
                    rname = vname
            head_expr = ("(" + ", ".join(parts) + ",)" if parts
                         else "()")
            lines.append(f"out = [{head_expr} {prefix}for {rname} in "
                         f"{source}{conds}]")
        state["frontier"] = ("list", "out")
        state["count"] = "len(out)"
        rm.append("len(out)")

    params = ", ".join(f"a{i}" for i in range(len(specs)))
    prologue = [f"g{i} = a{i}.get" for i, spec in enumerate(specs)
                if spec[0] in ("probe1", "probeN", "proj")]

    def total(terms: list[str]) -> str:
        return " + ".join(terms) if terms else "0"

    body = [f"def _batch({params}):"]
    body.extend(f"    {line}" for line in prologue)
    body.extend(f"    {line}" for line in lines)
    body.append(f"    return out, {total(lk)}, {total(rm)}, "
                f"{total(cc)}, {total(nc)}")
    return _instantiate("\n".join(body), tuple(specs), values)


def _instantiate(source_text: str, specs: tuple[Any, ...],
                 values: Sequence[Any] | None) -> BatchKernel:
    """Exec generated batch source into a :class:`BatchKernel`.

    Bytecode compilation dominates codegen cost and depends only on the
    source text — cache it process-wide.  The globals cannot be cached
    alongside: ``V`` binds the decode table of *this* evaluation's
    symbol table.
    """
    code = _CODE_CACHE.get(source_text)
    if code is None:
        code = compile(source_text, "<batch-kernel>", "exec")
        _CODE_CACHE[source_text] = code
    namespace: dict[str, Any] = {}
    exec(code,  # noqa: S102 - generated from the symbolic plan
         {"__builtins__": {}, "len": len, "list": list, "E": (),
          "C": builtins.compare_values, "V": values},
         namespace)
    return BatchKernel(namespace["_batch"], specs, source_text)


class VectorRunner:
    """Per-evaluation driver for the vectorized executor.

    Holds the batch-kernel cache (keyed by kernel identity, so adaptive
    replans recompile the batch form too) and the shared
    :class:`PredicateCache`.  ``run`` executes a kernel's batch form
    when it has one and no derivation hook is installed, and falls back
    to :meth:`CompiledKernel.execute` otherwise — both paths produce
    identical rows and statistics.

    ``kernel_choice``, when set (``planner="cbo"``), is consulted once
    per kernel identity: a ``row`` verdict pins the rule to the
    compiled row-at-a-time kernel even though a batch lowering exists
    (narrow predicted frontiers never amortize the batch setup).  The
    verdict caches with the batch form, so an adaptive-drift replan —
    a fresh kernel identity — re-enters the choice against current
    statistics.
    """

    __slots__ = ("symbols", "cache", "true_checks", "kernel_choice",
                 "_compiled")

    def __init__(self, symbols: SymbolTable | None = None,
                 true_checks: Mapping[Rule, frozenset[int]] | None = None,
                 kernel_choice: Callable[[CompiledKernel], Any] | None
                 = None) -> None:
        self.symbols = symbols
        self.cache = PredicateCache(symbols)
        #: rule -> body indexes of provably-true comparisons (from the
        #: dataflow analysis); kernels for those rules skip the checks.
        self.true_checks = true_checks or {}
        #: optional CBO chooser: kernel -> KernelChoice (``use_batch``).
        self.kernel_choice = kernel_choice
        # id(kernel) -> (kernel, batch | None); the strong kernel ref
        # keeps ids stable for the lifetime of this runner.
        self._compiled: dict[int, tuple[CompiledKernel,
                                        BatchKernel | None]] = {}

    def batch_for(self, kernel: CompiledKernel) -> BatchKernel | None:
        entry = self._compiled.get(id(kernel))
        if entry is None or entry[0] is not kernel:
            skips = self.true_checks.get(kernel.rule, frozenset())
            batch = compile_batch(kernel, skips)
            if batch is not None and self.kernel_choice is not None \
                    and not self.kernel_choice(kernel).use_batch:
                # Row and batch kernels derive identical rows and
                # counters, so the choice never changes results.
                batch = None
            entry = (kernel, batch)
            self._compiled[id(kernel)] = entry
        return entry[1]

    def invalidate(self, rule: Rule) -> None:
        """Drop cached batch forms (and choices) of ``rule``.

        Called by the kernel cache on an adaptive-drift replan under
        ``planner="cbo"`` so the batch-vs-row enumeration re-enters
        with the statistics that triggered the replan.
        """
        self._compiled = {key: entry for key, entry
                          in self._compiled.items()
                          if entry[0].rule is not rule}

    def run(self, kernel: CompiledKernel, fetch: Fetch, stats: EvalStats,
            hook: Optional[Hook] = None,
            round_index: int = 0) -> list[Row]:
        if hook is not None:
            return kernel.execute(fetch, stats, hook, round_index)
        batch = self.batch_for(kernel)
        if batch is None:
            return kernel.execute(fetch, stats, hook, round_index)
        fetched: dict[int, Relation] = {}

        def rel(src: int) -> Relation:
            relation = fetched.get(src)
            if relation is None:
                body_index, atom, _cols, _kind = kernel.sources[src]
                relation = fetch(atom, body_index)
                fetched[src] = relation
            return relation

        args: list[Any] = []
        for spec in batch.resolvers:
            tag = spec[0]
            if tag == "rows":
                args.append(rel(spec[1]).raw_rows())
            elif tag in ("probe1", "member1"):
                args.append(rel(spec[1]).code_index_for(spec[2]))
            elif tag == "probeN":
                args.append(rel(spec[1]).index_for(spec[2]))
            elif tag == "proj":
                args.append(rel(spec[1]).projection_index(spec[2],
                                                          spec[3]))
            else:  # pcache
                _tag, src, column, op, const, slot_left = spec
                args.append(self.cache.passing(rel(src), column, op,
                                               const, slot_left))
        out, lookups, rows, cmps, negs = batch.fn(*args)
        stats.atom_lookups += lookups
        stats.rows_matched += rows
        stats.comparisons_checked += cmps
        stats.negation_checks += negs
        return out
