"""Compiled rule kernels: slot-based join execution.

The reference interpreter in :mod:`repro.engine.bindings` evaluates a
rule body by threading per-tuple ``dict[Variable, value]`` bindings
through a recursive generator, re-deriving the join plan, the bound
pattern of every atom and the hash of every :class:`Variable` on every
rule firing.  That interpreter overhead dwarfs the per-round deltas the
paper's experiments measure.

This module lowers a rule body **once** into a :class:`CompiledKernel`:

- the greedy plan (:func:`repro.engine.bindings.plan_body`) is computed
  a single time, at compile time;
- every variable is mapped to an integer *slot* in a flat list
  environment — no per-tuple dict allocation, no ``Variable`` hashing;
- each database atom becomes a closure that probes a pre-resolved
  :meth:`repro.facts.relation.Relation.index_for` hash index with
  precomputed bound-column extractors, writes unbound columns straight
  into slots and checks repeated columns in place;
- comparisons and negations become pre-bound slot checks (negations are
  ground at plan time, so they compile to a single set-membership test);
- the head becomes a tuple constructor over slots.

Kernels are pure code: they bake in body *positions*, never relation
objects, so semi-naive evaluation compiles one variant per
delta-redirected occurrence and reuses it across all rounds, resolving
the actual relations (delta vs. full) per firing through the same
``fetch`` callable the interpreter uses.

The interpreter remains the semantics oracle: a kernel must derive
exactly the same head rows (as a set, and the same number of solutions)
as :func:`repro.engine.bindings.solve_body` on every rule and database.
Derivation hooks are honoured by lazily materializing a ``Binding``
view of the slot environment — the dict is only built when a hook is
installed, so the hot path never pays for it.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..datalog.atoms import Atom, Comparison, Negation
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Variable, variables_of
from ..errors import EvaluationError
from ..facts.relation import Row
from . import builtins
from .bindings import (Binding, EvalStats, Fetch, _check_atom_args,
                       plan_body)

#: Known executors for the bottom-up engines.
EXECUTORS = ("compiled", "interpreted")

#: ``sizes(atom, body_index) -> int`` — relation-size estimate used by
#: the greedy planner at compile time.
Sizes = Callable[[Atom, int], int]

#: Per-derivation hook, as in :mod:`repro.engine.seminaive`.
Hook = Callable[[Rule, Binding, int], bool]


def validate_executor(executor: str) -> None:
    if executor not in EXECUTORS:
        raise EvaluationError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}")


class _Ctx:
    """Mutable per-execution state shared by the step closures."""

    __slots__ = ("rels", "emit", "lookups", "rows", "cmps", "negs")

    def __init__(self) -> None:
        self.rels: list = []
        self.emit = None
        self.lookups = 0
        self.rows = 0
        self.cmps = 0
        self.negs = 0


def _term_getter(term, slot_of: dict[Variable, int]):
    """Compile a term into ``env -> value`` over the slot environment."""
    if isinstance(term, Constant):
        value = term.value
        return lambda env: value
    if isinstance(term, Variable):
        slot = slot_of[term]
        return lambda env: env[slot]
    # ArithExpr
    left = _term_getter(term.left, slot_of)
    right = _term_getter(term.right, slot_of)
    op = term.op
    apply_arith = builtins.apply_arith
    return lambda env: apply_arith(op, left(env), right(env))


def _make_atom_step(src: int, key_getters, writes, checks, cont):
    """An atom step: probe/scan, bind unbound columns, run ``cont``.

    ``ctx.rels[src]`` holds the pre-resolved probe target: the hash
    index dict when ``key_getters`` is given, the raw row container for
    a full scan.  ``writes`` are ``(column, slot)`` pairs for first
    occurrences of unbound variables; ``checks`` are later occurrences
    of a variable first bound within this same atom.
    """
    if key_getters is not None and len(key_getters) == 1:
        single_getter = key_getters[0]
    else:
        single_getter = None

    def step(env, ctx):
        ctx.lookups += 1
        if key_getters is None:
            bucket = ctx.rels[src]
        else:
            if single_getter is not None:
                key = (single_getter(env),)
            else:
                key = tuple(g(env) for g in key_getters)
            bucket = ctx.rels[src].get(key)
            if bucket is None:
                return
        matched = 0
        if checks:
            for row in bucket:
                for col, slot in writes:
                    env[slot] = row[col]
                ok = True
                for col, slot in checks:
                    if row[col] != env[slot]:
                        ok = False
                        break
                if ok:
                    matched += 1
                    cont(env, ctx)
        elif writes:
            for row in bucket:
                for col, slot in writes:
                    env[slot] = row[col]
                matched += 1
                cont(env, ctx)
        else:
            for _row in bucket:
                matched += 1
                cont(env, ctx)
        ctx.rows += matched

    return step


def _make_negation_step(src: int, value_getters, cont):
    """A negation step: the atom is ground here, so it is one membership
    test against the relation's row container."""

    def step(env, ctx):
        ctx.negs += 1
        if tuple(g(env) for g in value_getters) not in ctx.rels[src]:
            cont(env, ctx)

    return step


def _make_check_step(op: str, lhs_get, rhs_get, cont):
    compare_values = builtins.compare_values

    def step(env, ctx):
        ctx.cmps += 1
        if compare_values(op, lhs_get(env), rhs_get(env)):
            cont(env, ctx)

    return step


def _make_bind_step(slot: int, value_get, cont):
    def step(env, ctx):
        ctx.cmps += 1
        env[slot] = value_get(env)
        cont(env, ctx)

    return step


class CompiledKernel:
    """One rule body lowered to a chain of slot-machine closures.

    Attributes:
        rule: the source rule.
        order: the body indexes in execution order (the cached plan).
        n_slots: size of the flat environment.
        sources: ``(body_index, atom, bound_columns, kind)`` per
            relation-touching step, in execution order; ``kind`` is
            ``"probe"``, ``"scan"`` or ``"neg"``.  :meth:`execute`
            resolves each to a probe target through ``fetch``.
    """

    __slots__ = ("rule", "order", "n_slots", "sources", "_entry",
                 "_head_fn", "_slot_items", "_step_notes")

    def __init__(self, rule: Rule, sizes: Sizes,
                 keep_atom_order: bool = False) -> None:
        self.rule = rule
        self.order = plan_body(rule, sizes, keep_atom_order=keep_atom_order)
        slot_of: dict[Variable, int] = {}

        def slot(var: Variable) -> int:
            found = slot_of.get(var)
            if found is None:
                found = len(slot_of)
                slot_of[var] = found
            return found

        # First pass: describe each step with compile-time data.
        plans: list[tuple] = []  # (tag, payload...)
        self.sources: list[tuple[int, Atom, tuple[int, ...], str]] = []
        self._step_notes: list[str] = []
        bound: set[Variable] = set()
        for index in self.order:
            lit = rule.body[index]
            if isinstance(lit, Comparison):
                can_check = builtins.can_check(lit, bound)
                if not can_check and builtins.can_bind(lit, bound):
                    # ``=`` in binding position: assign one new slot.
                    if isinstance(lit.lhs, Variable) \
                            and lit.lhs not in bound:
                        target, source = lit.lhs, lit.rhs
                    else:
                        target, source = lit.rhs, lit.lhs
                    getter = _term_getter(source, slot_of)
                    plans.append(("bind", slot(target), getter))
                    self._step_notes.append(f"bind         {lit}")
                else:
                    lhs = _term_getter(lit.lhs, slot_of)
                    rhs = _term_getter(lit.rhs, slot_of)
                    plans.append(("check", lit.op, lhs, rhs))
                    self._step_notes.append(f"check        {lit}")
                bound.update(lit.variable_set())
                continue
            if isinstance(lit, Negation):
                _check_atom_args(lit.atom)
                getters = tuple(_term_getter(arg, slot_of)
                                for arg in lit.atom.args)
                src = len(self.sources)
                self.sources.append((index, lit.atom, (), "neg"))
                plans.append(("neg", src, getters))
                self._step_notes.append(f"absent       {lit}")
                continue
            # Database atom.
            _check_atom_args(lit)
            cols: list[int] = []
            key_getters: list = []
            writes: list[tuple[int, int]] = []
            checks: list[tuple[int, int]] = []
            atom_new: set[Variable] = set()
            for column, arg in enumerate(lit.args):
                if isinstance(arg, Constant):
                    cols.append(column)
                    key_getters.append(_term_getter(arg, slot_of))
                elif arg in bound:
                    cols.append(column)
                    key_getters.append(_term_getter(arg, slot_of))
                elif arg in atom_new:
                    # Repeated within this atom: first occurrence binds,
                    # later ones must match the just-written slot.
                    checks.append((column, slot_of[arg]))
                else:
                    atom_new.add(arg)
                    writes.append((column, slot(arg)))
            src = len(self.sources)
            kind = "probe" if cols else "scan"
            self.sources.append((index, lit, tuple(cols), kind))
            plans.append(("atom", src,
                          tuple(key_getters) if cols else None,
                          tuple(writes), tuple(checks)))
            detail = f"probe[{','.join(map(str, cols))}]" if cols \
                else "scan"
            self._step_notes.append(f"{detail:12} {lit}")
            bound.update(lit.variable_set())

        # Head constructor: every head variable must have a slot.
        head_getters = []
        for arg in rule.head.args:
            for var in variables_of(arg):
                if var not in slot_of:
                    raise EvaluationError(
                        f"head variable {var} unbound in rule "
                        f"{rule.label or rule}; rule is not range "
                        "restricted")
            head_getters.append(_term_getter(arg, slot_of))
        head_getters = tuple(head_getters)

        def head_fn(env, _getters=head_getters):
            return tuple(g(env) for g in _getters)

        self._head_fn = head_fn
        self.n_slots = len(slot_of)
        self._slot_items = tuple(slot_of.items())

        # Second pass: chain the closures innermost-first.
        def emit_solution(env, ctx):
            ctx.emit(env)

        cont = emit_solution
        for plan in reversed(plans):
            tag = plan[0]
            if tag == "atom":
                _, src, key_getters, writes, checks = plan
                cont = _make_atom_step(src, key_getters, writes, checks,
                                       cont)
            elif tag == "check":
                _, op, lhs, rhs = plan
                cont = _make_check_step(op, lhs, rhs, cont)
            elif tag == "bind":
                _, target_slot, getter = plan
                cont = _make_bind_step(target_slot, getter, cont)
            else:  # neg
                _, src, getters = plan
                cont = _make_negation_step(src, getters, cont)
        self._entry = cont

    # -- execution -----------------------------------------------------------
    def execute(self, fetch: Fetch, stats: EvalStats,
                hook: Optional[Hook] = None,
                round_index: int = 0) -> list[Row]:
        """Run the kernel and return the derived head rows (buffered).

        ``fetch`` resolves each atom occurrence to its relation exactly
        as for the interpreter, so delta redirection works unchanged;
        probe targets (index dict or row container) are resolved once
        per call, not per tuple.  When ``hook`` is given, a ``Binding``
        dict view of the slot environment is materialized per solution
        and the hook may veto the row — the fast path never builds it.
        """
        ctx = _Ctx()
        rels = ctx.rels
        for body_index, atom, cols, kind in self.sources:
            relation = fetch(atom, body_index)
            if kind == "probe":
                rels.append(relation.index_for(cols))
            else:  # scan / neg: the raw (read-only) row container
                rels.append(relation.lookup(()))
        out: list[Row] = []
        head_fn = self._head_fn
        if hook is None:
            def emit(env) -> None:
                out.append(head_fn(env))
        else:
            rule = self.rule
            slot_items = self._slot_items

            def emit(env) -> None:
                binding = {var: env[s] for var, s in slot_items}
                if hook(rule, binding, round_index):
                    out.append(head_fn(env))
        ctx.emit = emit
        env: list = [None] * self.n_slots
        self._entry(env, ctx)
        stats.atom_lookups += ctx.lookups
        stats.rows_matched += ctx.rows
        stats.comparisons_checked += ctx.cmps
        stats.negation_checks += ctx.negs
        return out

    # -- introspection -------------------------------------------------------
    def describe(self) -> str:
        """Render the compiled step program (one line per step)."""
        lines = [f"{self.rule.label or '?'}: {self.rule} "
                 f"[{self.n_slots} slots]"]
        for number, note in enumerate(self._step_notes, start=1):
            lines.append(f"  {number}. {note}")
        if not self._step_notes:
            lines.append("  (empty body: emits the ground head once)")
        return "\n".join(lines)


class KernelCache:
    """Per-evaluation cache of compiled kernels.

    Kernels are keyed by ``(rule, variant)`` where ``variant`` is the
    engine's delta-redirection tag (``None`` for the base plan, the
    redirected body index for a semi-naive delta variant), so each
    (stratum, delta-variant) pair compiles exactly once and is reused
    across all rounds.
    """

    __slots__ = ("keep_atom_order", "_kernels")

    def __init__(self, keep_atom_order: bool = False) -> None:
        self.keep_atom_order = keep_atom_order
        self._kernels: dict[tuple[Rule, object], CompiledKernel] = {}

    def __len__(self) -> int:
        return len(self._kernels)

    def kernel(self, rule: Rule, variant: object,
               sizes: Sizes) -> CompiledKernel:
        key = (rule, variant)
        kernel = self._kernels.get(key)
        if kernel is None:
            kernel = CompiledKernel(
                rule, sizes, keep_atom_order=self.keep_atom_order)
            self._kernels[key] = kernel
        return kernel


def compile_rule(rule: Rule, sizes: Sizes,
                 keep_atom_order: bool = False) -> CompiledKernel:
    """Compile one rule body into a :class:`CompiledKernel`."""
    return CompiledKernel(rule, sizes, keep_atom_order=keep_atom_order)
