"""Compiled rule kernels: slot-based join execution.

The reference interpreter in :mod:`repro.engine.bindings` evaluates a
rule body by threading per-tuple ``dict[Variable, value]`` bindings
through a recursive generator, re-deriving the join plan, the bound
pattern of every atom and the hash of every :class:`Variable` on every
rule firing.  That interpreter overhead dwarfs the per-round deltas the
paper's experiments measure.

This module lowers a rule body **once** into a :class:`CompiledKernel`:

- the join plan (:func:`repro.engine.bindings.plan_body`) is computed
  a single time, at compile time — greedy by default, or driven by a
  statistics ``cost`` callback under the adaptive planner;
- every variable is mapped to an integer *slot* in a flat list
  environment — no per-tuple dict allocation, no ``Variable`` hashing;
- each database atom becomes a closure that probes a pre-resolved
  :meth:`repro.facts.relation.Relation.index_for` hash index with
  precomputed bound-column extractors, writes unbound columns straight
  into slots and checks repeated columns in place;
- comparisons and negations become pre-bound slot checks (negations are
  ground at plan time, so they compile to a single set-membership test);
- the head becomes a tuple constructor over slots.

Kernels are pure code: they bake in body *positions*, never relation
objects, so semi-naive evaluation compiles one variant per
delta-redirected occurrence and reuses it across all rounds, resolving
the actual relations (delta vs. full) per firing through the same
``fetch`` callable the interpreter uses.

**Interned mode.**  Compiled against a shared
:class:`~repro.facts.symbols.SymbolTable` (``symbols=``), a kernel
joins entirely over dense ``int`` codes: program constants are interned
at compile time, probe keys and negation members are code tuples,
slots hold codes.  Only two step kinds ever touch values: comparison
checks decode their operands (``<`` must order values, not codes), and
arithmetic computes in the value domain and re-interns its result.
Head rows are emitted *in the storage domain* — the engines insert them
through :meth:`repro.facts.relation.Relation.raw_add`, so a derived
fact is never decoded unless a human-facing boundary (result
materialization, derivation hooks, tracing) asks for it.

Interned storage also unlocks **tail fusion**: when the last planned
step is a positive atom with no in-atom equality checks and the head is
built from variables and constants only, the kernel swaps the innermost
closure call for a generated list comprehension that maps each matching
bucket row straight to a head tuple.  That removes one Python call per
matched row on the innermost loop — the hot loop of transitive closure
— and is the main single-thread win of the columnar representation.

The interpreter remains the semantics oracle: a kernel must derive
exactly the same head rows (as a set, and the same number of solutions)
as :func:`repro.engine.bindings.solve_body` on every rule and database.
Derivation hooks are honoured by lazily materializing a *value-domain*
``Binding`` view of the slot environment — the dict is only built when
a hook is installed, so the hot path never pays for it.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..datalog.atoms import Atom, Comparison, Negation
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Variable, variables_of
from ..errors import EvaluationError
from ..facts.relation import Row
from ..facts.symbols import SymbolTable
from . import builtins
from .bindings import (Binding, Cost, EvalStats, Fetch, _check_atom_args,
                       bound_columns_of, plan_body)

#: Known executors for the bottom-up engines.  ``parallel`` runs the
#: same compiled kernels sharded over a partition of each firing's
#: anchor scan (see :mod:`repro.engine.parallel`); ``vectorized`` lowers
#: each firing to a whole-frontier batch kernel over columnar storage
#: (see :mod:`repro.engine.vectorize`).
EXECUTORS = ("compiled", "interpreted", "parallel", "vectorized")

#: ``sizes(atom, body_index) -> int`` — relation-size estimate used by
#: the greedy planner at compile time.
Sizes = Callable[[Atom, int], int]

#: Per-derivation hook, as in :mod:`repro.engine.seminaive`.
Hook = Callable[[Rule, Binding, int], bool]


def validate_executor(executor: str) -> None:
    if executor not in EXECUTORS:
        raise EvaluationError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}")


class _Ctx:
    """Mutable per-execution state shared by the step closures."""

    __slots__ = ("rels", "emit", "out", "lookups", "rows", "cmps", "negs")

    def __init__(self) -> None:
        self.rels: list = []
        self.emit = None
        self.out: list = []
        self.lookups = 0
        self.rows = 0
        self.cmps = 0
        self.negs = 0


def _term_getter(term, slot_of: dict[Variable, int]):
    """Compile a term into ``env -> value`` over the slot environment."""
    if isinstance(term, Constant):
        value = term.value
        return lambda env: value
    if isinstance(term, Variable):
        slot = slot_of[term]
        return lambda env: env[slot]
    # ArithExpr
    left = _term_getter(term.left, slot_of)
    right = _term_getter(term.right, slot_of)
    op = term.op
    apply_arith = builtins.apply_arith
    return lambda env: apply_arith(op, left(env), right(env))


def _coded_term_getter(term, slot_of: dict[Variable, int],
                       symbols: SymbolTable | None):
    """``env -> storage-domain value`` (a code in interned mode).

    Program constants are interned once at compile time; arithmetic is
    the one term kind that must round-trip — operands are decoded, the
    result computed in the value domain and re-interned, so derived
    numbers get codes like any loaded constant.
    """
    if symbols is None:
        return _term_getter(term, slot_of)
    if isinstance(term, Constant):
        code = symbols.intern(term.value)
        return lambda env: code
    if isinstance(term, Variable):
        slot = slot_of[term]
        return lambda env: env[slot]
    # ArithExpr: value-domain computation, re-interned result.
    left = _decoded_term_getter(term.left, slot_of, symbols)
    right = _decoded_term_getter(term.right, slot_of, symbols)
    op = term.op
    apply_arith = builtins.apply_arith
    intern = symbols.intern
    return lambda env: intern(apply_arith(op, left(env), right(env)))


def _decoded_term_getter(term, slot_of: dict[Variable, int],
                         symbols: SymbolTable | None):
    """``env -> value`` even when slots hold codes.

    Comparison checks need real values: codes are dense ints in
    interning order, so ``<`` over codes would order by first
    appearance, not by value.
    """
    if symbols is None:
        return _term_getter(term, slot_of)
    if isinstance(term, Constant):
        value = term.value
        return lambda env: value
    if isinstance(term, Variable):
        slot = slot_of[term]
        values = symbols.values
        return lambda env: values[env[slot]]
    left = _decoded_term_getter(term.left, slot_of, symbols)
    right = _decoded_term_getter(term.right, slot_of, symbols)
    op = term.op
    apply_arith = builtins.apply_arith
    return lambda env: apply_arith(op, left(env), right(env))


def _make_atom_step(src: int, key_getters, writes, checks, cont):
    """An atom step: probe/scan, bind unbound columns, run ``cont``.

    ``ctx.rels[src]`` holds the pre-resolved probe target: the hash
    index dict when ``key_getters`` is given, the raw row container for
    a full scan.  ``writes`` are ``(column, slot)`` pairs for first
    occurrences of unbound variables; ``checks`` are later occurrences
    of a variable first bound within this same atom.
    """
    if key_getters is not None and len(key_getters) == 1:
        single_getter = key_getters[0]
    else:
        single_getter = None

    def step(env, ctx):
        ctx.lookups += 1
        if key_getters is None:
            bucket = ctx.rels[src]
        else:
            if single_getter is not None:
                key = (single_getter(env),)
            else:
                key = tuple(g(env) for g in key_getters)
            bucket = ctx.rels[src].get(key)
            if bucket is None:
                return
        matched = 0
        if checks:
            for row in bucket:
                for col, slot in writes:
                    env[slot] = row[col]
                ok = True
                for col, slot in checks:
                    if row[col] != env[slot]:
                        ok = False
                        break
                if ok:
                    matched += 1
                    cont(env, ctx)
        elif writes:
            for row in bucket:
                for col, slot in writes:
                    env[slot] = row[col]
                matched += 1
                cont(env, ctx)
        else:
            for _row in bucket:
                matched += 1
                cont(env, ctx)
        ctx.rows += matched

    return step


def _make_fused_tail_step(src: int, key_getters, builder):
    """The fused innermost step: bucket rows map straight to head rows.

    ``builder(env, bucket)`` is a generated list comprehension (see
    :meth:`CompiledKernel._try_fuse_tail`) producing the head tuples for
    every row of the bucket; the whole batch lands in ``ctx.out`` with
    one ``extend``, with no per-row closure call and no slot writes.
    Only valid when the tail atom has no in-atom checks, so every bucket
    row matches.
    """
    if key_getters is not None and len(key_getters) == 1:
        single_getter = key_getters[0]
    else:
        single_getter = None

    def step(env, ctx):
        ctx.lookups += 1
        if key_getters is None:
            bucket = ctx.rels[src]
        else:
            if single_getter is not None:
                key = (single_getter(env),)
            else:
                key = tuple(g(env) for g in key_getters)
            bucket = ctx.rels[src].get(key)
            if bucket is None:
                return
        ctx.out.extend(builder(env, bucket))
        ctx.rows += len(bucket)

    return step


def _make_negation_step(src: int, value_getters, cont):
    """A negation step: the atom is ground here, so it is one membership
    test against the relation's row container."""

    def step(env, ctx):
        ctx.negs += 1
        if tuple(g(env) for g in value_getters) not in ctx.rels[src]:
            cont(env, ctx)

    return step


def _make_member_step(src: int, value_getters, cont):
    """A fully-bound positive atom: one membership test, no index.

    Probing an all-columns index would mean building an index that is
    just the row set again — a full O(n) construction to answer O(1)
    questions the row container already answers.
    """

    def step(env, ctx):
        ctx.lookups += 1
        if tuple(g(env) for g in value_getters) in ctx.rels[src]:
            ctx.rows += 1
            cont(env, ctx)

    return step


def _make_check_step(op: str, lhs_get, rhs_get, cont):
    compare_values = builtins.compare_values

    def step(env, ctx):
        ctx.cmps += 1
        if compare_values(op, lhs_get(env), rhs_get(env)):
            cont(env, ctx)

    return step


def _make_bind_step(slot: int, value_get, cont):
    def step(env, ctx):
        ctx.cmps += 1
        env[slot] = value_get(env)
        cont(env, ctx)

    return step


def _chain(plans: list[tuple], cont):
    """Fold step descriptions into a closure chain, innermost-first."""
    for plan in reversed(plans):
        tag = plan[0]
        if tag == "atom":
            _, src, key_getters, writes, checks = plan
            cont = _make_atom_step(src, key_getters, writes, checks, cont)
        elif tag == "check":
            _, op, lhs, rhs = plan
            cont = _make_check_step(op, lhs, rhs, cont)
        elif tag == "bind":
            _, target_slot, getter = plan
            cont = _make_bind_step(target_slot, getter, cont)
        elif tag == "member":
            _, src, getters = plan
            cont = _make_member_step(src, getters, cont)
        else:  # neg
            _, src, getters = plan
            cont = _make_negation_step(src, getters, cont)
    return cont


class CompiledKernel:
    """One rule body lowered to a chain of slot-machine closures.

    Attributes:
        rule: the source rule.
        order: the body indexes in execution order (the cached plan).
        n_slots: size of the flat environment.
        sources: ``(body_index, atom, bound_columns, kind)`` per
            relation-touching step, in execution order; ``kind`` is
            ``"probe"``, ``"scan"`` or ``"neg"``.  :meth:`execute`
            resolves each to a probe target through ``fetch``.
        symbols: the shared intern table, or None for value-domain
            compilation.  Head rows are emitted in the storage domain.
        plan_costs: ``{body_index: estimated rows per probe}`` recorded
            at plan time when a ``cost`` callback was supplied (the
            adaptive planner); empty otherwise.
        fused: whether the tail step was fused (see module docstring).
    """

    __slots__ = ("rule", "order", "n_slots", "sources", "symbols",
                 "plan_costs", "fused", "deep_fused", "anchor",
                 "batch_plan", "batch_head",
                 "_entry", "_fast_entry", "_deep_fn", "_head_fn",
                 "_slot_items", "_step_notes")

    def __init__(self, rule: Rule, sizes: Sizes,
                 keep_atom_order: bool = False,
                 cost: Cost | None = None,
                 symbols: SymbolTable | None = None,
                 order: list[int] | None = None,
                 fuse: bool = True) -> None:
        self.rule = rule
        self.symbols = symbols
        # ``order`` pins the plan (the parallel executor's fork workers
        # compile against the coordinator's order so probe/scan/member
        # classification — and hence the sources list — is identical).
        self.order = list(order) if order is not None else plan_body(
            rule, sizes, keep_atom_order=keep_atom_order, cost=cost)
        slot_of: dict[Variable, int] = {}

        def slot(var: Variable) -> int:
            found = slot_of.get(var)
            if found is None:
                found = len(slot_of)
                slot_of[var] = found
            return found

        # First pass: describe each step with compile-time data.
        plans: list[tuple] = []  # (tag, payload...)
        self.sources: list[tuple[int, Atom, tuple[int, ...], str]] = []
        self.plan_costs: dict[int, float] = {}
        self._step_notes: list[str] = []
        bound: set[Variable] = set()
        # Symbolic probe descriptions for whole-body fusion: one entry
        # per atom step, or None once any non-atom step appears.
        sym_plans: list[tuple] | None = []

        # Fully symbolic step program for the vectorized batch executor
        # (:mod:`repro.engine.vectorize`): unlike ``sym_plans`` it also
        # carries member/negation/comparison/bind steps.  Terms appear
        # as ``("const", payload)`` / ``("slot", slot)``; arithmetic
        # (the one term kind that must round-trip through the value
        # domain per row) disqualifies the batch lowering entirely and
        # the vectorized executor falls back to this kernel's
        # :meth:`execute`.
        batch_ok = True
        bsteps: list[tuple] = []

        def _sym_coded(term):
            """Storage-domain symbolic term, or None for arithmetic."""
            if isinstance(term, Constant):
                return ("const", symbols.intern(term.value)
                        if symbols is not None else term.value)
            if isinstance(term, Variable):
                return ("slot", slot_of[term])
            return None

        def _sym_value(term):
            """Value-domain symbolic term (slots still hold codes)."""
            if isinstance(term, Constant):
                return ("const", term.value)
            if isinstance(term, Variable):
                return ("slot", slot_of[term])
            return None

        for index in self.order:
            lit = rule.body[index]
            if not isinstance(lit, Atom) or isinstance(lit, Negation):
                sym_plans = None
            if isinstance(lit, Comparison):
                can_check = builtins.can_check(lit, bound)
                if not can_check and builtins.can_bind(lit, bound):
                    # ``=`` in binding position: assign one new slot.
                    if isinstance(lit.lhs, Variable) \
                            and lit.lhs not in bound:
                        target, source = lit.lhs, lit.rhs
                    else:
                        target, source = lit.rhs, lit.lhs
                    getter = _coded_term_getter(source, slot_of, symbols)
                    source_sym = _sym_coded(source) if batch_ok else None
                    target_slot = slot(target)
                    plans.append(("bind", target_slot, getter))
                    if source_sym is None:
                        batch_ok = False
                    else:
                        bsteps.append(("bind", target_slot, source_sym))
                    self._step_notes.append(f"bind         {lit}")
                else:
                    lhs = _decoded_term_getter(lit.lhs, slot_of, symbols)
                    rhs = _decoded_term_getter(lit.rhs, slot_of, symbols)
                    if batch_ok:
                        lhs_sym = _sym_value(lit.lhs)
                        rhs_sym = _sym_value(lit.rhs)
                        if lhs_sym is None or rhs_sym is None:
                            batch_ok = False
                        else:
                            # The trailing body index lets the batch
                            # lowering match this check against
                            # dataflow's provably-true comparisons.
                            bsteps.append(
                                ("check", lit.op, lhs_sym, rhs_sym,
                                 index))
                    plans.append(("check", lit.op, lhs, rhs))
                    self._step_notes.append(f"check        {lit}")
                bound.update(lit.variable_set())
                continue
            if isinstance(lit, Negation):
                _check_atom_args(lit.atom)
                getters = tuple(_coded_term_getter(arg, slot_of, symbols)
                                for arg in lit.atom.args)
                src = len(self.sources)
                self.sources.append((index, lit.atom, (), "neg"))
                plans.append(("neg", src, getters))
                if batch_ok:
                    neg_syms = tuple(_sym_coded(arg)
                                     for arg in lit.atom.args)
                    if any(sym is None for sym in neg_syms):
                        batch_ok = False
                    else:
                        bsteps.append(("neg", src, neg_syms))
                self._step_notes.append(f"absent       {lit}")
                continue
            # Database atom.
            _check_atom_args(lit)
            if cost is not None:
                self.plan_costs[index] = cost(
                    lit, index, bound_columns_of(lit, bound))
            cols: list[int] = []
            key_getters: list = []
            key_syms: list[tuple[str, object]] = []
            writes: list[tuple[int, int]] = []
            checks: list[tuple[int, int]] = []
            atom_new: set[Variable] = set()
            for column, arg in enumerate(lit.args):
                if isinstance(arg, Constant):
                    cols.append(column)
                    key_getters.append(
                        _coded_term_getter(arg, slot_of, symbols))
                    key_syms.append(
                        ("const", symbols.intern(arg.value)
                         if symbols is not None else arg.value))
                elif arg in bound:
                    cols.append(column)
                    key_getters.append(
                        _coded_term_getter(arg, slot_of, symbols))
                    key_syms.append(("slot", slot_of[arg]))
                elif arg in atom_new:
                    # Repeated within this atom: first occurrence binds,
                    # later ones must match the just-written slot.
                    checks.append((column, slot_of[arg]))
                else:
                    atom_new.add(arg)
                    writes.append((column, slot(arg)))
            if cols and not writes and not checks:
                # Every column is bound: a membership test against the
                # row container, not an index probe (see
                # :func:`_make_member_step`).
                src = len(self.sources)
                self.sources.append((index, lit, (), "member"))
                plans.append(("member", src, tuple(key_getters)))
                bsteps.append(("member", src, tuple(key_syms)))
                sym_plans = None
                self._step_notes.append(f"{'member':12} {lit}")
                bound.update(lit.variable_set())
                continue
            src = len(self.sources)
            kind = "probe" if cols else "scan"
            self.sources.append((index, lit, tuple(cols), kind))
            plans.append(("atom", src,
                          tuple(key_getters) if cols else None,
                          tuple(writes), tuple(checks)))
            bsteps.append(("atom", src,
                           tuple(key_syms) if cols else None,
                           tuple(writes), tuple(checks)))
            if sym_plans is not None:
                sym_plans.append((src,
                                  tuple(key_syms) if cols else None,
                                  tuple(writes), tuple(checks)))
            detail = f"probe[{','.join(map(str, cols))}]" if cols \
                else "scan"
            note = f"{detail:12} {lit}"
            estimate = self.plan_costs.get(index)
            if estimate is not None:
                note += f"  ~{estimate:g} rows/probe"
            self._step_notes.append(note)
            bound.update(lit.variable_set())

        # Head constructor: every head variable must have a slot.
        head_getters = []
        for arg in rule.head.args:
            for var in variables_of(arg):
                if var not in slot_of:
                    raise EvaluationError(
                        f"head variable {var} unbound in rule "
                        f"{rule.label or rule}; rule is not range "
                        "restricted")
            head_getters.append(_coded_term_getter(arg, slot_of, symbols))
        head_getters = tuple(head_getters)

        bhead: list[tuple] = []
        if batch_ok:
            for arg in rule.head.args:
                sym = _sym_coded(arg)
                if sym is None:  # ArithExpr head: generic path only.
                    batch_ok = False
                    break
                bhead.append(sym)
        #: Symbolic batch program + head for the vectorized executor,
        #: or None when the body/head uses arithmetic (or is empty) and
        #: the batch lowering must fall back to :meth:`execute`.
        self.batch_plan = tuple(bsteps) if batch_ok and bsteps else None
        self.batch_head = tuple(bhead) if self.batch_plan is not None \
            else None

        def head_fn(env, _getters=head_getters):
            return tuple(g(env) for g in _getters)

        self._head_fn = head_fn
        self.n_slots = len(slot_of)
        self._slot_items = tuple(slot_of.items())

        # Second pass: chain the closures innermost-first.
        def emit_solution(env, ctx):
            ctx.emit(env)

        self._entry = _chain(plans, emit_solution)
        # ``fuse=False`` skips both fusion passes when the caller knows
        # this kernel will run through its batch form (the vectorized
        # executor): fusion's codegen would be paid on every compile
        # and used only on the rare hook/decline fallback, where the
        # unfused chain produces identical rows and counters anyway.
        # Kernels without a batch plan always fall back, so fuse those.
        if not fuse and self.batch_plan is not None:
            self._fast_entry = None
            self._deep_fn = None
        else:
            self._fast_entry = self._try_fuse_tail(plans, slot_of)
            self._deep_fn = self._try_fuse_body(sym_plans, slot_of)
        self.fused = self._fast_entry is not None
        self.deep_fused = self._deep_fn is not None
        #: Ordinal (into :attr:`sources`) of the anchor: the full-scan
        #: source that is also the *first executed step* of the plan —
        #: the outermost loop of the join, and therefore the axis the
        #: parallel executor partitions a firing over.  None when the
        #: plan opens with anything else (a probe, a constant check):
        #: partitioning an inner scan would re-run the outer steps once
        #: per shard and break exact counter parity.
        self.anchor = 0 if plans and plans[0][0] == "atom" \
            and plans[0][2] is None else None

    def _try_fuse_tail(self, plans: list[tuple],
                       slot_of: dict[Variable, int]):
        """Build the fused fast entry, or None when fusion doesn't apply.

        Requirements: interned storage, the last planned step is a
        positive atom with no in-atom equality checks (every bucket row
        matches), and every head argument is a variable or constant.
        The head tuple is then a pure projection of earlier-bound slots
        and the tail row's columns, expressed as one generated list
        comprehension compiled with :func:`eval` — per matched row the
        interpreter executes projection bytecode only, no closure call.
        """
        if self.symbols is None or not plans:
            return None
        tail = plans[-1]
        if tail[0] != "atom":
            return None
        _, src, key_getters, writes, checks = tail
        if checks or not self.rule.head.args:
            return None
        col_of_slot = {s: c for c, s in writes}
        parts: list[str] = []
        for arg in self.rule.head.args:
            if isinstance(arg, Constant):
                parts.append(repr(self.symbols.intern(arg.value)))
            elif isinstance(arg, Variable):
                slot = slot_of[arg]
                column = col_of_slot.get(slot)
                parts.append(f"row[{column}]" if column is not None
                             else f"env[{slot}]")
            else:  # ArithExpr head: keep the generic path.
                return None
        source_text = (f"lambda env, bucket: "
                       f"[({', '.join(parts)},) for row in bucket]")
        builder = eval(source_text, {"__builtins__": {}}, {})  # noqa: S307
        fused = _make_fused_tail_step(src, key_getters, builder)
        self._step_notes.append(
            f"fuse         tail -> {self.rule.head} "
            f"[({', '.join(parts)})]")
        return _chain(plans[:-1], fused)

    def _try_fuse_body(self, sym_plans: list[tuple] | None,
                       slot_of: dict[Variable, int]):
        """Compile the *whole body* to one generated function, or None.

        Whole-body fusion subsumes tail fusion: when every planned step
        is a positive database atom (no comparisons, binds or
        negations) and the head is built from variables and constants
        only, the entire join is expressed as a cascade of generated
        list comprehensions over int codes — one per atom level, each
        materializing the matched row prefixes of that level — executed
        by :func:`exec`-compiled bytecode with **zero** per-row Python
        calls.  The per-level list lengths reproduce the closure
        chain's ``lookups``/``rows_matched`` accounting exactly (level
        ``k`` is entered once per row matched at level ``k-1``), so
        compiled statistics stay bit-identical to the interpreter's.

        Returns ``kern(rels) -> (head_rows, level_counts)``.
        """
        if self.symbols is None or not sym_plans:
            return None
        # slot -> "r{level}[{column}]" at the slot's first write.
        ref: dict[int, str] = {}
        for level, (_src, _keys, writes, _checks) in enumerate(sym_plans):
            for column, slot in writes:
                ref.setdefault(slot, f"r{level}[{column}]")
        parts: list[str] = []
        for arg in self.rule.head.args:
            if isinstance(arg, Constant):
                parts.append(repr(self.symbols.intern(arg.value)))
            elif isinstance(arg, Variable):
                expr = ref.get(slot_of[arg])
                if expr is None:
                    return None
                parts.append(expr)
            else:  # ArithExpr head: keep the generic path.
                return None
        head_expr = f"({', '.join(parts)},)" if parts else "()"
        last = len(sym_plans) - 1
        lines = ["def _kern(rels):"]
        names: list[str] = []
        for level, (src, keys, writes, checks) in enumerate(sym_plans):
            if keys is None:
                source = f"rels[{src}]"
            else:
                key = ", ".join(repr(payload) if kind == "const"
                                else ref[payload]
                                for kind, payload in keys)
                source = f"rels[{src}].get(({key},), ())"
            if level == last:
                item = head_expr
            elif level == 0:
                item = "r0"  # bare rows; tuples only once joined
            else:
                item = "(" + ", ".join(f"r{i}"
                                       for i in range(level + 1)) + ",)"
            gens = f"for r{level} in {source}"
            if level == 1:
                gens = f"for r0 in {names[0]} " + gens
            elif level > 1:
                prefix = ", ".join(f"r{i}" for i in range(level))
                gens = f"for ({prefix},) in {names[-1]} " + gens
            conds = "".join(f" if r{level}[{column}] == {ref[slot]}"
                            for column, slot in checks)
            name = "out" if level == last else f"lvl{level}"
            names.append(name)
            lines.append(f"    {name} = [{item} {gens}{conds}]")
        counts = ", ".join(f"len({name})" for name in names)
        lines.append(f"    return out, ({counts},)")
        namespace: dict = {}
        exec("\n".join(lines), {"__builtins__": {}, "len": len},  # noqa: S102
             namespace)
        self._step_notes.append(
            f"fuse         body -> {self.rule.head} [{head_expr}]")
        return namespace["_kern"]

    @property
    def interned(self) -> bool:
        """Whether head rows come out in the coded storage domain."""
        return self.symbols is not None

    # -- execution -----------------------------------------------------------
    def resolve(self, fetch: Fetch) -> list:
        """Resolve every source to its probe target, in ordinal order.

        Returns the list ``execute`` would build internally: the hash
        index dict for probe sources, the raw row container for
        scan/neg/member sources.  The parallel executor resolves once,
        substitutes the anchor slot per shard, and passes the list back
        through ``execute(rels=...)``.
        """
        rels: list = []
        for body_index, atom, cols, kind in self.sources:
            relation = fetch(atom, body_index)
            if kind == "probe":
                rels.append(relation.index_for(cols))
            else:  # scan / neg / member: the raw (read-only) row container
                rels.append(relation.raw_rows())
        return rels

    def execute(self, fetch: Optional[Fetch], stats: EvalStats,
                hook: Optional[Hook] = None,
                round_index: int = 0,
                rels: list | None = None) -> list[Row]:
        """Run the kernel and return the derived head rows (buffered).

        ``fetch`` resolves each atom occurrence to its relation exactly
        as for the interpreter, so delta redirection works unchanged;
        probe targets (index dict or row container) are resolved once
        per call, not per tuple.  Callers may instead pass ``rels`` (a
        :meth:`resolve` result, possibly with sources substituted — the
        parallel executor's shard buckets) and ``fetch`` is then
        ignored.  Rows come back in the kernel's storage domain: codes
        when :attr:`interned` (insert them with ``raw_add``), plain
        values otherwise.  When ``hook`` is given, a value-domain
        ``Binding`` dict view of the slot environment is materialized
        per solution and the hook may veto the row — the fast path
        never builds it.
        """
        ctx = _Ctx()
        if rels is None:
            assert fetch is not None
            rels = self.resolve(fetch)
        ctx.rels = rels
        if hook is None and self._deep_fn is not None:
            out, counts = self._deep_fn(rels)
            # Level k runs once per row matched at level k-1 (plus one
            # entry into level 0): identical accounting to the chain.
            stats.atom_lookups += 1 + sum(counts[:-1])
            stats.rows_matched += sum(counts)
            return out
        out: list[Row] = []
        env: list = [None] * self.n_slots
        if hook is None and self._fast_entry is not None:
            ctx.out = out
            self._fast_entry(env, ctx)
        else:
            head_fn = self._head_fn
            if hook is None:
                def emit(e) -> None:
                    out.append(head_fn(e))
            else:
                rule = self.rule
                slot_items = self._slot_items
                symbols = self.symbols
                if symbols is None:
                    def emit(e) -> None:
                        binding = {var: e[s] for var, s in slot_items}
                        if hook(rule, binding, round_index):
                            out.append(head_fn(e))
                else:
                    values = symbols.values

                    def emit(e) -> None:
                        binding = {var: values[e[s]]
                                   for var, s in slot_items}
                        if hook(rule, binding, round_index):
                            out.append(head_fn(e))
            ctx.emit = emit
            self._entry(env, ctx)
        stats.atom_lookups += ctx.lookups
        stats.rows_matched += ctx.rows
        stats.comparisons_checked += ctx.cmps
        stats.negation_checks += ctx.negs
        return out

    # -- introspection -------------------------------------------------------
    def describe(self) -> str:
        """Render the compiled step program (one line per step)."""
        mode = ", interned" if self.symbols is not None else ""
        lines = [f"{self.rule.label or '?'}: {self.rule} "
                 f"[{self.n_slots} slots{mode}]"]
        for number, note in enumerate(self._step_notes, start=1):
            lines.append(f"  {number}. {note}")
        if not self._step_notes:
            lines.append("  (empty body: emits the ground head once)")
        return "\n".join(lines)


class KernelCache:
    """Per-evaluation cache of compiled kernels, with drift replanning.

    Kernels are keyed by ``(rule, variant)`` where ``variant`` is the
    engine's delta-redirection tag (``None`` for the base plan, the
    redirected body index for a semi-naive delta variant), so each
    (stratum, delta-variant) pair compiles exactly once and is reused
    across rounds — *until its plan goes stale*.

    Under the adaptive planner (``adaptive=True``) every cache entry
    remembers the sizes of its positive sources at plan time.  On each
    hit those sizes are re-read through the caller's ``sizes`` callback
    (delta-aware); when any source has grown or shrunk past
    ``replan_threshold`` (default 4x, both directions, ignoring
    relations that never exceed 16 rows) the kernel is recompiled
    against current statistics.  Because the snapshot resets to the
    *new* sizes on every replan, a source growing monotonically to ``n``
    rows triggers at most ``log_threshold(n)`` replans — O(log n) per
    (rule, variant) per fixpoint — and ``max_replans`` caps the count
    outright for adversarial oscillation.
    """

    __slots__ = ("keep_atom_order", "symbols", "adaptive",
                 "replan_threshold", "replan_floor", "max_replans",
                 "replans", "fuse", "on_replan", "_kernels",
                 "_replan_counts")

    def __init__(self, keep_atom_order: bool = False,
                 symbols: SymbolTable | None = None,
                 adaptive: bool = False,
                 replan_threshold: float = 4.0,
                 replan_floor: int = 16,
                 max_replans: int = 16,
                 fuse: bool = True,
                 on_replan: Callable[[Rule], None] | None = None) -> None:
        self.keep_atom_order = keep_atom_order
        self.symbols = symbols
        #: False under the vectorized executor: batch-lowerable kernels
        #: skip the fusion codegen they would never use.
        self.fuse = fuse
        self.adaptive = adaptive
        self.replan_threshold = replan_threshold
        #: Sources smaller than this (both then and now) never trigger.
        self.replan_floor = replan_floor
        self.max_replans = max_replans
        #: Total recompilations caused by drift, across all keys.
        self.replans = 0
        #: Optional drift-replan observer (rule that drifted).  The
        #: cost-based optimizer hooks this to re-enter its per-rule
        #: enumeration (e.g. batch-vs-row kernel choice) against the
        #: statistics that triggered the replan.
        self.on_replan = on_replan
        self._kernels: dict[tuple[Rule, object],
                            tuple[CompiledKernel, tuple[int, ...]]] = {}
        self._replan_counts: dict[tuple[Rule, object], int] = {}

    def __len__(self) -> int:
        return len(self._kernels)

    def _snapshot(self, kernel: CompiledKernel,
                  sizes: Sizes) -> tuple[int, ...]:
        return tuple(sizes(atom, body_index)
                     for body_index, atom, _cols, kind in kernel.sources
                     if kind != "neg")

    def _drifted(self, kernel: CompiledKernel, sizes: Sizes,
                 snapshot: tuple[int, ...]) -> bool:
        threshold = self.replan_threshold
        floor = self.replan_floor
        position = 0
        for body_index, atom, _cols, kind in kernel.sources:
            if kind == "neg":
                continue
            then = snapshot[position]
            position += 1
            now = sizes(atom, body_index)
            big, small = (now, then) if now >= then else (then, now)
            if big >= floor and big >= threshold * max(1, small):
                return True
        return False

    def kernel(self, rule: Rule, variant: object, sizes: Sizes,
               cost: Cost | None = None) -> CompiledKernel:
        key = (rule, variant)
        entry = self._kernels.get(key)
        if entry is not None:
            kernel, snapshot = entry
            if not self.adaptive \
                    or self._replan_counts.get(key, 0) >= self.max_replans \
                    or not self._drifted(kernel, sizes, snapshot):
                return kernel
            self._replan_counts[key] = self._replan_counts.get(key, 0) + 1
            self.replans += 1
            if self.on_replan is not None:
                self.on_replan(rule)
        kernel = CompiledKernel(
            rule, sizes, keep_atom_order=self.keep_atom_order,
            cost=cost, symbols=self.symbols, fuse=self.fuse)
        self._kernels[key] = (kernel, self._snapshot(kernel, sizes))
        return kernel


def compile_rule(rule: Rule, sizes: Sizes,
                 keep_atom_order: bool = False,
                 cost: Cost | None = None,
                 symbols: SymbolTable | None = None) -> CompiledKernel:
    """Compile one rule body into a :class:`CompiledKernel`."""
    return CompiledKernel(rule, sizes, keep_atom_order=keep_atom_order,
                          cost=cost, symbols=symbols)
