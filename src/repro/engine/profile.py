"""Lightweight evaluation profiling: per-kernel and per-round breakdown.

An :class:`EvalProfile` threads through
:func:`~repro.engine.seminaive.seminaive_evaluate` (``profile=``) and
collects, without touching the unprofiled hot path:

- per-kernel wall time: rule firings keyed by the engine's rule key
  (label or ``pred#index``) plus the delta-variant suffix, with call
  counts and derived-row totals, so a bench regression is attributable
  to a specific kernel rather than a workload total;
- per-round delta sizes: after every semi-naive round, the frontier
  cardinality of each recursive predicate.

``as_dict()`` is the JSON shape embedded in ``BENCH_engine.json`` under
``--profile``.
"""

from __future__ import annotations

__all__ = ["EvalProfile"]


class EvalProfile:
    """Accumulates kernel timings and round frontier sizes."""

    __slots__ = ("kernels", "rounds")

    def __init__(self) -> None:
        #: kernel key -> {"calls", "seconds", "rows"}
        self.kernels: dict[str, dict] = {}
        #: one entry per completed round: {"round", "deltas"}
        self.rounds: list[dict] = []

    def record_fire(self, key: str, seconds: float, rows: int) -> None:
        entry = self.kernels.get(key)
        if entry is None:
            self.kernels[key] = {"calls": 1, "seconds": seconds,
                                 "rows": rows}
        else:
            entry["calls"] += 1
            entry["seconds"] += seconds
            entry["rows"] += rows

    def record_round(self, round_index: int,
                     delta_sizes: dict[str, int]) -> None:
        self.rounds.append({"round": round_index,
                            "deltas": dict(delta_sizes)})

    def as_dict(self) -> dict:
        kernels = {
            key: {"calls": entry["calls"],
                  "seconds": round(entry["seconds"], 6),
                  "rows": entry["rows"]}
            for key, entry in sorted(self.kernels.items())}
        return {"kernels": kernels, "rounds": self.rounds}
