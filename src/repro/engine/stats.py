"""Cardinality statistics for selectivity-based join planning.

The greedy planner orders joins by boundness and raw relation size —
a blunt cost model: a million-row relation probed on a near-key column
is cheaper than a thousand-row scan, and a delta relation that was empty
at plan time may carry the whole frontier three rounds later.

:class:`RelationStats` maintains, per relation, the row count and a
per-column distinct-count estimate, updated incrementally as rows are
inserted (``Relation.add`` / ``add_all`` / the raw kernel insert path
feed :meth:`observe`).  From those two quantities the classic
independence-assumption estimate follows: probing with columns ``B``
bound is expected to match

    ``cardinality / prod(distinct(c) for c in B)``

rows per probe.  :meth:`probe_estimate` is the cost the adaptive
planner (``planner="adaptive"``) minimizes when choosing the next body
atom, and the quantity ``explain --stats`` reports per plan step.

The ``epoch`` counter advances once per observed insert; plans record
the epochs of the statistics they consulted, so introspection can tell
*which* state of the world a join order was derived from, and the
kernel cache can cheaply decide whether a cached plan is stale (see
``KernelCache`` in :mod:`repro.engine.compile` for the drift rule).

The module is deliberately free of imports from :mod:`repro.facts`:
relations attach a :class:`RelationStats` lazily (``enable_stats``)
without creating an import cycle.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class RelationStats:
    """Incrementally-maintained cardinality + distinct-count estimates.

    Distinct counts are exact (one value set per column); for the
    workload sizes this engine targets the sets are cheaper than the
    sampling sketches a disk-based system would use, and exactness keeps
    the planner deterministic.
    """

    __slots__ = ("arity", "cardinality", "epoch", "_columns")

    def __init__(self, arity: int,
                 rows: Iterable[Sequence] = ()) -> None:
        self.arity = arity
        self.cardinality = 0
        #: Advances once per observed insert since the stats were
        #: enabled; plans snapshot it to date their estimates.
        self.epoch = 0
        self._columns: tuple[set, ...] = tuple(
            set() for _ in range(arity))
        for row in rows:
            self.observe(row)

    def __repr__(self) -> str:
        distincts = [len(column) for column in self._columns]
        return (f"RelationStats(n={self.cardinality}, "
                f"distinct={distincts}, epoch={self.epoch})")

    # -- maintenance ---------------------------------------------------------
    def observe(self, row: Sequence) -> None:
        """Account for one newly inserted row."""
        self.cardinality += 1
        self.epoch += 1
        for column, value in zip(self._columns, row):
            column.add(value)

    def observe_all(self, rows: Iterable[Sequence]) -> None:
        for row in rows:
            self.observe(row)

    def forget(self, row: Sequence) -> None:
        """Account for one removed row.

        Cardinality stays exact.  The per-column distinct sets keep the
        removed values — a value may still occur in other rows, and
        tracking occurrence counts would put a counter update on the
        insert hot path — so after deletions :meth:`distinct` is an
        *upper bound*.  That only makes :meth:`probe_estimate` slightly
        optimistic, which is safe for join ordering; incremental
        maintenance deletes a small fraction of a relation per update,
        so the bound stays tight in practice.
        """
        self.cardinality -= 1
        self.epoch += 1

    def reset(self) -> None:
        """Forget everything (the relation was cleared)."""
        self.cardinality = 0
        self.epoch += 1
        for column in self._columns:
            column.clear()

    # -- estimates -----------------------------------------------------------
    def distinct(self, column: int) -> int:
        """Estimated number of distinct values in ``column``."""
        return len(self._columns[column])

    def probe_estimate(self, bound_columns: Sequence[int]) -> float:
        """Expected rows matched by one probe with ``bound_columns``.

        Independence assumption: each bound column divides the
        cardinality by its distinct count.  With no bound columns this
        is the full scan cost (the cardinality); an empty relation
        estimates 0 regardless of the pattern.
        """
        estimate = float(self.cardinality)
        for column in bound_columns:
            estimate /= max(1, len(self._columns[column]))
        return estimate

    def selectivity(self, bound_columns: Sequence[int]) -> float:
        """Fraction of the relation one probe is expected to match."""
        if self.cardinality == 0:
            return 0.0
        return self.probe_estimate(bound_columns) / self.cardinality
