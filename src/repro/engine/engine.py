"""High-level evaluation facade.

:func:`evaluate` runs a program over an EDB with the chosen fixpoint
method and returns an :class:`EvaluationResult` bundling the IDB, the
instrumentation counters and query helpers.  This is the public entry
point used by examples, tests and the benchmark harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..datalog.atoms import Atom
from ..datalog.parser import parse_query
from ..datalog.program import Program
from ..datalog.terms import Constant, Variable
from ..errors import EvaluationError, ReproError
from ..facts.database import Database
from ..facts.symbols import validate_interning
from ..runtime.budget import Budget, resolve_budget
from .bindings import EvalStats
from .compile import EXECUTORS, validate_executor
from .magic import MagicProgram, adornment_of, magic_rewrite
from .naive import naive_evaluate
from .profile import EvalProfile
from .seminaive import DerivationHook, answers, seminaive_evaluate
from .vectorize import columnar_backend_factory

#: Known fixpoint methods.
METHODS = ("seminaive", "naive")


@dataclass
class EvaluationResult:
    """The outcome of evaluating a program over a database."""

    program: Program
    edb: Database
    idb: Database
    stats: EvalStats
    elapsed_seconds: float
    method: str = "seminaive"
    magic: Optional[MagicProgram] = field(default=None, repr=False)
    executor: str = "compiled"
    #: :class:`repro.engine.optimizer.ChosenPlan` when the cost-based
    #: enumerating optimizer picked the evaluated program.
    choice: Optional[object] = field(default=None, repr=False)

    def facts(self, pred: str) -> frozenset[tuple]:
        """All derived tuples of an IDB predicate."""
        return frozenset(self.idb.facts(pred))

    def count(self, pred: str) -> int:
        return len(self.idb.facts(pred))

    def query(self, text_or_literals) -> set[tuple]:
        """Evaluate a conjunctive query over EDB + IDB.

        Accepts query text (``"p(X, 3), X > 2"``) or parsed literals.
        Returns tuples over the query variables in order of appearance.
        """
        if isinstance(text_or_literals, str):
            literals = parse_query(text_or_literals).literals
        else:
            literals = tuple(text_or_literals)
        return answers(literals, self.program, self.edb, self.idb,
                       self.stats)


def evaluate(program: Program, edb: Database, method: str = "seminaive",
             hook: Optional[DerivationHook] = None,
             planner: str = "greedy",
             budget: Budget | None = None,
             executor: str = "compiled",
             interning: str = "off",
             shards: int | None = None,
             parallel_mode: str = "auto",
             profile: EvalProfile | None = None,
             dataflow: str = "off") -> EvaluationResult:
    """Evaluate ``program`` bottom-up over ``edb``.

    Args:
        program: the Datalog program.
        edb: the extensional database (never mutated).
        method: ``"seminaive"`` (default) or ``"naive"``.
        hook: optional per-derivation veto hook (semi-naive only); used by
            the residue-guided baseline.
        planner: ``"greedy"`` reorders joins by boundness and size;
            ``"adaptive"`` by live cardinality statistics, replanning
            mid-fixpoint when delta sizes drift from the plan-time
            estimate; ``"source"`` keeps database atoms in rule order
            (the fixed join orders the paper's era assumed; used by
            experiment E2); ``"cbo"`` the cost-based enumerating
            optimizer (:mod:`repro.engine.optimizer`) — for
            whole-program evaluation its rewrite space degenerates to
            the identity program (every result and counter stays
            bit-identical to ``"adaptive"``) plus per-rule
            batch-vs-row kernel choice under the vectorized executor;
            the full space (magic per adornment, residue pushing,
            linearization, fusion) engages at the query-bearing entry
            points :func:`repro.engine.optimizer.cbo_evaluate` /
            :func:`repro.engine.optimizer.cbo_answers`.
        budget: optional :class:`repro.runtime.Budget` bounding the run;
            exhaustion or cancellation raises the typed errors of
            :mod:`repro.errors` carrying the partial stats.
        executor: ``"compiled"`` (default) runs rule bodies as cached
            slot-based kernels (:mod:`repro.engine.compile`);
            ``"interpreted"`` uses the reference interpreter;
            ``"parallel"`` shards each kernel firing over a hash
            partition of its anchor scan (:mod:`repro.engine.parallel`);
            ``"vectorized"`` stores relations in columnar arrays and
            processes whole delta frontiers per firing as batch kernels
            with column-level predicate caching
            (:mod:`repro.engine.vectorize`; most effective with
            ``interning="on"``).  All derive identical databases with
            identical counters.
        shards: shard count for ``executor="parallel"`` (default
            :data:`~repro.engine.parallel.DEFAULT_SHARDS`); ignored by
            the other executors.
        parallel_mode: worker pool for ``executor="parallel"`` —
            ``"auto"`` (in-process below the fork threshold),
            ``"serial"``, ``"thread"`` or ``"fork"``.
        interning: ``"on"`` re-encodes the EDB over a shared
            :class:`~repro.facts.symbols.SymbolTable` (one pass) so the
            whole fixpoint joins over dense ``int`` codes; ``"off"``
            (default) evaluates in whatever mode ``edb`` already is —
            an EDB loaded with ``load_directory(..., interning=True)``
            stays interned either way.
        profile: optional :class:`~repro.engine.profile.EvalProfile`
            collecting per-kernel wall time and per-round delta sizes
            (semi-naive method only).
        dataflow: ``"on"`` runs the static dataflow analysis
            (:mod:`repro.analysis.dataflow`) over the program + EDB
            first and feeds the result into evaluation: provably-dead
            rules are skipped, provably-true comparisons drop out of
            the vectorized batch kernels, and the adaptive planner
            seeds cold (empty-relation) cost probes with static size
            bounds.  ``"off"`` (default) changes nothing.  Derived
            facts, derivation counts, budget payloads and chaos
            ordinals are identical either way.
    """
    stats = EvalStats()
    validate_executor(executor)
    validate_interning(interning)
    budget = resolve_budget(budget)
    flow = None
    if dataflow not in ("off", "on"):
        raise EvaluationError(
            f"unknown dataflow mode {dataflow!r}; expected 'off' or 'on'")
    if dataflow == "on":
        # Analyze in the value domain, before any interning re-encode.
        from ..analysis.dataflow import analyze_dataflow
        try:
            flow = analyze_dataflow(program, edb=edb)
        except ReproError:
            flow = None  # malformed programs fail at load time instead
    if interning == "on":
        # The vectorized executor gets columnar EDB storage in the same
        # single re-encoding pass interning already pays for.
        edb = edb.interned(backend_factory=columnar_backend_factory
                           if executor == "vectorized" else None)
    start = time.perf_counter()
    if method == "seminaive":
        idb = seminaive_evaluate(program, edb, stats, hook=hook,
                                 planner=planner, budget=budget,
                                 executor=executor, shards=shards,
                                 parallel_mode=parallel_mode,
                                 profile=profile, dataflow=flow)
    elif method == "naive":
        if hook is not None:
            raise EvaluationError("hooks require the semi-naive method")
        idb = naive_evaluate(program, edb, stats, budget=budget,
                             executor=executor, planner=planner,
                             shards=shards, parallel_mode=parallel_mode,
                             dataflow=flow)
    else:
        raise EvaluationError(
            f"unknown method {method!r}; expected one of {METHODS}")
    elapsed = time.perf_counter() - start
    return EvaluationResult(program, edb, idb, stats, elapsed, method,
                            executor=executor)


def evaluate_with_magic(program: Program, edb: Database, query: Atom,
                        budget: Budget | None = None,
                        executor: str = "compiled",
                        planner: str = "greedy",
                        interning: str = "off",
                        shards: int | None = None,
                        parallel_mode: str = "auto") -> EvaluationResult:
    """Magic-rewrite ``program`` for ``query`` and evaluate the result.

    The returned result's :meth:`EvaluationResult.facts` must be asked for
    the *adorned* query predicate; use :attr:`EvaluationResult.magic` or
    the convenience :func:`magic_answers`.  ``budget`` covers the
    rewriting *and* the evaluation of the rewritten program.
    ``planner`` and ``interning`` are as in :func:`evaluate`.
    """
    budget = resolve_budget(budget)
    validate_interning(interning)
    if interning == "on":
        edb = edb.interned(backend_factory=columnar_backend_factory
                           if executor == "vectorized" else None)
    rewritten = magic_rewrite(program, query, budget=budget)
    stats = EvalStats()
    start = time.perf_counter()
    idb = seminaive_evaluate(rewritten.program, edb, stats, budget=budget,
                             executor=executor, planner=planner,
                             shards=shards, parallel_mode=parallel_mode)
    elapsed = time.perf_counter() - start
    return EvaluationResult(rewritten.program, edb, idb, stats, elapsed,
                            method="seminaive+magic", magic=rewritten,
                            executor=executor)


def magic_answers(program: Program, edb: Database, query: Atom,
                  budget: Budget | None = None,
                  executor: str = "compiled",
                  planner: str = "greedy",
                  interning: str = "off",
                  shards: int | None = None,
                  parallel_mode: str = "auto") -> frozenset[tuple]:
    """Answers to ``query`` (full tuples) computed via magic sets."""
    result = evaluate_with_magic(program, edb, query, budget=budget,
                                 executor=executor, planner=planner,
                                 interning=interning, shards=shards,
                                 parallel_mode=parallel_mode)
    assert result.magic is not None
    rows = result.magic.answers(result.idb)
    # Filter on the query's constant positions (magic guarantees relevance
    # but adorned relations may contain tuples for every seed binding).
    wanted = []
    for row in rows:
        keep = True
        for value, arg in zip(row, query.args):
            if isinstance(arg, Constant) and arg.value != value:
                keep = False
                break
        if keep:
            wanted.append(row)
    return frozenset(wanted)


def query_answers(program: Program, edb: Database, query: Atom,
                  method: str = "seminaive",
                  executor: str = "compiled") -> frozenset[tuple]:
    """Answers to a single-atom query without magic rewriting."""
    result = evaluate(program, edb, method=method, executor=executor)
    rows = result.facts(query.pred) if query.pred in \
        program.idb_predicates else edb.facts(query.pred)
    wanted = []
    for row in rows:
        binding: dict[Variable, object] = {}
        keep = True
        for value, arg in zip(row, query.args):
            if isinstance(arg, Constant):
                if arg.value != value:
                    keep = False
                    break
            elif isinstance(arg, Variable):
                if binding.setdefault(arg, value) != value:
                    keep = False
                    break
        if keep:
            wanted.append(row)
    return frozenset(wanted)


def consistent_answers(programs: Iterable[Program], edb: Database,
                       pred: str) -> bool:
    """True when every program computes the same relation for ``pred``.

    Convenience used by equivalence tests and examples.
    """
    baseline: frozenset[tuple] | None = None
    for program in programs:
        result = evaluate(program, edb)
        current = result.facts(pred)
        if baseline is None:
            baseline = current
        elif current != baseline:
            return False
    return True
