"""Semi-naive bottom-up evaluation with delta relations.

This is the engine the paper's evaluation-paradigm comparison assumes
("the various subqueries computed in an iteration of the bottom-up
evaluation loop", Section 1).  Per stratum:

1. *Initialization round*: every rule fires against the materialized lower
   strata with same-stratum IDB relations still empty, seeding the deltas.
2. *Delta rounds*: a rule with ``k`` same-stratum body occurrences is
   evaluated ``k`` times, each time redirecting one occurrence to the
   delta of the previous round.  For linear rules — the paper's setting —
   ``k = 1`` and this is the textbook optimal schedule.

A per-rule *hook* lets :mod:`repro.baselines.guided` inject residue checks
into each iteration, which is exactly where the run-time overhead of the
evaluation-based approach lives.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Callable, Iterable, Optional

if TYPE_CHECKING:
    from ..analysis.dataflow import DataflowResult

from ..datalog.atoms import Atom
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..errors import BudgetExceededError
from ..facts.database import Database
from ..facts.relation import Relation
from ..runtime import chaos
from ..runtime.budget import Budget, resolve_budget
from .bindings import (Binding, EvalStats, instantiate_head, solve_body,
                       validate_planner)
from .compile import KernelCache, validate_executor
from .naive import DEFAULT_MAX_ITERATIONS
from .parallel import DEFAULT_SHARDS, ShardExecutor, validate_parallel_mode
from .profile import EvalProfile
from .stratify import stratify
from .vectorize import VectorRunner, columnar_backend_factory

#: Optional per-derivation hook: ``hook(rule, binding, round) -> bool`` —
#: return False to suppress the derivation (used by residue-guided
#: evaluation).  ``round`` counts delta rounds within the stratum: 0 for
#: the initialization round, and a tuple derived in round ``j`` of a
#: linear recursion used the recursive rule exactly ``j`` times.
DerivationHook = Callable[[Rule, Binding, int], bool]


def seminaive_evaluate(program: Program, edb: Database,
                       stats: EvalStats | None = None,
                       max_iterations: int = DEFAULT_MAX_ITERATIONS,
                       hook: Optional[DerivationHook] = None,
                       planner: str = "greedy",
                       budget: Budget | None = None,
                       executor: str = "compiled",
                       shards: int | None = None,
                       parallel_mode: str = "auto",
                       profile: EvalProfile | None = None,
                       dataflow: "DataflowResult | None" = None,
                       ) -> Database:
    """Compute the IDB of ``program`` over ``edb`` semi-naively.

    Returns a new :class:`Database` of IDB relations.  ``hook``, when
    given, is consulted before each head insertion and may veto it.
    ``budget`` (explicit or ambient, see :mod:`repro.runtime.budget`)
    bounds the run; exhaustion raises :class:`BudgetExceededError`
    carrying the partial stats and the last completed delta round.

    ``executor`` selects how rule bodies run: ``"compiled"`` (default)
    lowers each rule once per (stratum, delta-variant) into a
    slot-based kernel (:mod:`repro.engine.compile`) reused across all
    rounds; ``"interpreted"`` keeps the reference
    :func:`~repro.engine.bindings.solve_body` interpreter, the
    semantics oracle; ``"parallel"`` runs the same compiled kernels
    sharded over a hash partition of each firing's anchor scan
    (:mod:`repro.engine.parallel` — ``shards`` buckets, default
    :data:`~repro.engine.parallel.DEFAULT_SHARDS`; ``parallel_mode``
    picks the worker pool); ``"vectorized"`` stores relations
    columnarly and runs each firing as a whole-frontier batch kernel
    (:mod:`repro.engine.vectorize`) with comparison/negation checks
    cached per column.  All derive identical databases with
    identical counters; hooks, chaos injection and budgets behave
    identically under any of them.

    ``profile``, when given, accumulates per-kernel wall time and
    per-round delta sizes (:class:`~repro.engine.profile.EvalProfile`).

    ``planner`` orders joins: ``"greedy"`` (default) by boundness and
    relation size, ``"adaptive"`` by statistics-estimated selectivity
    with drift-triggered replanning (compiled executor; falls back to
    greedy order under the interpreter), ``"source"`` keeps atoms in
    rule order, ``"cbo"`` runs the adaptive machinery over the program
    the enumerating optimizer chose (:mod:`repro.engine.optimizer`),
    adding per-rule batch-vs-row kernel choice under the vectorized
    executor.

    Storage follows the EDB: when ``edb`` is interned (carries a
    :class:`~repro.facts.symbols.SymbolTable`) the IDB and deltas share
    its table and compiled kernels join over dense ``int`` codes,
    inserting derived rows without ever decoding them.
    """
    stats = stats if stats is not None else EvalStats()
    validate_executor(executor)
    validate_planner(planner)
    budget = resolve_budget(budget)
    arities = program.predicate_arities()
    vectorized = executor == "vectorized"
    backend_factory = columnar_backend_factory \
        if vectorized and edb.symbols is not None else None
    idb = Database(symbols=edb.symbols, backend_factory=backend_factory)
    for pred in program.idb_predicates:
        idb.ensure(pred, arities[pred])

    keep_atom_order = planner == "source"
    kernels = None
    pool = None
    vec = VectorRunner(symbols=edb.symbols,
                       true_checks=dataflow.true_checks
                       if dataflow is not None else None) \
        if vectorized else None
    if executor != "interpreted":
        # planner="cbo" executes its chosen candidate with the adaptive
        # runtime machinery (statistics-driven orders, drift replans):
        # whole-program rewrites were decided before the fixpoint
        # (:mod:`repro.engine.optimizer`), so counters stay
        # bit-identical to planner="adaptive" on the same program.
        kernels = KernelCache(keep_atom_order=keep_atom_order,
                              symbols=edb.symbols,
                              adaptive=planner in ("adaptive", "cbo"),
                              fuse=not vectorized)
    if vec is not None and planner == "cbo":
        # Per-rule kernel choice (batch vs row, costed by predicted
        # frontier width); drift replans re-enter the choice.
        from .optimizer import kernel_chooser
        vec.kernel_choice = kernel_chooser(program, edb, idb=idb,
                                           dataflow=dataflow)
        if kernels is not None:
            kernels.on_replan = vec.invalidate
    if executor == "parallel":
        validate_parallel_mode(parallel_mode)
        pool = ShardExecutor(shards if shards is not None
                             else DEFAULT_SHARDS,
                             mode=parallel_mode, symbols=edb.symbols)
    try:
        for stratum in stratify(program):
            _evaluate_stratum(program, stratum, edb, idb, stats,
                              max_iterations, hook, keep_atom_order,
                              budget, kernels, pool, vec, profile,
                              dataflow)
    finally:
        if pool is not None:
            pool.close()
    if kernels is not None:
        stats.replans += kernels.replans
    return idb


def _evaluate_stratum(program: Program, stratum: frozenset[str],
                      edb: Database, idb: Database, stats: EvalStats,
                      max_iterations: int,
                      hook: Optional[DerivationHook],
                      keep_atom_order: bool = False,
                      budget: Budget | None = None,
                      kernels: KernelCache | None = None,
                      pool: ShardExecutor | None = None,
                      vec: VectorRunner | None = None,
                      profile: EvalProfile | None = None,
                      dataflow: "DataflowResult | None" = None) -> None:
    chaos_plan = chaos.active_plan()
    # Provably-dead rules (dataflow analysis) derive no rows under any
    # join order: skipping them changes no facts, derivation counts,
    # budget payloads or chaos ordinals — just saves the firings.
    rules = [r for r in program if r.head.pred in stratum
             and not (dataflow is not None and dataflow.is_dead(r))]
    # Unlabeled rules must not collapse into one per-head bucket: key
    # rule_rows by label when present, else by head predicate and the
    # rule's position within the stratum.
    rule_keys = {id(rule): rule.label or f"{rule.head.pred}#{index}"
                 for index, rule in enumerate(rules)}
    symbols = idb.symbols

    def make_delta(pred: str) -> Relation:
        target = idb.relation(pred)
        if pool is not None:
            # Sharded buckets: next round's scatter over this delta is
            # then free (see :meth:`ShardExecutor.make_delta`).
            return pool.make_delta(pred, target)
        if vec is not None and symbols is not None:
            # Columnar deltas: batch kernels gather frontier columns
            # and probe per-column indexes without tuple allocation.
            return Relation(pred, target.arity, symbols=symbols,
                            backend=columnar_backend_factory(
                                pred, target.arity))
        return Relation(pred, target.arity, symbols=symbols)

    deltas: dict[str, Relation] = {pred: make_delta(pred)
                                   for pred in stratum}

    def base_fetch(atom: Atom, index: int) -> Relation:
        if atom.pred in program.idb_predicates:
            return idb.relation(atom.pred)
        return edb.relation_or_empty(atom.pred, atom.arity)

    def sizes(atom: Atom, index: int) -> int:
        return len(base_fetch(atom, index))

    adaptive = kernels is not None and kernels.adaptive

    def fire(rule: Rule, fetch, round_index: int,
             variant: object = None) -> None:
        stats.rules_fired += 1
        target = idb.relation(rule.head.pred)
        delta = next_deltas[rule.head.pred]
        rows_before = stats.rows_matched
        fire_start = perf_counter() if profile is not None else 0.0
        # Buffer insertions so the body scan sees a snapshot of the
        # relations (a rule may read the relation it writes).
        if kernels is not None:
            if adaptive:
                # Delta-aware: the adaptive planner costs each atom
                # against the relation this occurrence will actually
                # read (the delta for the redirected one), using live
                # cardinality/distinct statistics.
                def sizes_now(atom: Atom, index: int) -> int:
                    return len(fetch(atom, index))

                def cost_now(atom: Atom, index: int,
                             bound_cols: tuple[int, ...],
                             _target: object = variant) -> float:
                    relation = fetch(atom, index)
                    if dataflow is not None and not len(relation):
                        # Cold statistics: the relation is still empty
                        # (first stratum rounds), so probe the static
                        # size bounds instead of a flat zero.
                        estimate = dataflow.probe_estimate(
                            atom.pred, bound_cols)
                    else:
                        estimate = relation.probe_estimate(bound_cols)
                    if index == _target and not bound_cols:
                        # Frontier-anchoring bias: strongly prefer
                        # scanning the delta occurrence.  Every delta
                        # row is new, so join paths rooted there are
                        # exactly the ones that can produce new facts,
                        # while anchoring elsewhere re-enumerates old
                        # paths; and the delta is a fresh relation each
                        # round, so probing it instead would build a
                        # throwaway hash index per round.
                        estimate *= 0.05
                    return estimate

                kernel = kernels.kernel(rule, variant, sizes_now,
                                        cost=cost_now)
            else:
                kernel = kernels.kernel(rule, variant, sizes)
            if pool is not None:
                derived = pool.run(kernel, fetch, stats,
                                   round_index=round_index, hook=hook,
                                   budget=budget,
                                   mutable_preds=stratum)
            elif vec is not None:
                derived = vec.run(kernel, fetch, stats, hook=hook,
                                  round_index=round_index)
            else:
                derived = kernel.execute(fetch, stats, hook=hook,
                                         round_index=round_index)
            # Kernel rows are storage-domain already (codes when
            # interned): insert through the raw path, no re-encoding.
            target_add, delta_add = target.raw_add, delta.raw_add
        else:
            derived = []
            for binding in solve_body(rule, fetch, stats,
                                      keep_atom_order=keep_atom_order):
                if hook is not None \
                        and not hook(rule, binding, round_index):
                    continue
                derived.append(instantiate_head(rule, binding))
            target_add, delta_add = target.add, delta.add
        key = rule_keys[id(rule)]
        if profile is not None:
            fire_key = key if variant is None else f"{key}@d{variant}"
            profile.record_fire(fire_key, perf_counter() - fire_start,
                                len(derived))
        stats.rule_rows[key] = stats.rule_rows.get(key, 0) \
            + stats.rows_matched - rows_before
        # Budget ticks are amortized: `checkpoint` returns how many
        # derivation events may pass before the next check without a
        # counter limit being crossed, so exhaustion payloads stay
        # exact while the hot insert loop pays one Python call per
        # ~interval events instead of one per event.
        last_round = max(round_index - 1, 0)
        if kernels is not None and chaos_plan is None:
            # Bulk insert: the duplicate screen is one C-level set
            # difference per budget window instead of a Python call per
            # derived row.  Counter totals (derivations, duplicates)
            # match the sequential path exactly; the chaos path stays
            # per-row because fault ordinals are per-derivation-event.
            position, total = 0, len(derived)
            while position < total:
                if budget is not None:
                    countdown = budget.checkpoint(stats,
                                                  last_round=last_round)
                    chunk = derived[position:position
                                    + max(countdown, 1)]
                else:
                    chunk = derived if position == 0 \
                        else derived[position:]
                position += len(chunk)
                new_rows = target.raw_merge_new(chunk)
                if new_rows:
                    delta.raw_merge(new_rows)
                    stats.derivations += len(new_rows)
                stats.duplicate_derivations += \
                    len(chunk) - len(new_rows)
            return
        countdown = budget.checkpoint(stats, last_round=last_round) \
            if budget is not None else 0
        for row in derived:
            if chaos_plan is not None:
                chaos_plan.derivation()
            if target_add(row):
                delta_add(row)
                stats.derivations += 1
            else:
                stats.duplicate_derivations += 1
            if budget is not None:
                countdown -= 1
                if countdown <= 0:
                    countdown = budget.checkpoint(
                        stats, last_round=last_round)

    def barrier() -> None:
        """Per-round synchronization point of the parallel executor.

        Fired after a round's new-delta rows have merged: a chaos
        checkpoint for fault injection, then a skew check that may
        repartition each delta — the relation next round's firings
        scatter over — by a freshly-chosen key column.
        """
        if pool is None:
            return
        chaos.checkpoint("parallel:barrier")
        for delta_rel in deltas.values():
            pool.rebalance_if_skewed(delta_rel)

    # Initialization round.
    next_deltas: dict[str, Relation] = {pred: make_delta(pred)
                                        for pred in stratum}
    stats.iterations += 1
    for rule in rules:
        fire(rule, base_fetch, 0)
    deltas = next_deltas
    if profile is not None:
        profile.record_round(0, {pred: len(rel)
                                 for pred, rel in deltas.items()})
    barrier()

    rounds = 0
    while any(len(d) for d in deltas.values()):
        rounds += 1
        stats.iterations += 1
        if rounds > max_iterations:
            raise BudgetExceededError(
                f"semi-naive evaluation exceeded {max_iterations} rounds",
                resource="rounds", limit=max_iterations,
                spent=rounds - 1, stats=stats, last_round=rounds - 1)
        if budget is not None:
            # Exact round-boundary check: deadline, rounds, cancellation
            # (checkpoint above keeps the counters exact mid-round).
            budget.check_round(stats, last_round=rounds - 1)
        next_deltas = {pred: make_delta(pred) for pred in stratum}
        for rule in rules:
            occurrences = [index for index, lit in enumerate(rule.body)
                           if isinstance(lit, Atom) and lit.pred in stratum]
            if not occurrences:
                continue  # already saturated in the initialization round
            for delta_index in occurrences:
                if not len(deltas[rule.body[delta_index].pred]):
                    continue

                def fetch(atom: Atom, index: int,
                          _target: int = delta_index) -> Relation:
                    if index == _target:
                        return deltas[atom.pred]
                    return base_fetch(atom, index)

                fire(rule, fetch, rounds, variant=delta_index)
        deltas = next_deltas
        if profile is not None:
            profile.record_round(rounds, {pred: len(rel)
                                          for pred, rel in deltas.items()})
        barrier()


def answers(query_literals: Iterable, program: Program, edb: Database,
            idb: Database, stats: EvalStats | None = None) -> set[tuple]:
    """Evaluate a conjunctive query over ``edb + idb``.

    Returns the set of tuples of values for the query's *distinguished
    variables* — the variables of the query literals in order of first
    appearance.
    """
    from ..datalog.terms import Variable

    stats = stats if stats is not None else EvalStats()
    literals = tuple(query_literals)
    distinguished: list[Variable] = []
    for lit in literals:
        for var in lit.variables():
            if var not in distinguished:
                distinguished.append(var)

    def fetch(atom: Atom, index: int) -> Relation:
        if atom.pred in program.idb_predicates:
            return idb.relation(atom.pred)
        return edb.relation_or_empty(atom.pred, atom.arity)

    probe = Rule(Atom("__query__", tuple(distinguished)), literals)
    results: set[tuple] = set()
    for binding in solve_body(probe, fetch, stats):
        results.add(tuple(binding[v] for v in distinguished))
    return results
