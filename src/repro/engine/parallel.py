"""Sharded execution of compiled kernels: the ``parallel`` executor.

Semi-naive evaluation spends each delta round firing compiled kernels
whose outermost loop scans a *frontier* — the previous round's delta
(or, in the initialization round, a base relation).  Interned relations
hash-partition cleanly by any column, so a firing splits into ``N``
independent sub-firings, one per shard of the anchor scan, whose
derived-row multisets union to exactly the sequential result.  The
merge — duplicate screening, derivation/duplicate accounting, budget
checkpoints, chaos ordinals — stays centralized in the engine's
existing insert loop, which is what keeps every counter and payload
**bit-identical** to the sequential executor.

:class:`ShardExecutor` owns the policy and the worker plumbing:

- **serial** — shard in-process, one sub-firing per shard on the
  calling thread.  Zero setup cost; the mode ``auto`` picks below the
  fork threshold, and the semantics every other mode must match.
- **thread** — shard across a ``ThreadPoolExecutor``.  The fallback
  when the platform lacks ``fork``; pure-Python joins hold the GIL, so
  this pays off only when kernels release it.
- **fork** — shard across a persistent pool of forked worker
  processes.  Workers hold *replicas* of the static (EDB and
  lower-stratum) relations, shipped once per predicate version and kept
  across rounds; each firing ships only the anchor shard's rows and
  gets derived rows back.  Interned rows travel as packed
  ``array('q')`` code buffers — the interned-code pickling fast path —
  so a message is one bytes blob, not a tree of tuples.

Partitioning never affects results, only balance: the key column is
chosen by :func:`choose_partition_key` (most distinct values wins) and
re-chosen when per-shard statistics drift
(:meth:`ShardExecutor.rebalance_if_skewed`).

Cooperative cancellation propagates to workers: while a fork firing is
in flight the coordinator polls the result pipe under the budget's
deadline/cancellation check, and on exhaustion terminates the pool
before re-raising, so no worker keeps burning CPU past the budget.

Chaos checkpoints ``parallel:scatter`` (before a firing is
partitioned), ``parallel:merge`` (after shard results are gathered)
and ``parallel:barrier`` (each delta-round boundary, fired by the
engine) make the scatter/merge seams fault-injectable like every other
subsystem seam.
"""

from __future__ import annotations

from array import array
from concurrent.futures import ThreadPoolExecutor

from ..datalog.atoms import Atom, Comparison, Negation
from ..datalog.rules import Rule
from ..datalog.terms import ArithExpr
from ..errors import EvaluationError
from ..facts.backend import ColumnarBackend, ShardedBackend
from ..facts.relation import Relation, Row
from ..facts.symbols import SymbolTable
from ..runtime import chaos
from ..runtime.budget import Budget
from .bindings import EvalStats
from .compile import CompiledKernel

#: Default shard count for ``executor="parallel"``.
DEFAULT_SHARDS = 4

#: Worker-pool modes.  ``auto`` shards in-process until a firing's
#: anchor is large enough to amortize process dispatch, then uses the
#: fork pool (or threads where ``fork`` is unavailable).
PARALLEL_MODES = ("auto", "serial", "thread", "fork")

#: ``auto`` switches from in-process sharding to the process pool when
#: the anchor scan of a firing has at least this many rows: below it,
#: message round-trips cost more than the join itself.
DEFAULT_FORK_THRESHOLD = 50_000

#: A delta whose largest shard exceeds this multiple of the ideal
#: (rows / shards) triggers a partition-key re-choice at the barrier.
REBALANCE_FACTOR = 1.5


def validate_parallel_mode(mode: str) -> None:
    if mode not in PARALLEL_MODES:
        raise EvaluationError(
            f"unknown parallel mode {mode!r}; expected one of "
            f"{PARALLEL_MODES}")


def validate_shards(shards: int) -> None:
    if shards < 1:
        raise EvaluationError(
            f"shards must be >= 1, got {shards}")


def choose_partition_key(relation: Relation) -> int:
    """The column to hash-partition ``relation`` by: most distinct wins.

    More distinct values spread rows more evenly across hash buckets
    (the same statistics the adaptive planner maintains answer this at
    zero extra cost); ties break toward the lower column for
    determinism.  Partitioning is a balance heuristic only — any column
    yields correct results, because shard outputs are merged and
    deduplicated centrally.
    """
    best, best_count = 0, -1
    for column in range(relation.arity):
        count = relation.distinct_count(column)
        if count > best_count:
            best, best_count = column, count
    return best


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


# ---------------------------------------------------------------------------
# Interned-code packing (the pickling fast path)
# ---------------------------------------------------------------------------

def _pack_rows(rows, arity: int):
    """Pack interned rows into one ``array('q')`` code buffer.

    A list of 10k 2-tuples pickles as 30k+ objects; the packed form is
    a single bytes blob, which is what makes shipping shard rows to
    fork workers cheap.
    """
    flat = array("q")
    for row in rows:
        flat.extend(row)
    return flat


def _unpack_rows(flat, arity: int) -> list[Row]:
    if arity == 0:
        return [()] if len(flat) else []
    it = iter(flat)
    return [row for row in zip(*([it] * arity))]


def _columnar_payload(relation: Relation):
    """Columnar replica payload: the backend's column arrays, verbatim.

    A columnar relation already holds one ``array('q')`` per column, so
    the replica ships those buffers directly — no per-row packing loop
    at all — and the worker rebuilds rows with one C-level ``zip``.
    ``None`` when the relation is not columnar (or arity 0, where the
    column set cannot carry the row count).
    """
    backend = relation.backend
    if relation.arity == 0 or not isinstance(backend, ColumnarBackend):
        return None
    return tuple(backend.columns())


def _rule_has_arith(rule: Rule) -> bool:
    """Rules with arithmetic cannot run in fork/thread workers.

    Evaluating an arithmetic term interns its *result* — a mutation of
    the shared symbol table that would assign divergent codes in a
    worker process (and race in a worker thread), so such firings stay
    on the coordinator, sharded in-process.
    """
    def term_has(term) -> bool:
        return isinstance(term, ArithExpr)

    if any(term_has(arg) for arg in rule.head.args):
        return True
    for lit in rule.body:
        if isinstance(lit, Comparison):
            if term_has(lit.lhs) or term_has(lit.rhs):
                return True
        elif isinstance(lit, Negation):
            if any(term_has(arg) for arg in lit.atom.args):
                return True
        elif isinstance(lit, Atom):
            if any(term_has(arg) for arg in lit.args):
                return True
    return False


# ---------------------------------------------------------------------------
# Fork worker
# ---------------------------------------------------------------------------

def _worker_main(conn) -> None:  # pragma: no cover - subprocess body
    """Body of one fork worker: replicas + kernel cache + fire loop."""
    symbols: SymbolTable | None = None
    interned = False
    relations: dict[str, Relation] = {}
    rules: dict[int, Rule] = {}
    kernels: dict[tuple[int, tuple[int, ...]], CompiledKernel] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        tag = message[0]
        try:
            if tag == "mode":
                interned = message[1]
                symbols = SymbolTable() if interned else None
                relations.clear()
                rules.clear()
                kernels.clear()
            elif tag == "sync":
                assert symbols is not None
                for value in message[1]:
                    symbols.intern(value)
            elif tag == "rule":
                rules[message[1]] = message[2]
            elif tag == "rel":
                _tag, name, arity, payload = message
                relation = Relation(name, arity, symbols=symbols)
                if isinstance(payload, tuple):
                    # Columnar replica: one array('q') per column.
                    rows = list(zip(*payload))
                elif interned:
                    rows = _unpack_rows(payload, arity)
                else:
                    rows = payload
                relation.raw_merge(rows)
                relations[name] = relation
            elif tag == "fire":
                _tag, rule_key, order, anchor_ordinal, payload = message
                kernel = kernels.get((rule_key, tuple(order)))
                if kernel is None:
                    kernel = CompiledKernel(
                        rules[rule_key], lambda atom, index: 0,
                        symbols=symbols, order=list(order))
                    kernels[(rule_key, tuple(order))] = kernel
                arity = kernel.sources[anchor_ordinal][1].arity
                anchor_rows = _unpack_rows(payload, arity) if interned \
                    else payload
                rels: list = []
                for ordinal, (body_index, atom, cols, kind) \
                        in enumerate(kernel.sources):
                    if ordinal == anchor_ordinal:
                        rels.append(anchor_rows)
                        continue
                    relation = relations[atom.pred]
                    rels.append(relation.index_for(cols)
                                if kind == "probe"
                                else relation.raw_rows())
                stats = EvalStats()
                out = kernel.execute(None, stats, rels=rels)
                head_arity = len(rules[rule_key].head.args)
                packed = _pack_rows(out, head_arity) if interned else out
                conn.send(("ok", packed, head_arity,
                           stats.atom_lookups, stats.rows_matched,
                           stats.comparisons_checked,
                           stats.negation_checks))
            elif tag == "exit":
                conn.close()
                return
        except Exception as error:  # noqa: BLE001 - report, keep serving
            import traceback

            conn.send(("err", f"{error!r}\n{traceback.format_exc()}"))


class _ForkPool:
    """A persistent pool of fork workers with broadcast state shipping."""

    def __init__(self, workers: int, interned: bool) -> None:
        import multiprocessing

        context = multiprocessing.get_context("fork")
        self.connections = []
        self.processes = []
        self.interned = interned
        for _ in range(workers):
            parent, child = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main, args=(child,), daemon=True)
            process.start()
            child.close()
            self.connections.append(parent)
            self.processes.append(process)
        self.broadcast(("mode", interned))
        #: name -> cardinality at ship time (relations only grow during
        #: evaluation, so the length is a version number).
        self.shipped: dict[str, int] = {}
        self.shipped_rules: set[int] = set()
        self.synced_symbols = 0

    def broadcast(self, message) -> None:
        for conn in self.connections:
            conn.send(message)

    def terminate(self) -> None:
        for conn in self.connections:
            try:
                conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
        for process in self.processes:
            process.join(timeout=0.5)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=0.5)
        for conn in self.connections:
            conn.close()


class ShardExecutor:
    """Coordinator for sharded kernel firings (one per evaluation).

    Created by the engines when ``executor="parallel"``; owns the shard
    count, the per-predicate partition keys, the worker pool lifecycle
    and the exact-parity statistics adjustment.  :meth:`run` is a
    drop-in replacement for ``kernel.execute`` inside a rule firing.
    """

    def __init__(self, shards: int = DEFAULT_SHARDS, mode: str = "auto",
                 symbols: SymbolTable | None = None,
                 fork_threshold: int = DEFAULT_FORK_THRESHOLD,
                 rebalance_factor: float = REBALANCE_FACTOR) -> None:
        validate_shards(shards)
        validate_parallel_mode(mode)
        self.shards = shards
        self.mode = mode
        self.symbols = symbols
        self.fork_threshold = fork_threshold
        self.rebalance_factor = rebalance_factor
        #: Partition-key column per delta predicate (see
        #: :func:`choose_partition_key`); updated by rebalancing.
        self.partition_keys: dict[str, int] = {}
        #: Barrier-time repartitions triggered by shard-size drift.
        self.rebalances = 0
        self._fork_pool: _ForkPool | None = None
        self._thread_pool: ThreadPoolExecutor | None = None
        self._arith_rules: dict[int, bool] = {}

    # -- delta construction --------------------------------------------------
    def make_delta(self, pred: str, target: Relation) -> Relation:
        """A fresh delta relation with hash-partitioned shard buckets.

        The partition key starts from the target relation's statistics
        (all-zero on the first round, so column 0) and follows
        rebalancing decisions afterwards; shard buckets fill as the
        engine merges new rows in, so next round's scatter is free.
        """
        if target.arity == 0:
            # Nothing to hash-partition a nullary relation by (it holds
            # at most the empty tuple); a plain delta scatters to one
            # bucket anyway.
            return Relation(pred, 0, symbols=target.symbols)
        key = self.partition_keys.get(pred)
        if key is None:
            key = choose_partition_key(target) if len(target) else 0
            self.partition_keys[pred] = key
        backend = ShardedBackend(self.shards, key_column=key)
        return Relation(pred, target.arity, symbols=target.symbols,
                        backend=backend)

    def rebalance_if_skewed(self, delta: Relation) -> bool:
        """Re-choose the partition key when shard sizes drifted.

        Called by the engine at the round barrier on each merged delta
        (the relation the next round's firings scatter over).  When the
        largest shard exceeds ``rebalance_factor`` times the ideal, the
        key column is re-chosen from the delta's *current* distinct
        counts and the buckets repartitioned in place; the new key also
        becomes the default for subsequent deltas of the predicate.
        """
        backend = delta.backend
        if not isinstance(backend, ShardedBackend):
            return False
        if len(delta) < 2 * self.shards or self.shards < 2:
            return False
        if backend.imbalance() <= self.rebalance_factor:
            return False
        key = choose_partition_key(delta)
        if not backend.rebalance(key):
            return False
        self.partition_keys[delta.name] = key
        self.rebalances += 1
        return True

    # -- execution -----------------------------------------------------------
    def run(self, kernel: CompiledKernel, fetch, stats: EvalStats,
            round_index: int = 0, hook=None,
            budget: Budget | None = None,
            last_round: int | None = None,
            mutable_preds: frozenset[str] | set[str] = frozenset()
            ) -> list[Row]:
        """Execute one rule firing, sharded over its anchor scan.

        Falls back to a single ``kernel.execute`` when there is nothing
        to scatter (no anchor, one shard, a derivation hook installed).
        Derived rows come back exactly as from ``kernel.execute`` — the
        same multiset, in shard-concatenation order — and ``stats``
        receives exactly the sequential counter totals (each sub-firing
        pays one anchor-scan entry; the surplus is subtracted at the
        merge).
        """
        anchor = kernel.anchor
        if anchor is None or self.shards < 2 or hook is not None:
            return kernel.execute(fetch, stats, hook=hook,
                                  round_index=round_index)
        source = kernel.sources[anchor]
        relation = fetch(source[1], source[0])
        chaos.checkpoint("parallel:scatter")
        buckets = self.scatter(relation)
        worker_mode = self._worker_mode(kernel, relation, mutable_preds)
        if worker_mode == "fork":
            out, calls = self._run_fork(kernel, fetch, anchor, buckets,
                                        stats, budget, last_round)
        else:
            rels = kernel.resolve(fetch)
            if worker_mode == "thread":
                out, calls = self._run_threads(kernel, anchor, buckets,
                                               rels, stats)
            else:
                out, calls = self._run_serial(kernel, anchor, buckets,
                                              rels, stats)
        if calls == 0:
            # Every bucket was empty: run the plain firing so counters
            # match the sequential executor's one entry exactly.
            out = kernel.execute(fetch, stats)
        else:
            stats.atom_lookups -= calls - 1
        chaos.checkpoint("parallel:merge")
        return out

    def scatter(self, relation: Relation) -> list[list[Row]]:
        """Partition the anchor relation's rows into shard buckets.

        A :class:`ShardedBackend` with a matching shard count hands its
        live buckets over for free (the engine builds deltas that way —
        see :meth:`make_delta`); any other relation is partitioned on
        the fly by its statistics-chosen key column.
        """
        backend = relation.backend
        if isinstance(backend, ShardedBackend) \
                and backend.shard_count == self.shards:
            return backend.shard_lists
        column = choose_partition_key(relation) if relation.arity else 0
        buckets: list[list[Row]] = [[] for _ in range(self.shards)]
        if relation.arity:
            for row in relation.raw_rows():
                buckets[hash(row[column]) % self.shards].append(row)
        else:
            buckets[0] = list(relation.raw_rows())
        return buckets

    def _worker_mode(self, kernel: CompiledKernel, relation: Relation,
                     mutable_preds) -> str:
        """serial / thread / fork for this firing, policy + eligibility.

        Worker offload requires every non-anchor source to be *static*
        for the stratum (EDB or lower-stratum IDB — replicas stay
        valid across rounds) and the rule to be arithmetic-free (see
        :func:`_rule_has_arith`).  Ineligible or small firings shard
        in-process, which is semantically identical.
        """
        if self.mode == "serial":
            return "serial"
        wants_workers = self.mode in ("thread", "fork") or (
            self.mode == "auto" and len(relation) >= self.fork_threshold)
        if not wants_workers:
            return "serial"
        rule_key = id(kernel.rule)
        arith = self._arith_rules.get(rule_key)
        if arith is None:
            arith = _rule_has_arith(kernel.rule)
            self._arith_rules[rule_key] = arith
        if arith:
            return "serial"
        anchor = kernel.anchor
        for ordinal, (_body_index, atom, _cols, _kind) \
                in enumerate(kernel.sources):
            if ordinal != anchor and atom.pred in mutable_preds:
                return "serial"
        if self.mode == "thread":
            return "thread"
        if not _fork_available():  # pragma: no cover - non-fork platform
            return "thread"
        return "fork"

    # -- in-process modes ----------------------------------------------------
    def _run_serial(self, kernel, anchor, buckets, rels,
                    stats: EvalStats):
        out: list[Row] = []
        calls = 0
        for bucket in buckets:
            if not bucket:
                continue
            calls += 1
            shard_rels = list(rels)
            shard_rels[anchor] = bucket
            out.extend(kernel.execute(None, stats, rels=shard_rels))
        return out, calls

    def _run_threads(self, kernel, anchor, buckets, rels,
                     stats: EvalStats):
        live = [bucket for bucket in buckets if bucket]
        if not live:
            return [], 0
        pool = self._thread_pool
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=self.shards,
                thread_name_prefix="repro-shard")
            self._thread_pool = pool

        def task(bucket):
            shard_rels = list(rels)
            shard_rels[anchor] = bucket
            local = EvalStats()
            return kernel.execute(None, local, rels=shard_rels), local

        out: list[Row] = []
        # ``map`` preserves submission order, so concatenation order —
        # and therefore every downstream merge — is deterministic.
        for shard_out, local in pool.map(task, live):
            out.extend(shard_out)
            stats.atom_lookups += local.atom_lookups
            stats.rows_matched += local.rows_matched
            stats.comparisons_checked += local.comparisons_checked
            stats.negation_checks += local.negation_checks
        return out, len(live)

    # -- fork mode -----------------------------------------------------------
    def _ensure_fork_pool(self) -> _ForkPool:
        if self._fork_pool is None:
            self._fork_pool = _ForkPool(self.shards,
                                        interned=self.symbols is not None)
        return self._fork_pool

    def _ship_state(self, pool: _ForkPool, kernel: CompiledKernel,
                    anchor: int, fetch_results: dict) -> None:
        """Broadcast symbol/rule/replica deltas the firing needs."""
        symbols = self.symbols
        if symbols is not None and len(symbols) > pool.synced_symbols:
            pool.broadcast(
                ("sync", list(symbols.values[pool.synced_symbols:])))
            pool.synced_symbols = len(symbols)
        rule_key = id(kernel.rule)
        if rule_key not in pool.shipped_rules:
            pool.broadcast(("rule", rule_key, kernel.rule))
            pool.shipped_rules.add(rule_key)
        for ordinal, relation in fetch_results.items():
            if ordinal == anchor:
                continue
            if pool.shipped.get(relation.name) == len(relation):
                continue
            payload = _columnar_payload(relation) \
                if pool.interned else None
            if payload is None:
                rows = relation.raw_rows()
                payload = _pack_rows(rows, relation.arity) \
                    if pool.interned else list(rows)
            pool.broadcast(("rel", relation.name, relation.arity,
                            payload))
            pool.shipped[relation.name] = len(relation)

    def _run_fork(self, kernel: CompiledKernel, fetch, anchor, buckets,
                  stats: EvalStats, budget: Budget | None,
                  last_round: int | None):
        pool = self._ensure_fork_pool()
        # Resolve the non-anchor sources once so replicas can ship;
        # index construction happens worker-side against the replica.
        fetch_results: dict[int, Relation] = {}
        for ordinal, (body_index, atom, _cols, _kind) \
                in enumerate(kernel.sources):
            if ordinal != anchor:
                fetch_results[ordinal] = fetch(atom, body_index)
        self._ship_state(pool, kernel, anchor, fetch_results)
        rule_key = id(kernel.rule)
        order = list(kernel.order)
        live: list[tuple[int, list[Row]]] = []
        for index, bucket in enumerate(buckets):
            if bucket:
                live.append((index, bucket))
        if not live:
            return [], 0
        anchor_arity = kernel.sources[anchor][1].arity
        assignments = []
        for slot, (_index, bucket) in enumerate(live):
            conn = pool.connections[slot % len(pool.connections)]
            payload = _pack_rows(bucket, anchor_arity) \
                if pool.interned else bucket
            conn.send(("fire", rule_key, order, anchor, payload))
            assignments.append(conn)
        out: list[Row] = []
        try:
            for conn in assignments:
                # Budget-aware wait: deadline and cooperative
                # cancellation propagate to workers — exhaustion tears
                # the pool down before re-raising.
                while not conn.poll(0.02):
                    if budget is not None:
                        budget.check_round(stats, last_round=last_round)
                reply = conn.recv()
                if reply[0] == "err":
                    raise EvaluationError(
                        f"parallel worker failed: {reply[1]}")
                (_ok, payload, head_arity, lookups, rows, cmps,
                 negs) = reply
                out.extend(_unpack_rows(payload, head_arity)
                           if pool.interned else payload)
                stats.atom_lookups += lookups
                stats.rows_matched += rows
                stats.comparisons_checked += cmps
                stats.negation_checks += negs
        except BaseException:
            self._abort_fork_pool()
            raise
        return out, len(live)

    def _abort_fork_pool(self) -> None:
        """Tear the worker pool down (cancellation/exhaustion path)."""
        pool, self._fork_pool = self._fork_pool, None
        if pool is not None:
            for process in pool.processes:
                process.terminate()
            for process in pool.processes:
                process.join(timeout=0.5)
            for conn in pool.connections:
                conn.close()

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Release worker resources (idempotent)."""
        pool, self._fork_pool = self._fork_pool, None
        if pool is not None:
            pool.terminate()
        threads, self._thread_pool = self._thread_pool, None
        if threads is not None:
            threads.shutdown(wait=False)

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def describe(self) -> str:
        """One-line summary for plan introspection."""
        keys = ", ".join(f"{pred}->col{col}" for pred, col
                         in sorted(self.partition_keys.items()))
        return (f"parallel: {self.shards} shards, mode={self.mode}, "
                f"partition keys [{keys or 'pending'}], "
                f"{self.rebalances} rebalances")
