"""Why-provenance: derivation trees for derived tuples.

The paper reasons about programs through their *proof trees*; this
module materializes one for any derived tuple, which is useful both for
debugging optimized programs (the transformed program must admit a proof
for exactly the same tuples) and for intelligent answering ("why is this
an answer?").

:func:`explain` performs a goal-directed search over the already-computed
IDB: for the goal tuple it finds a rule and a body instantiation whose
atoms are EDB facts or (recursively explained) IDB tuples.  Termination
is guaranteed by only recursing into tuples and memoizing failures, with
recursive sub-goals required to have strictly smaller derivation ranks
(the round at which semi-naive first derived them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..datalog.atoms import Atom, Comparison
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Constant, ConstValue, Variable
from ..errors import EvaluationError
from ..facts.database import Database
from ..facts.relation import Relation, Row
from . import builtins
from .bindings import EvalStats, solve_body
from .seminaive import seminaive_evaluate


@dataclass(frozen=True)
class Derivation:
    """One node of a derivation tree.

    Attributes:
        atom: the derived (or stored) ground atom.
        rule: the rule label used, or None for EDB facts.
        children: sub-derivations for the rule's database atoms.
    """

    atom: Atom
    rule: str | None
    children: tuple["Derivation", ...] = ()

    @property
    def is_fact(self) -> bool:
        return self.rule is None

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def rule_string(self) -> tuple[str, ...]:
        """The expansion-sequence reading of the tree: rule labels in
        depth-first order (EDB leaves omitted)."""
        labels: list[str] = []
        if self.rule is not None:
            labels.append(self.rule)
        for child in self.children:
            labels.extend(child.rule_string())
        return tuple(labels)

    def render(self, indent: int = 0) -> str:
        """ASCII proof tree."""
        pad = "  " * indent
        tag = f"  [{self.rule}]" if self.rule else "  [edb]"
        lines = [f"{pad}{self.atom}{tag}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


class Explainer:
    """Builds derivation trees over a computed IDB."""

    def __init__(self, program: Program, edb: Database,
                 idb: Database | None = None) -> None:
        self.program = program
        self.edb = edb
        if idb is None:
            idb = seminaive_evaluate(program, edb, EvalStats())
        self.idb = idb
        self._ranks: dict[tuple[str, Row], int] = {}
        self._rank_idb()

    def _rank_idb(self) -> None:
        """Recompute first-derivation rounds with a hooked evaluation."""
        stats = EvalStats()

        def hook(rule: Rule, binding, round_index: int) -> bool:
            return True

        # Re-run with round tracking via a custom pass: iterate naive
        # rounds, recording the first round each tuple appears in.
        arities = self.program.predicate_arities()
        known: dict[str, set[Row]] = {
            pred: set() for pred in self.program.idb_predicates}
        round_index = 0
        changed = True
        while changed:
            changed = False
            snapshot = Database()
            for pred, rows in known.items():
                relation = snapshot.ensure(pred, arities[pred])
                relation.add_all(rows)

            def fetch(atom: Atom, index: int) -> Relation:
                if atom.pred in self.program.idb_predicates:
                    return snapshot.relation(atom.pred)
                return self.edb.relation_or_empty(atom.pred, atom.arity)

            for rule in self.program:
                for binding in solve_body(rule, fetch, stats):
                    row = _instantiate(rule.head, binding)
                    key = (rule.head.pred, row)
                    if key not in self._ranks:
                        self._ranks[key] = round_index
                        known[rule.head.pred].add(row)
                        changed = True
            round_index += 1

    def rank(self, pred: str, row: Row) -> int:
        return self._ranks.get((pred, row), -1)

    def explain(self, goal: Atom) -> Optional[Derivation]:
        """A derivation tree for a ground goal, or None when not derived."""
        row = _ground_row(goal)
        if self.program.is_edb(goal.pred):
            if row in self.edb.relation_or_empty(goal.pred, goal.arity):
                return Derivation(goal, None)
            return None
        if row not in self.idb.relation_or_empty(goal.pred, goal.arity):
            return None
        return self._explain_idb(goal.pred, row)

    def _explain_idb(self, pred: str, row: Row) -> Optional[Derivation]:
        goal_rank = self.rank(pred, row)
        goal_atom = Atom(pred, tuple(Constant(v) for v in row))
        for rule in self.program.rules_for(pred):
            derivation = self._explain_via(rule, goal_atom, row, goal_rank)
            if derivation is not None:
                return derivation
        return None  # pragma: no cover - every IDB tuple has a proof

    def _explain_via(self, rule: Rule, goal_atom: Atom, row: Row,
                     goal_rank: int) -> Optional[Derivation]:
        binding: dict[Variable, ConstValue] = {}
        for head_arg, value in zip(rule.head.args, row):
            if isinstance(head_arg, Constant):
                if head_arg.value != value:
                    return None
            elif isinstance(head_arg, Variable):
                if binding.setdefault(head_arg, value) != value:
                    return None
        stats = EvalStats()

        def fetch(atom: Atom, index: int) -> Relation:
            if atom.pred in self.program.idb_predicates:
                return self.idb.relation(atom.pred)
            return self.edb.relation_or_empty(atom.pred, atom.arity)

        for solution in solve_body(rule, fetch, stats, initial=binding):
            # Sub-derivations must be strictly older for IDB subgoals of
            # the same predicate rank, which rules out circular proofs.
            children: list[Derivation] = []
            acceptable = True
            for literal in rule.body:
                if not isinstance(literal, Atom):
                    continue
                sub_row = _instantiate(literal, solution)
                sub_atom = Atom(literal.pred,
                                tuple(Constant(v) for v in sub_row))
                if self.program.is_edb(literal.pred):
                    children.append(Derivation(sub_atom, None))
                    continue
                sub_rank = self.rank(literal.pred, sub_row)
                if sub_rank < 0 or (sub_rank >= goal_rank >= 0):
                    acceptable = False
                    break
                sub_derivation = self._explain_idb(literal.pred, sub_row)
                if sub_derivation is None:
                    acceptable = False
                    break
                children.append(sub_derivation)
            if acceptable:
                return Derivation(goal_atom, rule.label or "?",
                                  tuple(children))
        return None


def _instantiate(atom: Atom, binding) -> Row:
    row = []
    for arg in atom.args:
        if isinstance(arg, Constant):
            row.append(arg.value)
        elif isinstance(arg, Variable):
            row.append(binding[arg])
        else:
            row.append(builtins.eval_term(arg, binding))
    return tuple(row)


def _ground_row(goal: Atom) -> Row:
    row = []
    for arg in goal.args:
        if not isinstance(arg, Constant):
            raise EvaluationError(f"explain needs a ground goal: {goal}")
        row.append(arg.value)
    return tuple(row)


def explain(program: Program, edb: Database, goal: Atom,
            idb: Database | None = None) -> Optional[Derivation]:
    """One-call derivation tree for ``goal`` (None when underivable)."""
    return Explainer(program, edb, idb).explain(goal)


def explain_answer(result, goal: Atom) -> Optional[Derivation]:
    """Derivation tree for a query answer of an ``EvaluationResult``.

    Unlike :func:`explain`, this follows the *rewritten* program the
    result was actually computed with: when the evaluation went through
    a magic rewriting — ``evaluate_with_magic`` or a cost-based
    optimizer choice (:func:`repro.engine.optimizer.cbo_evaluate`) — a
    ground goal on the original predicate is translated to the adorned
    predicate the rewritten program derives, so the proof tree shows
    the magic/adorned rules that actually fired (seed facts appear as
    ``magic_seed`` nodes).
    """
    if result.magic is not None:
        adorned = result.magic.query_pred
        if goal.pred != adorned \
                and adorned.startswith(f"{goal.pred}__"):
            goal = Atom(adorned, goal.args)
    return Explainer(result.program, result.edb,
                     result.idb).explain(goal)
