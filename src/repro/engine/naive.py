"""Naive bottom-up fixpoint evaluation (reference implementation).

Re-evaluates every rule against the full relations each round until
nothing new is derived.  Quadratically redundant, but its simplicity makes
it the oracle that the semi-naive engine (and every program
transformation) is property-tested against.
"""

from __future__ import annotations

from ..datalog.atoms import Atom
from ..datalog.program import Program
from ..errors import BudgetExceededError
from ..facts.database import Database
from ..facts.relation import Relation
from ..runtime import chaos
from ..runtime.budget import Budget, resolve_budget
from .bindings import EvalStats, instantiate_head, solve_body
from .compile import KernelCache, validate_executor
from .stratify import stratify

#: Safety valve for runaway fixpoints (e.g. value-inventing arithmetic).
DEFAULT_MAX_ITERATIONS = 100_000


def naive_evaluate(program: Program, edb: Database,
                   stats: EvalStats | None = None,
                   max_iterations: int = DEFAULT_MAX_ITERATIONS,
                   budget: Budget | None = None,
                   executor: str = "compiled") -> Database:
    """Compute the IDB of ``program`` over ``edb`` naively.

    Returns a new :class:`Database` containing only IDB relations; the EDB
    is never mutated.  ``budget`` (explicit or ambient, see
    :mod:`repro.runtime.budget`) bounds the run; exhaustion raises
    :class:`BudgetExceededError` carrying the partial stats.

    ``executor="compiled"`` (default) lowers each rule once into a
    slot-based kernel (:mod:`repro.engine.compile`) reused across all
    rounds; ``"interpreted"`` keeps the reference interpreter.
    """
    stats = stats if stats is not None else EvalStats()
    validate_executor(executor)
    budget = resolve_budget(budget)
    chaos_plan = chaos.active_plan()
    arities = program.predicate_arities()
    idb = Database()
    for pred in program.idb_predicates:
        idb.ensure(pred, arities[pred])

    def fetch(atom: Atom, index: int) -> Relation:
        if atom.pred in program.idb_predicates:
            return idb.relation(atom.pred)
        return edb.relation_or_empty(atom.pred, atom.arity)

    def sizes(atom: Atom, index: int) -> int:
        return len(fetch(atom, index))

    kernels = KernelCache() if executor == "compiled" else None
    for stratum in stratify(program):
        rules = [r for r in program if r.head.pred in stratum]
        changed = True
        rounds = 0
        while changed:
            rounds += 1
            stats.iterations += 1
            if rounds > max_iterations:
                raise BudgetExceededError(
                    f"naive evaluation exceeded {max_iterations} rounds",
                    resource="rounds", limit=max_iterations,
                    spent=rounds - 1, stats=stats, last_round=rounds - 1)
            if budget is not None:
                budget.check_round(stats, last_round=rounds - 1)
            changed = False
            for rule in rules:
                stats.rules_fired += 1
                target = idb.relation(rule.head.pred)
                # Buffer insertions so the body scan sees a snapshot.
                if kernels is not None:
                    derived = kernels.kernel(rule, None, sizes) \
                        .execute(fetch, stats)
                else:
                    derived = [instantiate_head(rule, binding)
                               for binding in solve_body(rule, fetch,
                                                         stats)]
                countdown = budget.checkpoint(stats,
                                              last_round=rounds - 1) \
                    if budget is not None else 0
                for row in derived:
                    if chaos_plan is not None:
                        chaos_plan.derivation()
                    if target.add(row):
                        stats.derivations += 1
                        changed = True
                    else:
                        stats.duplicate_derivations += 1
                    if budget is not None:
                        countdown -= 1
                        if countdown <= 0:
                            countdown = budget.checkpoint(
                                stats, last_round=rounds - 1)
    return idb
