"""Naive bottom-up fixpoint evaluation (reference implementation).

Re-evaluates every rule against the full relations each round until
nothing new is derived.  Quadratically redundant, but its simplicity makes
it the oracle that the semi-naive engine (and every program
transformation) is property-tested against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..datalog.atoms import Atom
from ..datalog.program import Program
from ..errors import BudgetExceededError
from ..facts.database import Database
from ..facts.relation import Relation
from ..runtime import chaos
from ..runtime.budget import Budget, resolve_budget
from .bindings import (EvalStats, instantiate_head, solve_body,
                       validate_planner)
from .compile import KernelCache, validate_executor
from .parallel import DEFAULT_SHARDS, ShardExecutor, validate_parallel_mode
from .stratify import stratify
from .vectorize import VectorRunner, columnar_backend_factory

if TYPE_CHECKING:
    from ..analysis.dataflow import DataflowResult

#: Safety valve for runaway fixpoints (e.g. value-inventing arithmetic).
DEFAULT_MAX_ITERATIONS = 100_000


def naive_evaluate(program: Program, edb: Database,
                   stats: EvalStats | None = None,
                   max_iterations: int = DEFAULT_MAX_ITERATIONS,
                   budget: Budget | None = None,
                   executor: str = "compiled",
                   planner: str = "greedy",
                   shards: int | None = None,
                   parallel_mode: str = "auto",
                   dataflow: "DataflowResult | None" = None) -> Database:
    """Compute the IDB of ``program`` over ``edb`` naively.

    Returns a new :class:`Database` containing only IDB relations; the EDB
    is never mutated.  ``budget`` (explicit or ambient, see
    :mod:`repro.runtime.budget`) bounds the run; exhaustion raises
    :class:`BudgetExceededError` carrying the partial stats.

    ``executor="compiled"`` (default) lowers each rule once into a
    slot-based kernel (:mod:`repro.engine.compile`) reused across all
    rounds; ``"interpreted"`` keeps the reference interpreter;
    ``"parallel"`` shards each kernel firing over a hash partition of
    its anchor scan (:mod:`repro.engine.parallel`; ``shards`` and
    ``parallel_mode`` as in the semi-naive engine).  ``planner`` is as
    in :func:`~repro.engine.seminaive.seminaive_evaluate`.  Storage
    follows the EDB: an interned EDB yields an interned IDB sharing
    its symbol table.
    """
    stats = stats if stats is not None else EvalStats()
    validate_executor(executor)
    validate_planner(planner)
    budget = resolve_budget(budget)
    chaos_plan = chaos.active_plan()
    arities = program.predicate_arities()
    vectorized = executor == "vectorized"
    backend_factory = columnar_backend_factory \
        if vectorized and edb.symbols is not None else None
    idb = Database(symbols=edb.symbols, backend_factory=backend_factory)
    for pred in program.idb_predicates:
        idb.ensure(pred, arities[pred])

    def fetch(atom: Atom, index: int) -> Relation:
        if atom.pred in program.idb_predicates:
            return idb.relation(atom.pred)
        return edb.relation_or_empty(atom.pred, atom.arity)

    def sizes(atom: Atom, index: int) -> int:
        return len(fetch(atom, index))

    def cost(atom: Atom, index: int,
             bound_cols: tuple[int, ...]) -> float:
        relation = fetch(atom, index)
        if dataflow is not None and not len(relation):
            # Cold statistics: seed from the static size bounds.
            return dataflow.probe_estimate(atom.pred, bound_cols)
        return relation.probe_estimate(bound_cols)

    keep_atom_order = planner == "source"
    # planner="cbo" reuses the adaptive cost path: rewrite enumeration
    # happens before evaluation (:mod:`repro.engine.optimizer`).
    adaptive = planner in ("adaptive", "cbo")
    kernels = None
    pool = None
    vec = VectorRunner(symbols=edb.symbols,
                       true_checks=dataflow.true_checks
                       if dataflow is not None else None) \
        if vectorized else None
    if vec is not None and planner == "cbo":
        from .optimizer import kernel_chooser
        vec.kernel_choice = kernel_chooser(program, edb, idb=idb,
                                           dataflow=dataflow)
    if executor != "interpreted":
        kernels = KernelCache(keep_atom_order=keep_atom_order,
                              symbols=edb.symbols, adaptive=adaptive,
                              fuse=not vectorized,
                              on_replan=vec.invalidate
                              if vec is not None and planner == "cbo"
                              else None)
    if executor == "parallel":
        validate_parallel_mode(parallel_mode)
        pool = ShardExecutor(shards if shards is not None
                             else DEFAULT_SHARDS,
                             mode=parallel_mode, symbols=edb.symbols)
    try:
        _naive_strata(program, edb, idb, stats, max_iterations, budget,
                      chaos_plan, fetch, sizes, cost, keep_atom_order,
                      adaptive, kernels, pool, vec, dataflow)
    finally:
        if pool is not None:
            pool.close()
    if kernels is not None:
        stats.replans += kernels.replans
    return idb


def _naive_strata(program, edb, idb, stats, max_iterations, budget,
                  chaos_plan, fetch, sizes, cost, keep_atom_order,
                  adaptive, kernels, pool, vec=None,
                  dataflow=None) -> None:
    for stratum in stratify(program):
        # Provably-dead rules derive no rows under any join order, so
        # skipping them leaves every counter and ordinal unchanged.
        rules = [r for r in program if r.head.pred in stratum
                 and not (dataflow is not None and dataflow.is_dead(r))]
        changed = True
        rounds = 0
        while changed:
            rounds += 1
            stats.iterations += 1
            if rounds > max_iterations:
                raise BudgetExceededError(
                    f"naive evaluation exceeded {max_iterations} rounds",
                    resource="rounds", limit=max_iterations,
                    spent=rounds - 1, stats=stats, last_round=rounds - 1)
            if budget is not None:
                budget.check_round(stats, last_round=rounds - 1)
            changed = False
            for rule in rules:
                stats.rules_fired += 1
                target = idb.relation(rule.head.pred)
                # Buffer insertions so the body scan sees a snapshot.
                if kernels is not None:
                    kernel = kernels.kernel(
                        rule, None, sizes,
                        cost=cost if adaptive else None)
                    if pool is not None:
                        derived = pool.run(kernel, fetch, stats,
                                           budget=budget,
                                           mutable_preds=stratum)
                    elif vec is not None:
                        derived = vec.run(kernel, fetch, stats)
                    else:
                        derived = kernel.execute(fetch, stats)
                    target_add = target.raw_add
                else:
                    derived = [instantiate_head(rule, binding)
                               for binding in solve_body(
                                   rule, fetch, stats,
                                   keep_atom_order=keep_atom_order)]
                    target_add = target.add
                if kernels is not None and chaos_plan is None:
                    # Bulk insert (see the semi-naive engine): one
                    # C-level set difference per budget window, same
                    # counter totals as the sequential path.
                    position, total = 0, len(derived)
                    while position < total:
                        if budget is not None:
                            countdown = budget.checkpoint(
                                stats, last_round=rounds - 1)
                            chunk = derived[position:position
                                            + max(countdown, 1)]
                        else:
                            chunk = derived if position == 0 \
                                else derived[position:]
                        position += len(chunk)
                        new_rows = target.raw_merge_new(chunk)
                        if new_rows:
                            stats.derivations += len(new_rows)
                            changed = True
                        stats.duplicate_derivations += \
                            len(chunk) - len(new_rows)
                    continue
                countdown = budget.checkpoint(stats,
                                              last_round=rounds - 1) \
                    if budget is not None else 0
                for row in derived:
                    if chaos_plan is not None:
                        chaos_plan.derivation()
                    if target_add(row):
                        stats.derivations += 1
                        changed = True
                    else:
                        stats.duplicate_derivations += 1
                    if budget is not None:
                        countdown -= 1
                        if countdown <= 0:
                            countdown = budget.checkpoint(
                                stats, last_round=rounds - 1)
            if pool is not None:
                chaos.checkpoint("parallel:barrier")
