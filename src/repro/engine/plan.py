"""Join-plan introspection.

The planners in :mod:`repro.engine.bindings` decide join orders at
evaluation time from relation sizes (greedy) or live cardinality
statistics (adaptive); this module exposes those decisions for
inspection, which makes discussions like experiment E2's ("whose
anchor is better?") concrete: ``explain_plan`` shows, per rule, the
order literals would run in, which index pattern each atom would be
probed with, and — under the adaptive planner — the estimated rows per
probe and the statistics epoch the estimate was derived from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..datalog.atoms import Atom, Comparison, Negation
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Variable
from ..facts.database import Database
from ..facts.relation import Relation
from .bindings import bound_columns_of, plan_body, validate_planner

if TYPE_CHECKING:
    from ..analysis.dataflow import DataflowResult


@dataclass(frozen=True)
class PlanStep:
    """One literal of a rule's execution plan.

    Attributes:
        literal: the literal, as written.
        kind: ``scan`` (no bound columns), ``probe`` (indexed lookup),
            ``check`` (comparison / negation test), or ``bind``
            (an ``=`` that assigns).
        bound_columns: 0-based columns bound at probe time (atoms only).
        relation_size: the relation's size at planning time (atoms only).
        estimate: estimated rows matched per probe, from live relation
            statistics (adaptive planner only).
        stats_epoch: the statistics epoch the estimate was read at
            (adaptive planner only) — identifies *which* state of the
            relation the plan was derived from.
    """

    literal: object
    kind: str
    bound_columns: tuple[int, ...] = ()
    relation_size: int | None = None
    estimate: float | None = None
    stats_epoch: int | None = None

    def render(self) -> str:
        if self.kind in ("scan", "probe"):
            columns = ",".join(str(c) for c in self.bound_columns)
            detail = f"probe[{columns}]" if self.kind == "probe" \
                else "scan"
            text = f"{detail:12} {self.literal}  " \
                   f"(~{self.relation_size} rows"
            if self.estimate is not None:
                text += f", est {self.estimate:g}/probe"
                if self.stats_epoch is not None:
                    text += f" @epoch {self.stats_epoch}"
            return text + ")"
        return f"{self.kind:12} {self.literal}"


@dataclass(frozen=True)
class RulePlan:
    """The ordered plan of one rule."""

    rule: Rule
    steps: tuple[PlanStep, ...]
    planner: str = "greedy"

    def render(self) -> str:
        lines = [f"{self.rule.label or '?'}: {self.rule}"]
        for index, step in enumerate(self.steps, start=1):
            lines.append(f"  {index}. {step.render()}")
        return "\n".join(lines)


def plan_rule(rule: Rule, program: Program, edb: Database,
              idb: Database | None = None,
              planner: str = "greedy",
              dataflow: "DataflowResult | None" = None) -> RulePlan:
    """Compute the execution plan one rule would use.

    IDB relation sizes come from ``idb`` when given (e.g. a finished
    evaluation's result) and are treated as empty otherwise, matching
    what the engine would see at the start of the fixpoint.  The body
    ``index`` of each occurrence is threaded through to the size and
    cost callbacks, exactly as the engines' delta-aware ``fetch`` does,
    so per-occurrence resolution stays faithful to execution.  When
    ``dataflow`` is given, the adaptive planner seeds cold (missing or
    empty) relations with the analysis's static size bounds instead of
    a flat zero, mirroring the engines.
    """
    validate_planner(planner)

    def relation_for(atom: Atom, index: int) -> Relation | None:
        if atom.pred in program.idb_predicates:
            if idb is not None and atom.pred in idb:
                return idb.relation(atom.pred)
            return None
        return edb.relation_or_empty(atom.pred, atom.arity)

    def sizes(atom: Atom, index: int) -> int:
        relation = relation_for(atom, index)
        return len(relation) if relation is not None else 0

    cost = None
    if planner in ("adaptive", "cbo"):
        def cost(atom: Atom, index: int,
                 bound_cols: tuple[int, ...]) -> float:
            relation = relation_for(atom, index)
            if relation is None or not len(relation):
                if dataflow is not None:
                    return dataflow.probe_estimate(atom.pred, bound_cols)
                return 0.0
            return relation.enable_stats().probe_estimate(bound_cols)

    order = plan_body(rule, sizes,
                      keep_atom_order=(planner == "source"), cost=cost)
    bound: set[Variable] = set()
    steps: list[PlanStep] = []
    for index in order:
        literal = rule.body[index]
        if isinstance(literal, Comparison):
            kind = "bind" if literal.op == "=" and not \
                literal.variable_set() <= bound else "check"
            steps.append(PlanStep(literal, kind))
            bound.update(literal.variable_set())
            continue
        if isinstance(literal, Negation):
            steps.append(PlanStep(literal, "check"))
            continue
        columns = bound_columns_of(literal, bound)
        estimate = epoch = None
        if cost is not None:
            estimate = cost(literal, index, columns)
            relation = relation_for(literal, index)
            if relation is not None and relation.stats is not None:
                epoch = relation.stats.epoch
        steps.append(PlanStep(
            literal, "probe" if columns else "scan", columns,
            sizes(literal, index), estimate, epoch))
        bound.update(literal.variable_set())
    return RulePlan(rule, tuple(steps), planner=planner)


def _stats_section(program: Program, edb: Database,
                   idb: Database | None) -> str:
    """Render the live statistics every referenced relation carries."""
    lines = ["statistics:"]
    seen: set[str] = set()
    for label, db in (("edb", edb), ("idb", idb)):
        if db is None:
            continue
        for name in sorted(db):
            if name in seen:
                continue
            seen.add(name)
            relation = db.relation(name)
            stats = relation.enable_stats()
            distinct = ",".join(str(stats.distinct(column))
                                for column in range(relation.arity))
            lines.append(
                f"  {label} {name}/{relation.arity}: "
                f"{stats.cardinality} rows, distinct=[{distinct}], "
                f"epoch={stats.epoch}")
    if len(lines) == 1:
        lines.append("  (no relations)")
    return "\n".join(lines)


def explain_plan(program: Program, edb: Database,
                 idb: Database | None = None,
                 planner: str = "greedy",
                 show_stats: bool = False,
                 dataflow: "DataflowResult | None" = None) -> str:
    """Render the plans of every rule of the program.

    With ``show_stats`` a trailing section lists, per relation, the
    cardinality, per-column distinct counts and statistics epoch the
    estimates were derived from (``repro explain --stats``).
    ``dataflow`` is as in :func:`plan_rule`.
    """
    body = "\n\n".join(
        plan_rule(rule, program, edb, idb, planner,
                  dataflow=dataflow).render()
        for rule in program)
    if show_stats:
        body += "\n\n" + _stats_section(program, edb, idb)
    return body


def explain_kernels(program: Program, edb: Database,
                    idb: Database | None = None,
                    planner: str = "greedy",
                    show_stats: bool = False,
                    executor: str = "compiled",
                    shards: int | None = None,
                    dataflow: "DataflowResult | None" = None) -> str:
    """Render the compiled kernel of every rule of the program.

    This is the compiled-executor counterpart of :func:`explain_plan`:
    it shows the step program each rule is lowered to (probe patterns,
    slot binds, checks, fused tails), compiled against the same size
    estimates :func:`plan_rule` uses — including, under
    ``planner="adaptive"``, the statistics-estimated rows per probe,
    and against the EDB's symbol table when it is interned.

    With ``executor="parallel"`` a trailing section describes the
    sharded execution each kernel would get: the shard count, whether
    the kernel's plan opens with a shardable anchor scan (and over
    which atom), the statistics-chosen partition-key column of that
    anchor's relation, and the kernel reuse — one compiled kernel per
    (rule, variant), executed once per shard per firing.

    With ``executor="vectorized"`` the trailing section shows, per
    rule, the whole-frontier batch lowering — the step kinds the batch
    kernel chains and which comparison steps hit the column-level
    predicate cache — or the reason the rule falls back to the
    row-at-a-time compiled kernel.
    """
    from .compile import compile_rule

    validate_planner(planner)

    def relation_for(atom: Atom, index: int) -> Relation | None:
        if atom.pred in program.idb_predicates:
            if idb is not None and atom.pred in idb:
                return idb.relation(atom.pred)
            return None
        return edb.relation_or_empty(atom.pred, atom.arity)

    def relation_size(atom: Atom, index: int) -> int:
        relation = relation_for(atom, index)
        return len(relation) if relation is not None else 0

    cost = None
    if planner in ("adaptive", "cbo"):
        def cost(atom: Atom, index: int,
                 bound_cols: tuple[int, ...]) -> float:
            relation = relation_for(atom, index)
            if relation is None or not len(relation):
                if dataflow is not None:
                    return dataflow.probe_estimate(atom.pred, bound_cols)
                return 0.0
            return relation.enable_stats().probe_estimate(bound_cols)

    kernels = [compile_rule(rule, relation_size,
                            keep_atom_order=(planner == "source"),
                            cost=cost, symbols=edb.symbols)
               for rule in program]
    body = "\n\n".join(kernel.describe() for kernel in kernels)
    if executor == "parallel":
        body += "\n\n" + _parallel_section(kernels, relation_for, shards)
    elif executor == "vectorized":
        body += "\n\n" + _vectorized_section(kernels, edb, program, idb,
                                             planner, dataflow)
    if show_stats:
        body += "\n\n" + _stats_section(program, edb, idb)
    return body


def _parallel_section(kernels, relation_for, shards: int | None) -> str:
    """Render the sharded-execution summary for ``explain_kernels``."""
    from .parallel import DEFAULT_SHARDS, choose_partition_key

    count = shards if shards is not None else DEFAULT_SHARDS
    lines = [f"parallel execution: {count} shards"]
    for kernel in kernels:
        label = kernel.rule.label or str(kernel.rule.head)
        if kernel.anchor is None:
            lines.append(
                f"  {label}: not sharded (plan does not open with a "
                "full scan); single kernel call per firing")
            continue
        _index, atom, _cols, _kind = kernel.sources[kernel.anchor]
        relation = relation_for(atom, _index)
        key = choose_partition_key(relation) \
            if relation is not None and len(relation) else 0
        lines.append(
            f"  {label}: anchor scan {atom} hash-partitioned on "
            f"column {key}; 1 compiled kernel reused across "
            f"{count} shard calls per firing")
    return "\n".join(lines)


def _vectorized_section(kernels, edb, program=None, idb=None,
                        planner: str = "greedy",
                        dataflow: "DataflowResult | None" = None) -> str:
    """Render the batch-lowering summary for ``explain_kernels``.

    Every rule shows its predicted frontier width (the quantity the
    cost-based optimizer prices batch kernels by); under
    ``planner="cbo"`` each batch-lowerable rule additionally shows the
    optimizer's batch-vs-row verdict with its rationale, next to the
    existing fallback reasons.
    """
    from .optimizer import kernel_chooser, predicted_frontier_width
    from .vectorize import compile_batch

    choose = kernel_chooser(program, edb, idb=idb, dataflow=dataflow) \
        if planner == "cbo" and program is not None else None

    def width_note(kernel) -> str:
        if program is None:
            return ""
        width = predicted_frontier_width(kernel.rule, program, edb,
                                         idb=idb, dataflow=dataflow)
        shown = "inf" if width == float("inf") else f"{width:.0f}"
        return f" (predicted frontier width ~{shown})"

    lines = ["vectorized execution: whole-frontier batch kernels"
             + ("" if edb.symbols is not None
                else " (EDB not interned: every rule falls back)")]
    for kernel in kernels:
        label = kernel.rule.label or str(kernel.rule.head)
        plan = kernel.batch_plan
        if plan is None:
            lines.append(f"  {label}: falls back to the compiled "
                         f"kernel (body not batch-lowerable)"
                         + width_note(kernel))
            continue
        if compile_batch(kernel) is None:
            lines.append(f"  {label}: falls back to the compiled "
                         f"kernel (batch codegen declined)"
                         + width_note(kernel))
            continue
        if choose is not None:
            choice = choose(kernel)
            if not choice.use_batch:
                lines.append(f"  {label}: row-at-a-time compiled "
                             f"kernel chosen by the optimizer "
                             f"({choice.reason})")
                continue
        steps = []
        for step in plan:
            kind = step[0]
            if kind == "atom":
                _kind, src, keys, _writes, _checks = step
                steps.append("probe" if keys else "scan")
            elif kind == "member":
                steps.append("member")
            elif kind == "neg":
                steps.append("neg")
            elif kind == "check":
                steps.append(f"check[{step[1]}]")
            elif kind == "bind":
                steps.append("bind")
        suffix = f"; one call per frontier ({choice.reason})" \
            if choose is not None else "; one call per frontier"
        lines.append(f"  {label}: batch chain "
                     + " -> ".join(steps or ["copy"])
                     + suffix + ("" if choose is not None
                                 else width_note(kernel)))
    return "\n".join(lines)
