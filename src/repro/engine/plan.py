"""Join-plan introspection.

The greedy planner in :mod:`repro.engine.bindings` decides join orders at
evaluation time from relation sizes; this module exposes those decisions
for inspection, which makes discussions like experiment E2's ("whose
anchor is better?") concrete: ``explain_plan`` shows, per rule, the order
literals would run in and which index pattern each atom would be probed
with.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.atoms import Atom, Comparison, Negation
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Variable
from ..facts.database import Database
from .bindings import plan_body


@dataclass(frozen=True)
class PlanStep:
    """One literal of a rule's execution plan.

    Attributes:
        literal: the literal, as written.
        kind: ``scan`` (no bound columns), ``probe`` (indexed lookup),
            ``check`` (comparison / negation test), or ``bind``
            (an ``=`` that assigns).
        bound_columns: 0-based columns bound at probe time (atoms only).
        relation_size: the relation's size at planning time (atoms only).
    """

    literal: object
    kind: str
    bound_columns: tuple[int, ...] = ()
    relation_size: int | None = None

    def render(self) -> str:
        if self.kind in ("scan", "probe"):
            columns = ",".join(str(c) for c in self.bound_columns)
            detail = f"probe[{columns}]" if self.kind == "probe" \
                else "scan"
            return f"{detail:12} {self.literal}  " \
                   f"(~{self.relation_size} rows)"
        return f"{self.kind:12} {self.literal}"


@dataclass(frozen=True)
class RulePlan:
    """The ordered plan of one rule."""

    rule: Rule
    steps: tuple[PlanStep, ...]

    def render(self) -> str:
        lines = [f"{self.rule.label or '?'}: {self.rule}"]
        for index, step in enumerate(self.steps, start=1):
            lines.append(f"  {index}. {step.render()}")
        return "\n".join(lines)


def plan_rule(rule: Rule, program: Program, edb: Database,
              idb: Database | None = None,
              planner: str = "greedy") -> RulePlan:
    """Compute the execution plan one rule would use.

    IDB relation sizes come from ``idb`` when given (e.g. a finished
    evaluation's result) and are treated as empty otherwise, matching
    what the engine would see at the start of the fixpoint.
    """
    def relation_for(atom: Atom):
        if atom.pred in program.idb_predicates:
            if idb is not None and atom.pred in idb:
                return idb.relation(atom.pred)
            return None
        return edb.relation_or_empty(atom.pred, atom.arity)

    def sizes(atom: Atom, index: int) -> int:
        relation = relation_for(atom)
        return len(relation) if relation is not None else 0

    order = plan_body(rule, sizes,
                      keep_atom_order=(planner == "source"))
    bound: set[Variable] = set()
    steps: list[PlanStep] = []
    for index in order:
        literal = rule.body[index]
        if isinstance(literal, Comparison):
            kind = "bind" if literal.op == "=" and not \
                literal.variable_set() <= bound else "check"
            steps.append(PlanStep(literal, kind))
            bound.update(literal.variable_set())
            continue
        if isinstance(literal, Negation):
            steps.append(PlanStep(literal, "check"))
            continue
        columns = tuple(
            column for column, arg in enumerate(literal.args)
            if isinstance(arg, Constant)
            or (isinstance(arg, Variable) and arg in bound))
        steps.append(PlanStep(
            literal, "probe" if columns else "scan", columns,
            sizes(literal, index)))
        bound.update(literal.variable_set())
    return RulePlan(rule, tuple(steps))


def explain_plan(program: Program, edb: Database,
                 idb: Database | None = None,
                 planner: str = "greedy") -> str:
    """Render the plans of every rule of the program."""
    return "\n\n".join(
        plan_rule(rule, program, edb, idb, planner).render()
        for rule in program)


def explain_kernels(program: Program, edb: Database,
                    idb: Database | None = None,
                    planner: str = "greedy") -> str:
    """Render the compiled kernel of every rule of the program.

    This is the compiled-executor counterpart of :func:`explain_plan`:
    it shows the step program each rule is lowered to (probe patterns,
    slot binds, checks), compiled against the same size estimates
    :func:`plan_rule` uses.
    """
    from .compile import compile_rule

    def relation_size(atom: Atom, index: int) -> int:
        if atom.pred in program.idb_predicates:
            if idb is not None and atom.pred in idb:
                return len(idb.relation(atom.pred))
            return 0
        return len(edb.relation_or_empty(atom.pred, atom.arity))

    return "\n\n".join(
        compile_rule(rule, relation_size,
                     keep_atom_order=(planner == "source")).describe()
        for rule in program)
