"""Rule-level residue transformation — the Chakravarthy et al. reading.

The evaluation-based line of work [3, 9] attaches residues to individual
*rules* (not expansion sequences).  As a compile-time comparator we apply
the same push operations as the main optimizer, but restricted to
length-1 sequences: whatever optimization is expressible on single rules
happens; residues that only exist at the sequence level (Example 3.1's
``r0 r0 r0``) are invisible here.  Experiment E7 measures that gap.
"""

from __future__ import annotations

from typing import Iterable

from ..constraints.ic import IntegrityConstraint
from ..core.optimizer import OptimizationReport, SemanticOptimizer
from ..core.residues import SequenceResidue
from ..datalog.program import Program


class RuleLevelOptimizer(SemanticOptimizer):
    """A :class:`SemanticOptimizer` restricted to single-rule residues."""

    def sequence_residues(self) -> list[SequenceResidue]:
        """Rule-level systems never look past individual rules."""
        return []

    def all_residues(self) -> list[SequenceResidue]:
        return [item for item in self.rule_residues()
                if len(item.sequence) == 1]


def optimize_rule_level(program: Program,
                        ics: Iterable[IntegrityConstraint],
                        pred: str | None = None,
                        small_relations: Iterable[str] = ()
                        ) -> OptimizationReport:
    """Optimize using only rule-level residues (the [3]-style baseline)."""
    return RuleLevelOptimizer(
        program, ics, pred=pred,
        small_relations=small_relations).optimize()
