"""Residue-guided evaluation — the run-time side of the comparison.

The evaluation-paradigm approaches (Chakravarthy et al. [3]; Lee & Han
[9]) impose residues on the subqueries computed during each iteration of
the bottom-up loop.  This engine models that reading:

- *rule-level null residues* veto any derivation whose binding satisfies
  the residue condition;
- *sequence-level null residues* over a uniform sequence (the same
  recursive rule ``d`` times, optionally closed by an exit rule) veto
  derivations from delta round ``>= d_rec`` whose binding satisfies the
  condition — the delta round is a *lower bound* on the number of
  recursive applications in the derivation (rules evaluated later within
  a round already see earlier output), so ``round >= d_rec`` soundly
  implies the ``d_rec``-fold unfolding the residue was compiled against
  is present beneath the derivation;
- every candidate derivation of a guarded rule pays the residue checks
  (``stats.residue_checks``) at run time, on every iteration, for every
  query — the overhead the program-transformation approach avoids by
  folding the same conditions into the program once.

Fact residues cannot remove joins at run time with this mechanism (the
join has already produced the binding by the time the residue is
consulted), which is the structural advantage of pushing residues inside
the program.
"""

from __future__ import annotations

import time
from typing import Iterable, Mapping

from ..constraints.ic import IntegrityConstraint
from ..core.residues import generate_residues, rule_level_residues
from ..datalog.atoms import Comparison
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Variable
from ..engine import builtins
from ..engine.bindings import EvalStats
from ..engine.engine import EvaluationResult
from ..engine.seminaive import seminaive_evaluate
from ..facts.database import Database

#: A guard: check ``condition`` from delta round ``min_round`` onwards.
Guard = tuple[tuple[Comparison, ...], int]


class ResidueGuidedEngine:
    """Semi-naive evaluation with per-derivation residue checking."""

    def __init__(self, program: Program,
                 ics: Iterable[IntegrityConstraint],
                 pred: str | None = None) -> None:
        self.program = program
        self.ics = list(ics)
        self._guards: dict[str, list[Guard]] = {}
        self._attach_rule_level_guards()
        self._attach_sequence_guards(pred)

    def _attach_rule_level_guards(self) -> None:
        for ic in self.ics:
            for item in rule_level_residues(self.program, ic,
                                            useful_only=False):
                residue = item.residue
                if not residue.is_null or not residue.body:
                    continue
                condition = tuple(residue.body)
                label = item.sequence[0]
                if not _condition_vars(condition) <= \
                        self.program.rule(label).variables():
                    continue
                self._add_guard(label, condition, 0)

    def _attach_sequence_guards(self, pred: str | None) -> None:
        info = self.program.recursion_info()
        preds = [pred] if pred else sorted(info.recursive_predicates)
        for target in preds:
            if not info.is_linear(target):
                continue
            for ic in self.ics:
                if not ic.is_chain() or not ic.is_edb_only(self.program):
                    continue
                for item in generate_residues(self.program, target, ic,
                                              useful_only=False):
                    self._attach_sequence_item(target, item)

    def _attach_sequence_item(self, pred: str, item) -> None:
        residue = item.residue
        if not residue.is_null or not residue.body:
            return
        labels = item.sequence
        if len(labels) < 2:
            return
        recursive = [label for label in labels
                     if self.program.rule(label).count_occurrences(pred)]
        # Uniform sequences only: r^d optionally closed by an exit rule.
        if len(set(recursive)) != 1:
            return
        if len(recursive) not in (len(labels), len(labels) - 1):
            return
        if recursive != list(labels[:len(recursive)]):
            return
        rule_label = recursive[0]
        condition = tuple(lit for lit in residue.body
                          if isinstance(lit, Comparison))
        if len(condition) != len(residue.body):
            return
        # The condition must be over the outermost instance, whose
        # variables are the rule's own (level 0 is not renamed).
        if not _condition_vars(condition) <= \
                self.program.rule(rule_label).variables():
            return
        self._add_guard(rule_label, condition, len(recursive))

    def _add_guard(self, label: str, condition: tuple[Comparison, ...],
                   min_round: int) -> None:
        guards = self._guards.setdefault(label, [])
        if (condition, min_round) not in guards:
            guards.append((condition, min_round))

    @property
    def attached_guards(self) -> int:
        return sum(len(v) for v in self._guards.values())

    def guards_for(self, label: str) -> list[Guard]:
        return list(self._guards.get(label, ()))

    def evaluate(self, edb: Database) -> EvaluationResult:
        """Run semi-naive evaluation with the residue hook installed."""
        stats = EvalStats()

        def hook(rule: Rule, binding: Mapping[Variable, object],
                 round_index: int) -> bool:
            guards = self._guards.get(rule.label or "")
            if not guards:
                return True
            for condition, min_round in guards:
                if round_index < min_round:
                    continue
                stats.residue_checks += 1
                if all(builtins.holds(comparison, binding)
                       for comparison in condition):
                    return False  # the IC says this derivation is vacuous
            return True

        start = time.perf_counter()
        idb = seminaive_evaluate(self.program, edb, stats, hook=hook)
        elapsed = time.perf_counter() - start
        return EvaluationResult(self.program, edb, idb, stats, elapsed,
                                method="seminaive+residue-guided")


def _condition_vars(condition: tuple[Comparison, ...]
                    ) -> frozenset[Variable]:
    out: set[Variable] = set()
    for comparison in condition:
        out.update(comparison.variable_set())
    return frozenset(out)


def guided_evaluate(program: Program,
                    ics: Iterable[IntegrityConstraint],
                    edb: Database,
                    pred: str | None = None) -> EvaluationResult:
    """One-call wrapper around :class:`ResidueGuidedEngine`."""
    return ResidueGuidedEngine(program, ics, pred=pred).evaluate(edb)
