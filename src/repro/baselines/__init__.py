"""Evaluation-based comparators for the transformation approach."""

from .rule_residues import RuleLevelOptimizer, optimize_rule_level
from .guided import ResidueGuidedEngine, guided_evaluate

__all__ = ["RuleLevelOptimizer", "optimize_rule_level",
           "ResidueGuidedEngine", "guided_evaluate"]
