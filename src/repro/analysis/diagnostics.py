"""The diagnostics data model: codes, severities, spans, reports.

A :class:`Diagnostic` is one finding of an analysis pass: a stable code
(``RR001``, ``STRAT001``, ``PERF002``, ...), a severity, a message, and
— when the analysed program came from the parser — a :class:`Span`
pointing at the offending source text.  An :class:`AnalysisReport`
collects the findings of a whole run, renders them as text (optionally
with caret-annotated source excerpts) or JSON, and decides the lint
exit status (errors fail, warnings do not).

Severities:

- ``error`` — the program violates an assumption the engines or the
  optimizer *enforce*; evaluation or optimization would raise.
- ``warning`` — suspicious but executable: the paper's connectivity
  assumption, probable typos (singleton variables), guaranteed
  cross-product joins.
- ``info`` — advisory perf or applicability notes (a recursive rule
  that misses whole-body fusion, an IC outside Algorithm 3.1's class).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from ..datalog.spans import Span, caret_excerpt

#: Severity levels, most severe first.
SEVERITIES: tuple[str, ...] = ("error", "warning", "info")

_SEVERITY_RANK: Mapping[str, int] = {name: rank
                                     for rank, name in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of an analysis pass.

    Attributes:
        code: stable machine-readable code, e.g. ``RR001``; codes never
            change meaning across releases (new codes are appended).
        severity: one of :data:`SEVERITIES`.
        message: the human-readable finding, complete on its own.
        span: source range of the offending construct, when known.
        rule_label: the rule the finding is about, when rule-scoped.
        subject: the predicate or IC label the finding is about.
        pass_name: the registry name of the pass that produced it.
    """

    code: str
    severity: str
    message: str
    span: Span | None = None
    rule_label: str | None = None
    subject: str | None = None
    pass_name: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}; "
                             f"expected one of {SEVERITIES}")

    @property
    def location(self) -> str:
        """``line:column`` when the span is known, else the rule label."""
        if self.span is not None:
            return str(self.span)
        if self.rule_label:
            return self.rule_label
        return "-"

    def render(self, source: str | None = None) -> str:
        """One finding as text; with ``source``, adds a caret excerpt."""
        scope = f" [{self.rule_label}]" if self.rule_label else ""
        line = (f"{self.location}: {self.severity} {self.code}:"
                f"{scope} {self.message}")
        if source is not None and self.span is not None:
            excerpt = caret_excerpt(source, self.span)
            if excerpt:
                line += "\n" + excerpt
        return line

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready mapping; round-trips through :meth:`from_dict`."""
        data: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "span": self.span.to_dict() if self.span is not None else None,
            "rule": self.rule_label,
            "subject": self.subject,
            "pass": self.pass_name,
        }
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Diagnostic":
        span = data.get("span")
        return cls(code=data["code"], severity=data["severity"],
                   message=data["message"],
                   span=Span.from_dict(span) if span else None,
                   rule_label=data.get("rule"),
                   subject=data.get("subject"),
                   pass_name=data.get("pass", ""))

    def _sort_key(self) -> tuple[int, int, int, str, str]:
        line = self.span.line if self.span is not None else 1 << 30
        column = self.span.column if self.span is not None else 0
        return (_SEVERITY_RANK[self.severity], line, column, self.code,
                self.message)


@dataclass
class AnalysisReport:
    """All findings of one analysis run, ordered and renderable."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: The source text the program was parsed from, for excerpts.
    source: str | None = None

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def extend(self, findings: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(findings)

    def sort(self) -> None:
        self.diagnostics.sort(key=Diagnostic._sort_key)

    # -- classification ------------------------------------------------------
    def by_severity(self, severity: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity("error")

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity("warning")

    @property
    def has_errors(self) -> bool:
        return any(d.severity == "error" for d in self.diagnostics)

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings and infos allowed)."""
        return not self.has_errors

    @property
    def clean(self) -> bool:
        """No findings at all."""
        return not self.diagnostics

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def counts(self) -> dict[str, int]:
        out = {severity: 0 for severity in SEVERITIES}
        for diagnostic in self.diagnostics:
            out[diagnostic.severity] += 1
        return out

    # -- rendering -----------------------------------------------------------
    def render(self, with_excerpts: bool = True) -> str:
        """The whole report as text, one finding per paragraph."""
        if not self.diagnostics:
            return "no findings"
        source = self.source if with_excerpts else None
        lines = [d.render(source) for d in self.diagnostics]
        counts = self.counts()
        summary = ", ".join(f"{count} {severity}{'s' if count != 1 else ''}"
                            for severity, count in counts.items() if count)
        lines.append(summary)
        return "\n".join(lines)

    def summary(self) -> str:
        """A one-line roll-up, e.g. ``2 errors, 1 warning``."""
        counts = self.counts()
        parts = [f"{count} {severity}{'s' if count != 1 else ''}"
                 for severity, count in counts.items() if count]
        return ", ".join(parts) if parts else "no findings"

    def to_dict(self) -> dict[str, Any]:
        return {"diagnostics": [d.to_dict() for d in self.diagnostics],
                "counts": self.counts(),
                "ok": self.ok}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AnalysisReport":
        return cls(diagnostics=[Diagnostic.from_dict(item)
                                for item in data["diagnostics"]])
