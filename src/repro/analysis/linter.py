"""Linting front end: from source text (or bundled fixtures) to a report.

This module is the glue between the parser and the analysis passes.  It
parses a mixed source unit (rules, facts, ICs, queries), degrades parse
failures into ``PARSE001`` diagnostics instead of exceptions, and
enumerates the repository's bundled lint targets — every paper example,
the workload generator programs, and the Datalog embedded in the
``examples/`` scripts — so CI can assert they all stay clean of
error-severity findings.
"""

from __future__ import annotations

import ast
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from ..constraints import ic as ic_module
from ..constraints.ic import IntegrityConstraint
from ..datalog.atoms import Atom
from ..datalog.parser import (ParsedIC, ParsedQuery, parse_query,
                              parse_statements)
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.spans import Span
from ..datalog.terms import Variable
from ..errors import ParseError, ReproError
from .diagnostics import AnalysisReport
from .passes import AnalysisContext, make_diagnostic, run_passes


@dataclass
class LintTarget:
    """One thing to lint: either source text or an already-built program."""

    name: str
    source: str | None = None
    program: Program | None = None
    ics: tuple[IntegrityConstraint, ...] = ()
    query: Atom | None = None
    edb_hint: tuple[str, ...] = field(default=())


def _parse_error_report(error: ParseError,
                        source: str | None) -> AnalysisReport:
    span = None
    if error.line is not None:
        column = error.column if error.column is not None else 1
        span = Span(error.line, column, error.line, column + 1)
    message = str(error).splitlines()[0]
    report = AnalysisReport(source=source)
    report.diagnostics.append(
        make_diagnostic("PARSE001", message, span=span, pass_name="parse"))
    return report


def lint_source(text: str, ic_text: str | None = None,
                query_text: str | None = None,
                names: Iterable[str] | None = None) -> AnalysisReport:
    """Lint a mixed source unit.

    The unit may contain rules, facts, integrity constraints and
    queries; ``ic_text``/``query_text`` add out-of-band constraints and
    a query (the query in ``text`` wins over ``query_text``).  Source
    that fails to parse produces a single ``PARSE001`` error instead of
    raising, so the CLI can report it uniformly.
    """
    try:
        statements = parse_statements(text)
    except ParseError as error:
        return _parse_error_report(error, text)
    rules = [s for s in statements if isinstance(s, Rule)]
    parsed_ics = [s for s in statements if isinstance(s, ParsedIC)]
    queries = [s for s in statements if isinstance(s, ParsedQuery)]
    if ic_text:
        try:
            for statement in parse_statements(ic_text):
                if isinstance(statement, ParsedIC):
                    parsed_ics.append(statement)
                else:
                    raise ParseError(
                        f"expected only integrity constraints in the IC "
                        f"input, found {statement}")
        except ParseError as error:
            return _parse_error_report(error, ic_text)
    query: Atom | None = None
    if query_text:
        try:
            parsed_query = parse_query(query_text)
        except ParseError as error:
            return _parse_error_report(error, query_text)
        queries.append(parsed_query)
    for candidate in queries:
        if candidate.literals and isinstance(candidate.literals[0], Atom):
            query = candidate.literals[0]
            break
    try:
        program = Program(rules)
        ics = tuple(ic_module.from_parsed(parsed) for parsed in parsed_ics)
    except ReproError as error:
        report = AnalysisReport(source=text)
        report.diagnostics.append(
            make_diagnostic("PARSE001", str(error), pass_name="parse"))
        return report
    return lint_program(program, ics=ics, query=query, source=text,
                        names=names)


def lint_program(program: Program,
                 ics: Iterable[IntegrityConstraint] = (),
                 query: Atom | None = None, source: str | None = None,
                 names: Iterable[str] | None = None) -> AnalysisReport:
    """Run the analysis passes over an already-built program."""
    context = AnalysisContext(program=program, ics=tuple(ics), query=query,
                              source=source)
    return run_passes(context, names)


def lint_file(path: str | Path, ic_text: str | None = None,
              query_text: str | None = None,
              names: Iterable[str] | None = None) -> AnalysisReport:
    """Lint a Datalog source file."""
    return lint_source(Path(path).read_text(encoding="utf-8"),
                       ic_text=ic_text, query_text=query_text, names=names)


# ---------------------------------------------------------------------------
# bundled targets: paper examples, generators, examples/ scripts
# ---------------------------------------------------------------------------

def _query_for(program: Program, pred: str) -> Atom | None:
    """A fresh-variable query atom over ``pred``, if its arity is known."""
    try:
        arity = program.predicate_arities().get(pred)
    except ReproError:
        return None
    if arity is None:
        return None
    return Atom(pred, tuple(Variable(f"Q{index + 1}")
                            for index in range(arity)))


def _script_sources(path: Path) -> tuple[str | None, str | None]:
    """Module-level PROGRAM / CONSTRAINTS string constants of a script."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    program_text: str | None = None
    ic_text: str | None = None
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if not isinstance(node.value, ast.Constant) \
                or not isinstance(node.value.value, str):
            continue
        upper = target.id.upper()
        if "PROGRAM" in upper or "RULES" in upper:
            program_text = node.value.value
        elif "CONSTRAINT" in upper or upper.startswith("IC"):
            ic_text = node.value.value
    return program_text, ic_text


def bundled_targets(examples_dir: str | Path | None = None,
                    generator_seeds: int = 3) -> list[LintTarget]:
    """Everything the repository ships that should lint without errors."""
    from ..workloads import (ALL_EXAMPLES, random_linear_program,
                             transitive_closure_program)

    targets: list[LintTarget] = []
    for factory in ALL_EXAMPLES:
        example = factory()
        targets.append(LintTarget(
            name=f"workloads/{example.name}", program=example.program,
            ics=example.ics,
            query=_query_for(example.program, example.pred)))
    closure = transitive_closure_program()
    targets.append(LintTarget(name="generators/transitive_closure",
                              source=closure, query=None))
    for seed in range(generator_seeds):
        source, _db = random_linear_program(random.Random(seed))
        targets.append(LintTarget(
            name=f"generators/random_linear_program[seed={seed}]",
            source=source))
    if examples_dir is not None:
        for path in sorted(Path(examples_dir).glob("*.py")):
            program_text, ic_text = _script_sources(path)
            if program_text is None:
                continue
            if ic_text:
                program_text = program_text + "\n" + ic_text
            targets.append(LintTarget(name=f"examples/{path.name}",
                                      source=program_text))
    return targets


def lint_target(target: LintTarget,
                names: Iterable[str] | None = None) -> AnalysisReport:
    if target.program is not None:
        return lint_program(target.program, ics=target.ics,
                            query=target.query, source=target.source,
                            names=names)
    assert target.source is not None
    return lint_source(target.source, names=names)


def bundled_reports(examples_dir: str | Path | None = None,
                    names: Iterable[str] | None = None
                    ) -> Iterator[tuple[LintTarget, AnalysisReport]]:
    """Lint every bundled target, yielding ``(target, report)`` pairs."""
    for target in bundled_targets(examples_dir):
        yield target, lint_target(target, names=names)
