"""SARIF 2.1.0 serialization of analysis reports.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format GitHub code scanning (and most editor lint
surfaces) ingest.  One :func:`sarif_report` call turns any number of
``(artifact, AnalysisReport)`` pairs into a single-run SARIF log:
every code in :data:`CODES` becomes a rule of the tool driver, every
:class:`Diagnostic` a result with its severity mapped onto SARIF
levels (``error``/``warning`` pass through; ``info`` becomes
``note``) and its :class:`Span` onto a physical-location region.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from .diagnostics import AnalysisReport, Diagnostic
from .passes import CODES, REGISTRY

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: repro severity -> SARIF result level.
_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def _rules() -> list[dict[str, Any]]:
    """One SARIF ``reportingDescriptor`` per diagnostic code."""
    owner: dict[str, str] = {}
    for analysis_pass in REGISTRY.values():
        for code in analysis_pass.codes:
            owner.setdefault(code, analysis_pass.name)
    rules = []
    for code, (severity, summary) in CODES.items():
        rule: dict[str, Any] = {
            "id": code,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {"level": _LEVELS[severity]},
        }
        if code in owner:
            rule["properties"] = {"pass": owner[code]}
        rules.append(rule)
    return rules


def _result(artifact: str, diagnostic: Diagnostic) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": diagnostic.code,
        "level": _LEVELS[diagnostic.severity],
        "message": {"text": diagnostic.message},
    }
    location: dict[str, Any] = {
        "physicalLocation": {
            "artifactLocation": {"uri": artifact},
        }
    }
    if diagnostic.span is not None:
        location["physicalLocation"]["region"] = {
            "startLine": diagnostic.span.line,
            "startColumn": diagnostic.span.column,
            "endLine": diagnostic.span.end_line,
            "endColumn": diagnostic.span.end_column,
        }
    if diagnostic.rule_label or diagnostic.subject:
        properties: dict[str, Any] = {}
        if diagnostic.rule_label:
            properties["rule"] = diagnostic.rule_label
        if diagnostic.subject:
            properties["subject"] = diagnostic.subject
        if diagnostic.pass_name:
            properties["pass"] = diagnostic.pass_name
        result["properties"] = properties
    result["locations"] = [location]
    return result


def sarif_report(reports: Iterable[tuple[str, AnalysisReport]],
                 tool_version: str | None = None) -> dict[str, Any]:
    """A SARIF log (as a JSON-ready dict) covering ``reports``.

    ``reports`` pairs an artifact URI (the linted file or target name)
    with its :class:`AnalysisReport`.
    """
    driver: dict[str, Any] = {
        "name": "repro-lint",
        "informationUri": "https://example.invalid/repro",
        "rules": _rules(),
    }
    if tool_version:
        driver["version"] = tool_version
    results: list[dict[str, Any]] = []
    for artifact, report in reports:
        results.extend(_result(artifact, diagnostic)
                       for diagnostic in report)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": driver},
            "results": results,
        }],
    }


def render_sarif(reports: Iterable[tuple[str, AnalysisReport]],
                 tool_version: str | None = None) -> str:
    """:func:`sarif_report` as an indented JSON string."""
    return json.dumps(sarif_report(reports, tool_version=tool_version),
                      indent=2, sort_keys=False)
