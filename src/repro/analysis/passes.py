"""The analysis passes and their registry.

Each pass inspects an :class:`AnalysisContext` — a program, optional
integrity constraints and an optional query — and yields
:class:`Diagnostic` findings.  Passes are registered by name with the
codes they may emit, so tooling (the ``lint`` CLI, the docs, the test
suite's coverage assertion) can enumerate them.

The severity table :data:`CODES` is the single source of truth: the
severity of a code is looked up there, never restated at emission
sites, so a code always means the same thing everywhere.

The *error*-severity passes mirror exactly the preconditions the
engines and the optimizer enforce at runtime (``validate_program``,
``require_linear``, ``stratify``, ``_check_atom_args``,
``validate_ics``): a program with no error-level findings loads, and a
program with one fails to load with the same complaint the lint already
gave — with a source location attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

import networkx as nx

from ..constraints.ic import IntegrityConstraint
from ..datalog.analysis import (bound_variables, is_range_restricted,
                                rule_is_connected)
from ..datalog.atoms import Atom, Comparison, Negation
from ..datalog.program import Program
from ..datalog.rules import Rule, is_connected
from ..datalog.spans import Span
from ..datalog.terms import ArithExpr, Constant, Variable
from ..engine import builtins
from ..engine.bindings import bound_columns_of, plan_body
from .diagnostics import AnalysisReport, Diagnostic

#: code -> (severity, one-line summary).  Codes are stable: they never
#: change meaning; new checks get new codes.
CODES: dict[str, tuple[str, str]] = {
    "RR001": ("error", "rule is not range restricted"),
    "SAFE001": ("error",
                "variable not bound by a positive database atom"),
    "SAFE002": ("error", "arithmetic expression inside a database atom"),
    "CONN001": ("warning", "rule body is not connected"),
    "LIN001": ("error", "mutual recursion between predicates"),
    "LIN002": ("error", "rule is non-linear in its recursive component"),
    "STRAT001": ("error", "negation on a recursive cycle"),
    "ARITY001": ("error", "predicate used with inconsistent arities"),
    "TYPE001": ("warning", "predicate column mixes constant types"),
    "DEAD001": ("warning", "rule unreachable from the query"),
    "DEAD002": ("warning", "predicate unreachable from the query"),
    "VAR001": ("warning", "variable occurs only once in its rule"),
    "IC001": ("error", "IC mentions IDB predicates"),
    "IC002": ("warning", "IC is not connected"),
    "IC003": ("info", "IC is not chain-shaped (Algorithm 3.1)"),
    "IC004": ("info", "IC yields no useful residue for the recursion"),
    "PERF001": ("info", "recursive rule misses whole-body fusion"),
    "PERF002": ("warning", "positive atoms form a guaranteed cross product"),
    "PERF003": ("warning", "source-order evaluation forces a cross product"),
    "PERF004": ("warning",
                "recursive existence guard degrades deletion maintenance"),
    "TYPE002": ("warning",
                "rule heads give a predicate column conflicting types"),
    "DEAD003": ("warning", "predicate is provably empty"),
    "SAT001": ("warning", "comparison is statically unsatisfiable"),
    "BOUND001": ("warning",
                 "non-linear recursion has no static size bound"),
    "PARSE001": ("error", "source text could not be parsed"),
}


#: The passes whose error findings are *preconditions*: programs that
#: fail them are rejected by ``repro evaluate``/``optimize`` at load
#: time (matching the historical ``validate_program(...).ok`` gate).
PRECONDITION_PASSES: tuple[str, ...] = ("range-restriction", "safety",
                                        "linearity")


def severity_of(code: str) -> str:
    return CODES[code][0]


def make_diagnostic(code: str, message: str, *, span: Span | None = None,
                    rule: str | None = None, subject: str | None = None,
                    pass_name: str = "") -> Diagnostic:
    """Build a :class:`Diagnostic` with the severity from :data:`CODES`."""
    return Diagnostic(code=code, severity=severity_of(code), message=message,
                      span=span, rule_label=rule, subject=subject,
                      pass_name=pass_name)


@dataclass
class AnalysisContext:
    """Everything a pass may look at.

    Attributes:
        program: the program under analysis.
        ics: integrity constraints to check alongside the program.
        query: the query atom, when known; query-dependent passes
            (reachability, residue usefulness) are skipped without one.
        source: the source text the program was parsed from, used only
            for rendering excerpts — never consulted by passes.
    """

    program: Program
    ics: tuple[IntegrityConstraint, ...] = ()
    query: Atom | None = None
    source: str | None = None


PassFn = Callable[[AnalysisContext], Iterable[Diagnostic]]


@dataclass(frozen=True)
class AnalysisPass:
    """A registered pass: its name, emittable codes and entry point."""

    name: str
    codes: tuple[str, ...]
    description: str
    run: PassFn = field(compare=False)


#: Registry of all passes, in registration (= execution) order.
REGISTRY: dict[str, AnalysisPass] = {}


def register(name: str, codes: Iterable[str],
             description: str) -> Callable[[PassFn], PassFn]:
    """Class-level decorator adding a pass to :data:`REGISTRY`."""
    code_tuple = tuple(codes)
    for code in code_tuple:
        if code not in CODES:
            raise ValueError(f"pass {name!r} declares unknown code {code}")

    def decorate(fn: PassFn) -> PassFn:
        if name in REGISTRY:
            raise ValueError(f"duplicate pass name {name!r}")
        REGISTRY[name] = AnalysisPass(name, code_tuple, description, fn)
        return fn

    return decorate


def run_passes(context: AnalysisContext,
               names: Iterable[str] | None = None) -> AnalysisReport:
    """Run the selected passes (all by default) and collect a report."""
    report = AnalysisReport(source=context.source)
    selected = list(names) if names is not None else list(REGISTRY)
    for name in selected:
        try:
            analysis_pass = REGISTRY[name]
        except KeyError:
            import difflib
            close = difflib.get_close_matches(name, list(REGISTRY), n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            raise ValueError(
                f"unknown analysis pass {name!r}{hint}; "
                f"known: {', '.join(REGISTRY)}") from None
        for diagnostic in analysis_pass.run(context):
            if diagnostic.pass_name:
                report.diagnostics.append(diagnostic)
            else:
                report.diagnostics.append(
                    Diagnostic(code=diagnostic.code,
                               severity=diagnostic.severity,
                               message=diagnostic.message,
                               span=diagnostic.span,
                               rule_label=diagnostic.rule_label,
                               subject=diagnostic.subject,
                               pass_name=name))
    report.sort()
    return report


def analyze_program(program: Program,
                    ics: Iterable[IntegrityConstraint] = (),
                    query: Atom | None = None,
                    source: str | None = None,
                    names: Iterable[str] | None = None) -> AnalysisReport:
    """Convenience wrapper: build a context and run the passes."""
    context = AnalysisContext(program=program, ics=tuple(ics), query=query,
                              source=source)
    return run_passes(context, names)


# ---------------------------------------------------------------------------
# helpers shared by several passes
# ---------------------------------------------------------------------------

def _rule_span(rule: Rule) -> Span | None:
    return rule.span if rule.span is not None else rule.head.span


def _names(variables: Iterable[Variable]) -> str:
    return ", ".join(sorted(v.name for v in variables))


def _scc_of(program: Program) -> dict[str, frozenset[str]]:
    graph = program.dependency_graph()
    out: dict[str, frozenset[str]] = {}
    for component in nx.strongly_connected_components(graph):
        frozen = frozenset(component)
        for pred in frozen:
            out[pred] = frozen
    return out


# ---------------------------------------------------------------------------
# 1. range restriction (paper assumption 1)
# ---------------------------------------------------------------------------

@register("range-restriction", ["RR001"],
          "every head variable must appear in the body (assumption 1)")
def check_range_restriction(context: AnalysisContext) -> Iterator[Diagnostic]:
    for rule in context.program:
        if is_range_restricted(rule):
            continue
        missing = rule.head_variables() - rule.body_variables()
        yield make_diagnostic(
            "RR001",
            f"head variable{'s' if len(missing) > 1 else ''} "
            f"{_names(missing)} never appear{'s' if len(missing) == 1 else ''}"
            f" in the body; the rule is not range restricted",
            span=rule.head.span or rule.span, rule=rule.label,
            subject=rule.head.pred)


# ---------------------------------------------------------------------------
# 2. safety (engine precondition)
# ---------------------------------------------------------------------------

@register("safety", ["SAFE001", "SAFE002"],
          "every variable must be bound by positive atoms (via = chains); "
          "database atoms take only variables and constants")
def check_safety(context: AnalysisContext) -> Iterator[Diagnostic]:
    for rule in context.program:
        bound = bound_variables(rule)
        in_body = rule.body_variables()
        flagged: set[Variable] = set()
        for lit in rule.body:
            if isinstance(lit, (Atom, Negation)):
                atom = lit if isinstance(lit, Atom) else lit.atom
                if any(isinstance(arg, ArithExpr) for arg in atom.args):
                    yield make_diagnostic(
                        "SAFE002",
                        f"database atom {atom} contains an arithmetic "
                        "expression; compute it with '=' into a fresh "
                        "variable instead",
                        span=lit.span or _rule_span(rule), rule=rule.label,
                        subject=atom.pred)
            if isinstance(lit, Negation):
                unbound = (lit.variable_set() & in_body) - bound
                if unbound:
                    flagged.update(unbound)
                    yield make_diagnostic(
                        "SAFE001",
                        f"variable{'s' if len(unbound) > 1 else ''} "
                        f"{_names(unbound)} in {lit} not bound by a "
                        "positive database atom",
                        span=lit.span or _rule_span(rule), rule=rule.label)
            elif isinstance(lit, Comparison):
                unbound = lit.variable_set() - bound
                if unbound:
                    flagged.update(unbound)
                    yield make_diagnostic(
                        "SAFE001",
                        f"variable{'s' if len(unbound) > 1 else ''} "
                        f"{_names(unbound)} in {lit} cannot be bound; "
                        "comparisons only check or compute over already "
                        "bound variables",
                        span=lit.span or _rule_span(rule), rule=rule.label)
        head_unbound = (rule.head_variables() & in_body) - bound - flagged
        if head_unbound:
            yield make_diagnostic(
                "SAFE001",
                f"head variable{'s' if len(head_unbound) > 1 else ''} "
                f"{_names(head_unbound)} only appear{'s' if len(head_unbound) == 1 else ''} "
                "in comparisons or negations and cannot be bound",
                span=rule.head.span or rule.span, rule=rule.label,
                subject=rule.head.pred)


# ---------------------------------------------------------------------------
# 3. connectivity (paper assumption 2)
# ---------------------------------------------------------------------------

@register("connectivity", ["CONN001"],
          "rule bodies should form one variable-connected component "
          "(assumption 2)")
def check_connectivity(context: AnalysisContext) -> Iterator[Diagnostic]:
    for rule in context.program:
        if rule.body and not rule_is_connected(rule):
            yield make_diagnostic(
                "CONN001",
                "rule body is not connected: some literals share no "
                "variables with the rest (the paper's assumption 2); "
                "the join degenerates to a cross product",
                span=_rule_span(rule), rule=rule.label,
                subject=rule.head.pred)


# ---------------------------------------------------------------------------
# 4. linearity / mutual recursion (paper assumption 3)
# ---------------------------------------------------------------------------

@register("linearity", ["LIN001", "LIN002"],
          "recursion must be linear and not mutual (assumption 3)")
def check_linearity(context: AnalysisContext) -> Iterator[Diagnostic]:
    program = context.program
    info = program.recursion_info()
    for group in info.mutual_groups:
        members = sorted(group)
        span = None
        for pred in members:
            rules = program.rules_for(pred)
            if rules:
                span = _rule_span(rules[0])
                break
        yield make_diagnostic(
            "LIN001",
            f"predicates {', '.join(members)} are mutually recursive; "
            "the paper's algorithms require linear recursion without "
            "mutual recursion",
            span=span, subject=members[0])
    scc_of = _scc_of(program)
    recursive = info.recursive_predicates
    for rule in program:
        head = rule.head.pred
        if head not in recursive:
            continue
        component = scc_of[head]
        same = [a for a in rule.database_atoms()
                if a.pred in recursive and scc_of.get(a.pred) == component]
        if len(same) > 1:
            yield make_diagnostic(
                "LIN002",
                f"rule is non-linear: its body mentions the recursive "
                f"component of {head} {len(same)} times "
                f"({', '.join(str(a) for a in same)})",
                span=_rule_span(rule), rule=rule.label, subject=head)


# ---------------------------------------------------------------------------
# 5. stratification
# ---------------------------------------------------------------------------

@register("stratification", ["STRAT001"],
          "negation must not occur on a recursive cycle")
def check_stratification(context: AnalysisContext) -> Iterator[Diagnostic]:
    program = context.program
    graph = program.dependency_graph()
    scc_of = _scc_of(program)
    for source, target, data in sorted(graph.edges(data=True)):
        if not data.get("negative") or scc_of[source] != scc_of[target]:
            continue
        try:
            back = nx.shortest_path(graph, target, source)
        except nx.NetworkXNoPath:  # pragma: no cover - same SCC has a path
            back = [target, source]
        cycle = " -> ".join([*back, target])
        span = None
        label = None
        for rule in program.rules_for(target):
            for lit in rule.body:
                if isinstance(lit, Negation) and lit.atom.pred == source:
                    span = lit.span or _rule_span(rule)
                    label = rule.label
                    break
            if span is not None:
                break
        yield make_diagnostic(
            "STRAT001",
            f"program is not stratifiable: {target} depends negatively "
            f"on {source} inside the recursive cycle {cycle}",
            span=span, rule=label, subject=target)


# ---------------------------------------------------------------------------
# 6. arity and constant-type consistency
# ---------------------------------------------------------------------------

def _constant_kind(value: object) -> str:
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    return "string"


def _program_atoms(context: AnalysisContext
                   ) -> Iterator[tuple[Atom, Rule | None]]:
    """Every database atom in rules, ICs and the query, with its rule."""
    for rule in context.program:
        yield rule.head, rule
        for lit in rule.body:
            if isinstance(lit, Atom):
                yield lit, rule
            elif isinstance(lit, Negation):
                yield lit.atom, rule
    for ic in context.ics:
        for lit in ic.all_literals():
            if isinstance(lit, Atom):
                yield lit, None
    if context.query is not None:
        yield context.query, None


@register("consistency", ["ARITY001", "TYPE001"],
          "predicates must keep one arity; columns should keep one "
          "constant type")
def check_consistency(context: AnalysisContext) -> Iterator[Diagnostic]:
    arities: dict[str, tuple[int, Atom]] = {}
    column_kinds: dict[tuple[str, int], dict[str, Atom]] = {}
    mismatched: set[str] = set()
    for atom, rule in _program_atoms(context):
        label = rule.label if rule is not None else None
        known = arities.setdefault(atom.pred, (atom.arity, atom))
        if known[0] != atom.arity and atom.pred not in mismatched:
            mismatched.add(atom.pred)
            yield make_diagnostic(
                "ARITY001",
                f"predicate {atom.pred} used with arity {atom.arity} here "
                f"but arity {known[0]} at {known[1]}",
                span=atom.span, rule=label, subject=atom.pred)
        for column, arg in enumerate(atom.args):
            if not isinstance(arg, Constant):
                continue
            kinds = column_kinds.setdefault((atom.pred, column), {})
            kind = _constant_kind(arg.value)
            kinds.setdefault(kind, atom)
            if len(kinds) == 2 and kind in kinds:
                first_kind, first_atom = next(
                    (k, a) for k, a in kinds.items() if k != kind)
                yield make_diagnostic(
                    "TYPE001",
                    f"column {column + 1} of {atom.pred} holds a {kind} "
                    f"constant here but a {first_kind} constant at "
                    f"{first_atom}; mixed types never join",
                    span=atom.span, rule=label, subject=atom.pred)
                kinds["__reported__"] = atom


# ---------------------------------------------------------------------------
# 7. reachability w.r.t. the query
# ---------------------------------------------------------------------------

@register("reachability", ["DEAD001", "DEAD002"],
          "rules and predicates should contribute to the query "
          "(skipped when no query is given)")
def check_reachability(context: AnalysisContext) -> Iterator[Diagnostic]:
    if context.query is None:
        return
    program = context.program
    graph = program.dependency_graph()
    goal = context.query.pred
    if goal in graph:
        reachable = set(nx.ancestors(graph, goal)) | {goal}
    else:
        reachable = {goal}
    for pred in sorted(program.idb_predicates - reachable):
        yield make_diagnostic(
            "DEAD002",
            f"predicate {pred} is never used when answering "
            f"?- {context.query}; its rules are dead code",
            subject=pred,
            span=_rule_span(program.rules_for(pred)[0]))
    for rule in program:
        if rule.head.pred in reachable:
            continue
        yield make_diagnostic(
            "DEAD001",
            f"rule defines {rule.head.pred}, which the query "
            f"?- {context.query} cannot reach",
            span=_rule_span(rule), rule=rule.label, subject=rule.head.pred)


# ---------------------------------------------------------------------------
# 8. singleton variables
# ---------------------------------------------------------------------------

@register("singleton-variables", ["VAR001"],
          "a variable used exactly once is usually a typo; prefix with "
          "'_' to silence")
def check_singletons(context: AnalysisContext) -> Iterator[Diagnostic]:
    for rule in context.program:
        counts: dict[Variable, int] = {}
        for variable in rule.head.variables():
            counts[variable] = counts.get(variable, 0) + 1
        for lit in rule.body:
            for variable in lit.variables():
                counts[variable] = counts.get(variable, 0) + 1
        singles = sorted((v.name for v, n in counts.items()
                          if n == 1 and not v.name.startswith("_")))
        if singles:
            yield make_diagnostic(
                "VAR001",
                f"variable{'s' if len(singles) > 1 else ''} "
                f"{', '.join(singles)} occur{'s' if len(singles) == 1 else ''}"
                " only once; prefix with '_' if intentional",
                span=_rule_span(rule), rule=rule.label,
                subject=rule.head.pred)


# ---------------------------------------------------------------------------
# 9. IC well-formedness (paper assumption 4 + Algorithm 3.1 applicability)
# ---------------------------------------------------------------------------

def _target_predicate(context: AnalysisContext) -> str | None:
    """The recursive predicate residues would be generated for."""
    info = context.program.recursion_info()
    recursive = info.recursive_predicates
    if context.query is not None and context.query.pred in recursive:
        return context.query.pred
    if len(recursive) == 1:
        return next(iter(recursive))
    return None


@register("ic-wellformedness", ["IC001", "IC002", "IC003", "IC004"],
          "ICs must be EDB-only and connected; chain shape and a useful "
          "residue make them optimizable")
def check_ics(context: AnalysisContext) -> Iterator[Diagnostic]:
    if not context.ics:
        return
    target = _target_predicate(context)
    for ic in context.ics:
        name = ic.label or str(ic)
        edb_only = ic.is_edb_only(context.program)
        if not edb_only:
            idb = sorted({a.pred for a in ic.database_atoms()
                          if not context.program.is_edb(a.pred)}
                         | ({ic.head.pred} if isinstance(ic.head, Atom)
                            and not context.program.is_edb(ic.head.pred)
                            else set()))
            yield make_diagnostic(
                "IC001",
                f"IC {name} mentions IDB predicate{'s' if len(idb) > 1 else ''} "
                f"{', '.join(idb)}; the paper considers EDB-only "
                "constraints (assumption 4)",
                span=ic.span, subject=ic.label)
        if not ic.is_connected():
            yield make_diagnostic(
                "IC002",
                f"IC {name} is not connected (assumption 2): some "
                "literals share no variables with the rest",
                span=ic.span, subject=ic.label)
            continue
        if not edb_only:
            continue
        if not ic.is_chain():
            yield make_diagnostic(
                "IC003",
                f"IC {name} is not chain-shaped; Algorithm 3.1's SD-graph "
                "walk requires each database atom to share variables "
                "exactly with its chain neighbours",
                span=ic.span, subject=ic.label)
            continue
        if target is None:
            continue
        try:
            from ..core.residues import generate_residues
            residues = generate_residues(context.program, target, ic)
        except Exception:  # applicability precheck only — never fatal
            continue
        if not residues:
            yield make_diagnostic(
                "IC004",
                f"IC {name} yields no useful residue for the recursion "
                f"of {target}; pushing it would not specialize this "
                "program",
                span=ic.span, subject=ic.label)


# ---------------------------------------------------------------------------
# 10. performance lints
# ---------------------------------------------------------------------------

def _fusion_blockers(rule: Rule) -> list[str]:
    """Why ``engine.compile`` whole-body fusion would skip this rule."""
    blockers: list[str] = []
    if any(isinstance(lit, Comparison) for lit in rule.body):
        blockers.append("comparisons in the body")
    if any(isinstance(lit, Negation) for lit in rule.body):
        blockers.append("negation in the body")
    if any(isinstance(arg, ArithExpr) for arg in rule.head.args):
        blockers.append("an arithmetic head argument")
    return blockers


@register("perf", ["PERF001", "PERF002", "PERF003", "PERF004"],
          "hot-loop shape: whole-body fusion eligibility, "
          "cross-product-shaped join orders, and existence guards that "
          "degrade deletion maintenance")
def check_perf(context: AnalysisContext) -> Iterator[Diagnostic]:
    program = context.program
    recursive = program.recursion_info().recursive_predicates
    scc_of: dict[str, int] = {}
    for number, component in enumerate(
            nx.strongly_connected_components(program.dependency_graph())):
        for pred in component:
            scc_of[pred] = number
    for rule in program:
        if not rule.body:
            continue
        if rule.head.pred in recursive and len(rule.database_atoms()) > 1:
            blockers = _fusion_blockers(rule)
            if blockers:
                yield make_diagnostic(
                    "PERF001",
                    f"recursive rule cannot use whole-body fusion "
                    f"({' and '.join(blockers)}); its join runs on the "
                    "generic closure path every round",
                    span=_rule_span(rule), rule=rule.label,
                    subject=rule.head.pred)
        yield from _existence_guards(rule, recursive, scc_of)
        atoms = rule.database_atoms()
        if len(atoms) > 1 and not is_connected(atoms):
            yield make_diagnostic(
                "PERF002",
                "the positive database atoms share no variables across "
                "some split, so every join order pays a cross product",
                span=_rule_span(rule), rule=rule.label,
                subject=rule.head.pred)
            continue  # PERF003 would restate the same problem
        cross = _source_order_cross_product(rule)
        if cross is not None:
            yield make_diagnostic(
                "PERF003",
                f"in source order, {cross} joins with no bound column "
                "(a cross product); the greedy planner reorders it, but "
                "a fixed-order evaluator would pay it — consider "
                "reordering the body",
                span=cross.span or _rule_span(rule), rule=rule.label,
                subject=rule.head.pred)


def _existence_guards(rule: Rule, recursive: frozenset[str],
                      scc_of: dict[str, int]) -> Iterator[Diagnostic]:
    """PERF004: recursive atoms whose bindings reach nothing else.

    A positive atom from the head's own recursive component whose
    variables touch neither the head nor any other body literal only
    *gates* the rule — any single row satisfies it.  Deletion
    maintenance (DRed) is degenerate on such a guard: removing one
    guard row overdeletes every head fact this rule derived, and the
    rederivation pass then restores almost all of them.
    """
    head_scc = scc_of.get(rule.head.pred)
    for position, lit in enumerate(rule.body):
        if not isinstance(lit, Atom) or lit.pred not in recursive:
            continue
        if scc_of.get(lit.pred) != head_scc:
            continue
        elsewhere: set[Variable] = set(rule.head.variable_set())
        for other_position, other in enumerate(rule.body):
            if other_position != position:
                elsewhere.update(other.variable_set())
        if lit.variable_set() & elsewhere:
            continue
        yield make_diagnostic(
            "PERF004",
            f"{lit} only gates the rule (its variables bind nothing "
            "else); deleting any of its rows makes DRed overdelete "
            f"every {rule.head.pred} fact from this rule before "
            "rederiving them — bind a shared variable or move the "
            "guard to a non-recursive predicate",
            span=lit.span or _rule_span(rule), rule=rule.label,
            subject=rule.head.pred)


def _source_order_cross_product(rule: Rule) -> Atom | None:
    """First atom that probes with zero bound columns in source order."""
    try:
        order = plan_body(rule, sizes=lambda atom, index: 1,
                          keep_atom_order=True)
    except Exception:  # unplannable bodies are the safety pass's concern
        return None
    bound: set[Variable] = set()
    seen_atom = False
    for index in order:
        lit = rule.body[index]
        if isinstance(lit, Atom):
            if (seen_atom and lit.args
                    and not bound_columns_of(lit, bound)):
                return lit
            seen_atom = True
            bound.update(lit.variables())
        elif isinstance(lit, Comparison):
            if builtins.can_bind(lit, bound):
                bound.update(lit.variable_set())
    return None


# ---------------------------------------------------------------------------
# 11. dataflow (abstract interpretation)
# ---------------------------------------------------------------------------

@register("dataflow", ["TYPE002", "DEAD003", "SAT001", "BOUND001"],
          "fixpoint abstract interpretation: cross-rule column types, "
          "provably empty predicates, statically unsatisfiable "
          "comparisons, and unbounded non-linear recursion")
def check_dataflow(context: AnalysisContext) -> Iterator[Diagnostic]:
    from ..errors import ReproError
    from .dataflow import INF, analyze_dataflow
    program = context.program
    try:
        flow = analyze_dataflow(program, query=context.query)
    except ReproError:
        return  # inconsistent arities etc.; the consistency pass reports
    for entry in flow.unsat:
        yield make_diagnostic(
            "SAT001",
            f"comparison {entry.comparison} can never hold: "
            f"{entry.reason}; the rule derives nothing",
            span=entry.comparison.span or _rule_span(entry.rule),
            rule=entry.rule.label, subject=entry.rule.head.pred)
    for pred in sorted(flow.empty & program.idb_predicates):
        rules = program.rules_for(pred)
        span = _rule_span(rules[0]) if rules else None
        reasons = sorted({reason for rule, reason in flow.dead_rules.items()
                          if rule.head.pred == pred})
        detail = f" ({reasons[0]})" if reasons else ""
        yield make_diagnostic(
            "DEAD003",
            f"{pred} is provably empty: no rule for it can ever "
            f"derive a fact{detail}",
            span=span, subject=pred)
    for (pred, column), entries in sorted(flow.head_kinds.items()):
        for index, (label_a, kinds_a) in enumerate(entries):
            conflict = next(
                ((label_b, kinds_b)
                 for label_b, kinds_b in entries[index + 1:]
                 if not (kinds_a & kinds_b)), None)
            if conflict is not None:
                label_b, kinds_b = conflict
                yield make_diagnostic(
                    "TYPE002",
                    f"column {column} of {pred} is "
                    f"{'/'.join(sorted(kinds_a))} in rule {label_a} but "
                    f"{'/'.join(sorted(kinds_b))} in rule {label_b}; "
                    "the join of these rules can never share values",
                    subject=pred)
                break
    info = program.recursion_info()
    for pred in sorted(info.nonlinear_predicates):
        if flow.size_bound(pred) == INF:
            rules = program.recursive_rules(pred)
            yield make_diagnostic(
                "BOUND001",
                f"{pred} recurses non-linearly and the size-bound "
                "analysis cannot bound its growth; evaluation cost may "
                "be quadratic in the fixpoint size per round",
                span=_rule_span(rules[0]) if rules else None,
                subject=pred)
