"""Static analysis: the diagnostics engine and the lint passes.

``repro.analysis`` turns the paper's standing assumptions (Section 1)
and the engines' runtime preconditions into a single battery of
re-runnable checks with stable diagnostic codes and source spans.  The
``lint`` CLI subcommand, the shell's ``:lint`` command, and the
program-loading precondition checks all route through here, so a
violation is reported identically everywhere — and *before* the
optimizer or an engine trips over it.
"""

from .dataflow import DataflowResult, Domain, analyze_dataflow
from .diagnostics import SEVERITIES, AnalysisReport, Diagnostic
from .linter import (LintTarget, bundled_reports, bundled_targets,
                     lint_file, lint_program, lint_source, lint_target)
from .passes import (CODES, PRECONDITION_PASSES, REGISTRY, AnalysisContext,
                     AnalysisPass, analyze_program, make_diagnostic,
                     run_passes, severity_of)
from .sarif import render_sarif, sarif_report

__all__ = [
    "SEVERITIES", "AnalysisReport", "Diagnostic",
    "DataflowResult", "Domain", "analyze_dataflow",
    "LintTarget", "bundled_reports", "bundled_targets",
    "lint_file", "lint_program", "lint_source", "lint_target",
    "CODES", "PRECONDITION_PASSES", "REGISTRY", "AnalysisContext",
    "AnalysisPass", "analyze_program", "make_diagnostic", "run_passes",
    "severity_of", "render_sarif", "sarif_report",
]
