"""Fixpoint abstract interpretation over Datalog programs.

One abstract-interpretation engine powers four analyses:

1. **Type/domain inference** — every predicate column gets an abstract
   :class:`Domain` (a small constant set, a numeric interval, or a
   symbol-class set), seeded from EDB contents when a database is given
   and joined across rule heads to a fixpoint (with interval widening,
   so head arithmetic such as ``p(X + 1) :- p(X)`` terminates).
2. **Binding-pattern (adornment) analysis** — bound/free patterns are
   propagated from the query atom through rule bodies left to right
   (``=`` binds), enumerating the adornments each IDB predicate is
   called with.
3. **Constant propagation + unsatisfiability** — comparisons are
   evaluated against the inferred domains; a comparison that is false
   for every possible value kills its rule, and a predicate with no
   live rule is *provably empty*.
4. **Size-bound analysis** — per-column distinct-value bounds flow
   along a value-flow closure from EDB columns to IDB columns, giving
   per-predicate (and per-adornment) cardinality upper bounds from EDB
   sizes and rule structure alone.

Soundness is the contract: every inference is an *over*-approximation
of the concrete fixpoint, so "provably empty" predicates really
evaluate to zero rows, "provably true" comparisons never filter a row,
and size bounds never undershoot.  Two deliberate design points keep
the approximation honest:

- ``compare_values`` raises on mixed-type ordering, so an ordering
  verdict (true/false) or an ordering-based domain refinement is only
  drawn when no possible value pair could raise — either both sides
  are surely numeric, or an exhaustive constant-pair evaluation
  observed no error.  (``=``/``!=`` never raise and may always be
  decided from domain disjointness.)
- A provably-true verdict for a comparison is computed against the
  domains induced by the *atoms alone* — never against domains refined
  by that same comparison — so skipping the check at runtime admits no
  extra rows.

Skipping a dead rule can suppress a type-error crash that evaluating
it under some join orders would raise (a comparison on a mixed-type
column placed before the filter that empties the rule).  That latitude
already exists between planners — join order decides whether the
raising pair is ever enumerated — so dead-rule pruning stays within
the engine's existing behavioral envelope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..datalog.atoms import Atom, Comparison, Negation
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import (ArithExpr, Constant, ConstValue, Term,
                             Variable)
from ..engine.builtins import compare_values
from ..errors import EvaluationError

if TYPE_CHECKING:  # pragma: no cover - import cycle shield
    from ..facts.database import Database

INF = float("inf")

#: A constant set wider than this collapses to an interval/kind domain.
MAX_CONSTS = 8

#: Interval bounds that keep moving widen to +-inf after this many
#: changes, guaranteeing fixpoint termination under head arithmetic.
WIDEN_AFTER = 8

#: How many distinct adornment patterns the worklist will enumerate
#: before giving up (the analysis stays sound; the listing truncates).
MAX_ADORNMENTS = 128

NUMBER = "number"
STRING = "string"
ALL_KINDS: frozenset[str] = frozenset({NUMBER, STRING})


def _kind_of(value: ConstValue) -> str:
    """The symbol class of a constant (booleans compare as numbers)."""
    return STRING if isinstance(value, str) else NUMBER


# ---------------------------------------------------------------------------
# the domain lattice
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Domain:
    """An abstract set of constant values.

    ``form`` selects the representation:

    - ``"bottom"`` — the empty set.
    - ``"consts"`` — an explicit set of at most :data:`MAX_CONSTS`
      constants (may mix numbers and strings).
    - ``"interval"`` — numbers in ``[lo, hi]``; ``integral`` marks an
      integer-only interval (making its size finite and exact).
    - ``"kinds"`` — all values of the listed symbol classes; the full
      class set is the lattice top.

    Always build through :func:`consts_domain` / :func:`interval_domain`
    / :func:`kinds_domain` so equal sets get equal representations.
    """

    form: str
    consts: frozenset[ConstValue] = frozenset()
    lo: float = INF
    hi: float = -INF
    integral: bool = False
    kinds: frozenset[str] = frozenset()

    @property
    def is_bottom(self) -> bool:
        return self.form == "bottom"

    def possible_kinds(self) -> frozenset[str]:
        """Which symbol classes the domain may contain."""
        if self.form == "consts":
            return frozenset(_kind_of(value) for value in self.consts)
        if self.form == "interval":
            return frozenset({NUMBER})
        return self.kinds

    @property
    def surely_numeric(self) -> bool:
        return (not self.is_bottom
                and self.possible_kinds() == frozenset({NUMBER}))

    def numeric_hull(self) -> tuple[float, float, bool]:
        """``(lo, hi, integral)`` covering the numeric members."""
        if self.form == "consts":
            numbers = [float(value) for value in self.consts
                       if not isinstance(value, str)]
            if not numbers:
                return (INF, -INF, True)
            integral = all(float(value).is_integer()
                           for value in self.consts
                           if not isinstance(value, str))
            return (min(numbers), max(numbers), integral)
        if self.form == "interval":
            return (self.lo, self.hi, self.integral)
        if NUMBER in self.kinds:
            return (-INF, INF, False)
        return (INF, -INF, True)

    def size(self) -> float:
        """An upper bound on the number of distinct members."""
        if self.form == "bottom":
            return 0.0
        if self.form == "consts":
            return float(len(self.consts))
        if (self.form == "interval" and self.integral
                and self.lo > -INF and self.hi < INF):
            return self.hi - self.lo + 1.0
        return INF

    def render(self) -> str:
        if self.form == "bottom":
            return "empty"
        if self.form == "consts":
            members = sorted(self.consts,
                             key=lambda v: (_kind_of(v), str(v)))
            return "{%s}" % ", ".join(repr(v) for v in members)
        if self.form == "interval":
            if self.lo == -INF and self.hi == INF and not self.integral:
                return "number"
            note = " int" if self.integral else ""
            return f"[{_fmt(self.lo)}..{_fmt(self.hi)}{note}]"
        if self.kinds == ALL_KINDS:
            return "any"
        return "|".join(sorted(self.kinds))


def _fmt(bound: float) -> str:
    if bound == INF:
        return "inf"
    if bound == -INF:
        return "-inf"
    if float(bound).is_integer():
        return str(int(bound))
    return str(bound)


BOTTOM = Domain("bottom")
TOP = Domain("kinds", kinds=ALL_KINDS)
ANY_NUMBER = Domain("interval", lo=-INF, hi=INF, integral=False)
ANY_STRING = Domain("kinds", kinds=frozenset({STRING}))


def kinds_domain(kinds: Iterable[str]) -> Domain:
    kind_set = frozenset(kinds)
    if not kind_set:
        return BOTTOM
    if kind_set == frozenset({NUMBER}):
        return ANY_NUMBER  # canonical: "any number" is the full interval
    return Domain("kinds", kinds=kind_set)


def interval_domain(lo: float, hi: float, integral: bool = False) -> Domain:
    if lo > hi:
        return BOTTOM
    return Domain("interval", lo=lo, hi=hi, integral=integral)


def consts_domain(values: Iterable[ConstValue]) -> Domain:
    """The tightest canonical domain containing ``values``."""
    members = frozenset(values)
    if not members:
        return BOTTOM
    if len(members) <= MAX_CONSTS:
        return Domain("consts", consts=members)
    kinds = frozenset(_kind_of(value) for value in members)
    if kinds == frozenset({NUMBER}):
        numbers = [float(value) for value in members
                   if not isinstance(value, str)]
        integral = all(float(value).is_integer() for value in members
                       if not isinstance(value, str))
        return interval_domain(min(numbers), max(numbers), integral)
    return kinds_domain(kinds)


def join(a: Domain, b: Domain) -> Domain:
    """Least upper bound: a domain containing both."""
    if a.is_bottom:
        return b
    if b.is_bottom:
        return a
    if a.form == "consts" and b.form == "consts":
        return consts_domain(a.consts | b.consts)
    kinds = a.possible_kinds() | b.possible_kinds()
    if kinds == frozenset({NUMBER}):
        (alo, ahi, aint) = a.numeric_hull()
        (blo, bhi, bint) = b.numeric_hull()
        return interval_domain(min(alo, blo), max(ahi, bhi),
                               aint and bint)
    return kinds_domain(kinds)


def meet(a: Domain, b: Domain) -> Domain:
    """Greatest lower bound: the values in both domains."""
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    if a.form == "consts" and b.form == "consts":
        return consts_domain(a.consts & b.consts)
    if a.form == "consts" or b.form == "consts":
        constant, other = (a, b) if a.form == "consts" else (b, a)
        return consts_domain(value for value in constant.consts
                             if _member_possible(value, other))
    if a.form == "interval" and b.form == "interval":
        return interval_domain(max(a.lo, b.lo), min(a.hi, b.hi),
                               a.integral or b.integral)
    if a.form == "interval" or b.form == "interval":
        interval, kinds = (a, b) if a.form == "interval" else (b, a)
        if NUMBER in kinds.kinds:
            return interval
        return BOTTOM
    return kinds_domain(a.kinds & b.kinds)


def _member_possible(value: ConstValue, domain: Domain) -> bool:
    """May ``value`` belong to ``domain``?  (Over-approximate.)"""
    if domain.is_bottom:
        return False
    if domain.form == "consts":
        return value in domain.consts
    if domain.form == "interval":
        if isinstance(value, str):
            return False
        number = float(value)
        if not domain.lo <= number <= domain.hi:
            return False
        return not domain.integral or number.is_integer()
    return _kind_of(value) in domain.kinds


# ---------------------------------------------------------------------------
# abstract term evaluation
# ---------------------------------------------------------------------------

Env = dict[Variable, Domain]


def _term_domain(term: Term, env: Mapping[Variable, Domain]) -> Domain:
    if isinstance(term, Constant):
        return consts_domain((term.value,))
    if isinstance(term, Variable):
        return env.get(term, TOP)
    return _arith_domain(term.op, _term_domain(term.left, env),
                         _term_domain(term.right, env))


def _mul(x: float, y: float) -> float:
    # The 0 * inf corner of interval multiplication: take the limit 0
    # (other corners cover the unbounded directions).
    if x == 0.0 or y == 0.0:
        return 0.0
    return x * y


def _arith_domain(op: str, a: Domain, b: Domain) -> Domain:
    """Result domain of ``a op b`` over the rows that do not raise."""
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    (alo, ahi, aint) = a.numeric_hull()
    (blo, bhi, bint) = b.numeric_hull()
    if alo > ahi or blo > bhi:
        # No numeric members on one side: every evaluation raises, so
        # no value is produced at all.
        return BOTTOM
    integral = aint and bint
    if op == "+":
        return interval_domain(alo + blo, ahi + bhi, integral)
    if op == "-":
        return interval_domain(alo - bhi, ahi - blo, integral)
    if op == "*":
        corners = [_mul(alo, blo), _mul(alo, bhi),
                   _mul(ahi, blo), _mul(ahi, bhi)]
        return interval_domain(min(corners), max(corners), integral)
    return ANY_NUMBER  # division: true division, unbounded quotients


# ---------------------------------------------------------------------------
# comparison verdicts and refinement
# ---------------------------------------------------------------------------

def _verdict(op: str, a: Domain, b: Domain) -> bool | None:
    """``True``/``False`` when the comparison is decided for *every*
    possible value pair (and no pair could raise); ``None`` otherwise."""
    if a.is_bottom or b.is_bottom:
        return None
    if (a.form == "consts" and b.form == "consts"
            and len(a.consts) * len(b.consts) <= 64):
        outcomes: set[bool] = set()
        for left in a.consts:
            for right in b.consts:
                try:
                    outcomes.add(compare_values(op, left, right))
                except EvaluationError:
                    return None  # a raising pair forbids any verdict
        if outcomes == {True}:
            return True
        if outcomes == {False}:
            return False
        return None
    if op in ("=", "!="):
        # Equality never raises; disjoint domains decide it.
        if meet(a, b).is_bottom:
            return op == "!="
        return None
    if not (a.surely_numeric and b.surely_numeric):
        return None  # a string member could make the ordering raise
    (alo, ahi, _) = a.numeric_hull()
    (blo, bhi, _) = b.numeric_hull()
    if op == "<":
        return True if ahi < blo else (False if alo >= bhi else None)
    if op == "<=":
        return True if ahi <= blo else (False if alo > bhi else None)
    if op == ">":
        return True if alo > bhi else (False if ahi <= blo else None)
    if op == ">=":
        return True if alo >= bhi else (False if ahi < blo else None)
    return None


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _refine(comparison: Comparison, env: Env) -> Variable | None:
    """Meet variable domains with what the comparison implies.

    Returns the variable whose domain became bottom (the body is then
    unsatisfiable), or ``None``.  Refinements only *shrink* domains
    toward the set of satisfying, non-raising assignments, so they are
    sound for emptiness conclusions (a raising assignment produces no
    solution either — it aborts the evaluation).
    """
    for var, other in ((comparison.lhs, comparison.rhs),
                       (comparison.rhs, comparison.lhs)):
        if not isinstance(var, Variable):
            continue
        op = (comparison.op if var is comparison.lhs
              else _FLIPPED.get(comparison.op, comparison.op))
        current = env.get(var, TOP)
        other_domain = _term_domain(other, env)
        if other_domain.is_bottom:
            continue
        refined = current
        if op == "=":
            refined = meet(current, other_domain)
        elif current.form == "consts" and other_domain.form == "consts":
            refined = _refine_by_pairs(op, current, other_domain)
        elif (op in _FLIPPED and current.surely_numeric
              and other_domain.surely_numeric):
            (blo, bhi, _) = other_domain.numeric_hull()
            if op in ("<", "<="):
                refined = meet(current, interval_domain(-INF, bhi))
            else:
                refined = meet(current, interval_domain(blo, INF))
        if refined != current:
            env[var] = refined
            if refined.is_bottom:
                return var
    return None


def _refine_by_pairs(op: str, current: Domain, other: Domain) -> Domain:
    """Keep the constants that satisfy ``op`` against some other value."""
    if len(current.consts) * len(other.consts) > 64:
        return current
    keep: list[ConstValue] = []
    for value in current.consts:
        for right in other.consts:
            try:
                if compare_values(op, value, right):
                    keep.append(value)
                    break
            except EvaluationError:
                return current  # a raising pair forbids refinement
    return consts_domain(keep)


# ---------------------------------------------------------------------------
# per-rule abstract evaluation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PredState:
    """What the fixpoint knows about one predicate.

    ``nonempty`` means *may* be nonempty; ``False`` is a proof of
    emptiness.  ``columns`` over-approximate each column's values.
    """

    nonempty: bool
    columns: tuple[Domain, ...]


@dataclass(frozen=True)
class UnsatComparison:
    """A comparison no possible assignment satisfies."""

    rule: Rule
    body_index: int
    comparison: Comparison
    reason: str


@dataclass(frozen=True)
class RuleFacts:
    """One rule's abstract evaluation against a predicate state."""

    alive: bool
    reason: str = ""
    true_checks: frozenset[int] = frozenset()
    unsat: tuple[UnsatComparison, ...] = ()
    head: tuple[Domain, ...] = ()


def _eval_rule(rule: Rule, state: Mapping[str, PredState]) -> RuleFacts:
    # 1. Domains induced by the positive atoms alone.
    atom_env: Env = {}
    for literal in rule.body:
        if not isinstance(literal, Atom) or isinstance(literal, Negation):
            continue
        pred_state = state.get(literal.pred)
        if pred_state is None:
            continue
        if not pred_state.nonempty:
            return RuleFacts(alive=False,
                             reason=f"{literal.pred} is provably empty")
        for column, arg in enumerate(literal.args):
            if column >= len(pred_state.columns):
                continue
            domain = pred_state.columns[column]
            if isinstance(arg, Constant):
                if meet(domain, consts_domain((arg.value,))).is_bottom:
                    return RuleFacts(
                        alive=False,
                        reason=(f"{arg.value!r} never occurs in "
                                f"{literal.pred}[{column}]"))
            elif isinstance(arg, Variable):
                refined = meet(atom_env.get(arg, TOP), domain)
                atom_env[arg] = refined
                if refined.is_bottom:
                    return RuleFacts(
                        alive=False,
                        reason=(f"{arg.name} has no possible value "
                                f"(column domains are disjoint)"))

    comparisons = [(index, literal)
                   for index, literal in enumerate(rule.body)
                   if isinstance(literal, Comparison)]

    # 2. Provably-true checks, judged against the *atom* domains only —
    #    never against a comparison's own refinement (see module doc).
    true_checks = frozenset(
        index for index, comparison in comparisons
        if _verdict(comparison.op, _term_domain(comparison.lhs, atom_env),
                    _term_domain(comparison.rhs, atom_env)) is True)

    # 3. Joint satisfiability under all comparisons.
    refined_env: Env = dict(atom_env)
    unsat: list[UnsatComparison] = []
    for _ in range(2):  # two sweeps let ``=`` chains propagate
        for index, comparison in comparisons:
            bottomed = _refine(comparison, refined_env)
            if bottomed is not None:
                witness = UnsatComparison(
                    rule, index, comparison,
                    f"no value of {bottomed.name} satisfies it")
                return RuleFacts(alive=False,
                                 reason=f"{comparison} can never hold",
                                 unsat=(witness,))
    for index, comparison in comparisons:
        verdict = _verdict(comparison.op,
                           _term_domain(comparison.lhs, refined_env),
                           _term_domain(comparison.rhs, refined_env))
        if verdict is False:
            lhs = _term_domain(comparison.lhs, refined_env).render()
            rhs = _term_domain(comparison.rhs, refined_env).render()
            unsat.append(UnsatComparison(
                rule, index, comparison,
                f"always false over {lhs} {comparison.op} {rhs}"))
    if unsat:
        return RuleFacts(alive=False,
                         reason=f"{unsat[0].comparison} can never hold",
                         unsat=tuple(unsat))

    head = tuple(_term_domain(arg, refined_env)
                 for arg in rule.head.args)
    return RuleFacts(alive=True, true_checks=true_checks, head=head)


# ---------------------------------------------------------------------------
# the analysis result
# ---------------------------------------------------------------------------

@dataclass
class DataflowResult:
    """Everything the four analyses inferred about a program.

    All data is keyed by predicate name (and rule object for the
    per-rule facts).  ``counts`` maps ``(pred, column)`` to an upper
    bound on the column's distinct values; ``bounds`` maps predicates
    to cardinality upper bounds; both may be ``inf``.
    """

    program: Program
    columns: dict[str, tuple[Domain, ...]]
    empty: frozenset[str]
    counts: dict[tuple[str, int], float]
    bounds: dict[str, float]
    adornments: dict[str, tuple[str, ...]]
    adorned_bounds: dict[tuple[str, str], float]
    dead_rules: dict[Rule, str]
    true_checks: dict[Rule, frozenset[int]]
    unsat: tuple[UnsatComparison, ...]
    head_kinds: dict[tuple[str, int],
                     tuple[tuple[str, frozenset[str]], ...]]
    converged: bool = True
    edb_sizes: dict[str, float] = field(default_factory=dict)

    def is_dead(self, rule: Rule) -> bool:
        return rule in self.dead_rules

    def size_bound(self, pred: str) -> float:
        """Cardinality upper bound for ``pred`` (may be ``inf``)."""
        return self.bounds.get(pred, INF)

    def frontier_estimate(self, pred: str) -> float:
        """Predicted average delta-frontier width for ``pred``.

        The cost-based optimizer prices batch-vectorized kernels by the
        frontier width their per-firing setup amortizes over.  With a
        finite size bound ``B`` and no round bound, the uniform
        heuristic is ``sqrt(B)`` rows per delta round (a fixpoint
        deriving ``B`` facts over ``~sqrt(B)`` rounds); EDB predicates
        surface their actual size (the initialization round scans them
        whole).  ``inf`` when nothing is known.
        """
        if self.program.is_edb(pred):
            size = self.edb_sizes.get(pred)
            return size if size is not None else INF
        bound = self.size_bound(pred)
        if bound == INF:
            return INF
        if bound <= 1.0:
            return max(bound, 0.0)
        return max(1.0, math.sqrt(bound))

    def probe_estimate(self, pred: str, bound_cols: Sequence[int]) -> float:
        """Static stand-in for ``Relation.probe_estimate``.

        The expected number of rows matching a probe that fixes
        ``bound_cols``: the total bound divided by each bound column's
        distinct-count bound — the same uniformity assumption the
        index statistics make, computed without any data.
        """
        total = self.size_bound(pred)
        if total <= 0.0:
            return 0.0
        estimate = total
        for column in bound_cols:
            distinct = self.counts.get((pred, column), INF)
            if distinct == INF:
                distinct = total
            estimate /= max(1.0, min(distinct, total))
        return estimate

    def render(self) -> str:
        """The whole analysis as an ``explain``-style text block."""
        lines = ["dataflow:"]
        arity_of: dict[str, int] = {
            pred: len(columns) for pred, columns in self.columns.items()}
        for pred in sorted(self.columns):
            arity = arity_of[pred]
            is_edb = self.program.is_edb(pred)
            tag = "edb" if is_edb else "idb"
            if pred in self.empty:
                lines.append(f"  {pred}/{arity} ({tag}): provably empty")
                continue
            bound = self.size_bound(pred)
            lines.append(f"  {pred}/{arity} ({tag}): "
                         f"size bound {_fmt(bound)}")
            for column, domain in enumerate(self.columns[pred]):
                distinct = self.counts.get((pred, column), INF)
                lines.append(f"    col {column}: {domain.render()} "
                             f"(distinct <= {_fmt(distinct)})")
            patterns = self.adornments.get(pred, ())
            if patterns:
                rendered = ", ".join(
                    f"{pattern} (bound "
                    f"{_fmt(self.adorned_bounds.get((pred, pattern), bound))}"
                    ")"
                    for pattern in patterns)
                lines.append(f"    adornments: {rendered}")
        if self.dead_rules:
            lines.append("  dead rules:")
            for rule, reason in sorted(
                    self.dead_rules.items(),
                    key=lambda item: item[0].label or str(item[0])):
                lines.append(f"    {rule.label or rule.head}: {reason}")
        if self.unsat:
            lines.append("  unsatisfiable comparisons:")
            for entry in self.unsat:
                lines.append(f"    {entry.rule.label or entry.rule.head}: "
                             f"{entry.comparison} ({entry.reason})")
        skips = {rule.label or str(rule.head): sorted(checks)
                 for rule, checks in self.true_checks.items() if checks}
        if skips:
            lines.append("  provably true checks:")
            for label in sorted(skips):
                positions = ", ".join(str(i) for i in skips[label])
                lines.append(f"    {label}: body positions {positions}")
        if not self.converged:
            lines.append("  (fixpoint did not converge; "
                         "all inferences widened to top)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------

def analyze_dataflow(program: Program, edb: "Database | None" = None,
                     query: Atom | None = None) -> DataflowResult:
    """Run all four analyses to a fixpoint over ``program``.

    Without ``edb``, EDB columns start at top (lint mode); with it,
    they start from the actual relation contents, which also supplies
    exact per-column distinct counts for the size-bound analysis.
    """
    arities = dict(program.predicate_arities())
    state: dict[str, PredState] = {}
    distinct: dict[tuple[str, int], float] = {}
    edb_sizes: dict[str, float] = {}
    for pred in sorted(program.edb_predicates):
        arity = arities.get(pred, 0)
        if edb is None:
            state[pred] = PredState(True, (TOP,) * arity)
            edb_sizes[pred] = INF
            for column in range(arity):
                distinct[(pred, column)] = INF
            continue
        relation = edb.relation_or_empty(pred, arity)
        seen: list[set[ConstValue]] = [set() for _ in range(arity)]
        rows = 0
        for row in relation:
            rows += 1
            for column, value in enumerate(row):
                if column < arity:
                    seen[column].add(value)
        edb_sizes[pred] = float(rows)
        state[pred] = PredState(
            rows > 0,
            tuple(consts_domain(values) for values in seen))
        for column in range(arity):
            distinct[(pred, column)] = float(len(seen[column]))
    for pred in program.idb_predicates:
        arity = arities.get(pred, 0)
        state[pred] = PredState(False, (BOTTOM,) * arity)

    # -- domain / emptiness fixpoint ------------------------------------
    widen_hits: dict[tuple[str, int], int] = {}
    column_count = sum(arities.get(pred, 0) for pred in state) + 1
    max_rounds = 50 + 30 * column_count
    converged = False
    for _ in range(max_rounds):
        changed = False
        for rule in program:
            facts = _eval_rule(rule, state)
            if not facts.alive:
                continue
            pred = rule.head.pred
            current = state[pred]
            columns = list(current.columns)
            touched = False
            for column, contribution in enumerate(facts.head):
                if column >= len(columns):
                    continue
                old = columns[column]
                merged = join(old, contribution)
                if merged == old:
                    continue
                if merged.form == "interval" and old.form == "interval":
                    hits = widen_hits.get((pred, column), 0) + 1
                    widen_hits[(pred, column)] = hits
                    if hits > WIDEN_AFTER:
                        merged = interval_domain(
                            merged.lo if merged.lo == old.lo else -INF,
                            merged.hi if merged.hi == old.hi else INF,
                            merged.integral)
                if merged != old:
                    columns[column] = merged
                    touched = True
            if touched or not current.nonempty:
                state[pred] = PredState(True, tuple(columns))
                changed = True
        if not changed:
            converged = True
            break
    if not converged:
        # Paranoia fallback: widening guarantees convergence, but if
        # the cap ever trips, collapse to a sound do-nothing result.
        for pred in state:
            arity = arities.get(pred, 0)
            state[pred] = PredState(True, (TOP,) * arity)

    # -- final per-rule facts -------------------------------------------
    dead_rules: dict[Rule, str] = {}
    true_checks: dict[Rule, frozenset[int]] = {}
    unsat: list[UnsatComparison] = []
    head_kinds: dict[tuple[str, int],
                     list[tuple[str, frozenset[str]]]] = {}
    for rule in program:
        facts = _eval_rule(rule, state)
        if not facts.alive:
            dead_rules[rule] = facts.reason
            unsat.extend(facts.unsat)
            continue
        if facts.true_checks and converged:
            true_checks[rule] = facts.true_checks
        for column, contribution in enumerate(facts.head):
            kinds = contribution.possible_kinds()
            if kinds:
                head_kinds.setdefault(
                    (rule.head.pred, column), []).append(
                        (rule.label, kinds))

    empty = frozenset(pred for pred, pred_state in state.items()
                      if not pred_state.nonempty)

    counts = _distinct_counts(program, state, dead_rules, distinct)
    bounds = _size_bounds(program, state, dead_rules, counts,
                          edb_sizes, arities)
    adornments = _adornments(program, query)
    adorned_bounds: dict[tuple[str, str], float] = {}
    for pred, patterns in adornments.items():
        for pattern in patterns:
            free_product = 1.0
            for column, mark in enumerate(pattern):
                if mark == "f":
                    free_product = _mul_bound(
                        free_product, counts.get((pred, column), INF))
            adorned_bounds[(pred, pattern)] = min(
                bounds.get(pred, INF), free_product)

    return DataflowResult(
        program=program,
        columns={pred: pred_state.columns
                 for pred, pred_state in state.items()},
        empty=empty,
        counts=counts,
        bounds=bounds,
        adornments=adornments,
        adorned_bounds=adorned_bounds,
        dead_rules=dead_rules,
        true_checks=true_checks,
        unsat=tuple(unsat),
        head_kinds={key: tuple(entries)
                    for key, entries in head_kinds.items()},
        converged=converged,
        edb_sizes=edb_sizes)


def _mul_bound(a: float, b: float) -> float:
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


# ---------------------------------------------------------------------------
# size bounds: value-flow closure + downward cardinality fixpoint
# ---------------------------------------------------------------------------

def _distinct_counts(program: Program, state: Mapping[str, PredState],
                     dead_rules: Mapping[Rule, str],
                     edb_distinct: Mapping[tuple[str, int], float],
                     ) -> dict[tuple[str, int], float]:
    """Upper-bound the distinct values per ``(pred, column)``.

    Values flow from EDB columns to IDB head columns along variable
    occurrences: a head variable's values come from the column of its
    first positive body occurrence.  The closure collects, per IDB
    column, the set of *EDB source columns* plus any directly placed
    constants; the distinct count is then the sum of the sources'
    exact distinct counts (plus the constants).  Summing over a set of
    source columns — rather than per-rule contributions — keeps the
    bound finite under recursion: a recursive rule adds no new source.
    """
    sources: dict[tuple[str, int], set[tuple[str, int]]] = {}
    consts: dict[tuple[str, int], set[ConstValue]] = {}
    unbounded: set[tuple[str, int]] = set()
    edges: list[tuple[tuple[str, int], tuple[str, int]]] = []

    edb = program.edb_predicates
    for rule in program:
        if rule in dead_rules:
            continue
        first_occurrence: dict[Variable, tuple[str, int]] = {}
        for literal in rule.body:
            if not isinstance(literal, Atom) or isinstance(literal,
                                                           Negation):
                continue
            for column, arg in enumerate(literal.args):
                if (isinstance(arg, Variable)
                        and arg not in first_occurrence):
                    first_occurrence[arg] = (literal.pred, column)
        pred = rule.head.pred
        for column, arg in enumerate(rule.head.args):
            node = (pred, column)
            if isinstance(arg, Constant):
                consts.setdefault(node, set()).add(arg.value)
            elif isinstance(arg, Variable):
                source = first_occurrence.get(arg)
                if source is None:
                    unbounded.add(node)  # bound by ``=`` or unsafe
                else:
                    edges.append((node, source))
            else:
                unbounded.add(node)  # arithmetic mints new values

    for key in edb_distinct:
        sources[key] = {key}
    # Transitive closure over the (static, small) flow graph.
    for _ in range(len(state) * 2 + 2):
        changed = False
        for node, source in edges:
            if source in unbounded:
                if node not in unbounded:
                    unbounded.add(node)
                    changed = True
                continue
            pool = sources.setdefault(node, set())
            incoming = sources.get(source, set())
            if not incoming <= pool:
                pool |= incoming
                changed = True
            extra = consts.get(source, set())
            if extra - consts.setdefault(node, set()):
                consts[node] |= extra
                changed = True
        if not changed:
            break

    counts: dict[tuple[str, int], float] = {}
    for pred, pred_state in state.items():
        for column, domain in enumerate(pred_state.columns):
            node = (pred, column)
            if pred in edb:
                count = edb_distinct.get(node, INF)
            elif node in unbounded:
                count = INF
            else:
                count = float(len(consts.get(node, set())))
                for source in sources.get(node, set()):
                    count += edb_distinct.get(source, INF)
            counts[node] = min(count, domain.size())
    return counts


def _size_bounds(program: Program, state: Mapping[str, PredState],
                 dead_rules: Mapping[Rule, str],
                 counts: Mapping[tuple[str, int], float],
                 edb_sizes: Mapping[str, float],
                 arities: Mapping[str, int]) -> dict[str, float]:
    """Cardinality upper bounds per predicate.

    Starts every IDB predicate at the product of its column
    distinct-count bounds (any relation fits under that cap) and
    iterates ``bound(p) = min(bound(p), sum over rules of the product
    of body-atom bounds)`` downward.  Every iterate is itself a sound
    upper bound, so stopping after a fixed number of passes is safe.
    """
    bounds: dict[str, float] = {}
    for pred in state:
        if program.is_edb(pred):
            bounds[pred] = edb_sizes.get(pred, INF)
            continue
        if not state[pred].nonempty:
            bounds[pred] = 0.0
            continue
        cap = 1.0
        for column in range(arities.get(pred, 0)):
            cap = _mul_bound(cap, counts.get((pred, column), INF))
        bounds[pred] = cap
    live_rules = [rule for rule in program if rule not in dead_rules]
    for _ in range(2 * len(state) + 2):
        for pred in program.idb_predicates:
            if not state.get(pred, PredState(False, ())).nonempty:
                continue
            total = 0.0
            for rule in live_rules:
                if rule.head.pred != pred:
                    continue
                product = 1.0
                for atom in rule.database_atoms():
                    product = _mul_bound(product,
                                         bounds.get(atom.pred, INF))
                total += product
            bounds[pred] = min(bounds[pred], total)
    return bounds


# ---------------------------------------------------------------------------
# adornments
# ---------------------------------------------------------------------------

def _adornments(program: Program,
                query: Atom | None) -> dict[str, tuple[str, ...]]:
    """Binding patterns each IDB predicate is called with.

    Seeded from the query atom (constants bound) when given, else from
    the all-free pattern of every IDB predicate; propagated through
    rule bodies left to right with ``=`` binding new variables.
    """
    idb = program.idb_predicates
    seen: dict[str, set[str]] = {pred: set() for pred in idb}
    worklist: list[tuple[str, str]] = []

    def enqueue(pred: str, pattern: str) -> None:
        patterns = seen.get(pred)
        if patterns is None or pattern in patterns:
            return
        if sum(len(values) for values in seen.values()) >= MAX_ADORNMENTS:
            return
        patterns.add(pattern)
        worklist.append((pred, pattern))

    if query is not None and query.pred in idb:
        enqueue(query.pred,
                "".join("b" if isinstance(arg, Constant) else "f"
                        for arg in query.args))
    else:
        for pred in idb:
            rules = program.rules_for(pred)
            arity = len(rules[0].head.args) if rules else 0
            enqueue(pred, "f" * arity)

    while worklist:
        pred, pattern = worklist.pop()
        for rule in program.rules_for(pred):
            bound: set[Variable] = set()
            for column, mark in enumerate(pattern):
                if mark == "b" and column < len(rule.head.args):
                    arg = rule.head.args[column]
                    if isinstance(arg, Variable):
                        bound.add(arg)
            for literal in rule.body:
                if isinstance(literal, Comparison):
                    if literal.op == "=":
                        variables = literal.variable_set()
                        if len(variables - bound) <= 1:
                            bound.update(variables)
                    continue
                if isinstance(literal, Negation):
                    continue
                if isinstance(literal, Atom):
                    if literal.pred in idb:
                        body_pattern = "".join(
                            "b" if (isinstance(arg, Constant)
                                    or (isinstance(arg, Variable)
                                        and arg in bound))
                            else "f"
                            for arg in literal.args)
                        enqueue(literal.pred, body_pattern)
                    bound.update(literal.variable_set())
    return {pred: tuple(sorted(patterns))
            for pred, patterns in seen.items()}
