"""Pattern graphs of chain-shaped ICs (Section 3).

The pattern graph of ``D1, ..., Dk, E1, ..., Em -> A`` is the undirected
path over the database subgoals with each edge ``(Di, D(i+1))`` labelled
by the argument-position pairs of their shared variables.  Lemma 3.1
matches this path against the SD-graph in both orientations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constraints.ic import IntegrityConstraint
from ..datalog.atoms import Atom
from ..errors import ConstraintError
from .apgraph import same_rule_shared_positions


@dataclass(frozen=True)
class PatternGraph:
    """The undirected path graph of a chain IC.

    Attributes:
        ic: the constraint.
        atoms: the chain ``D1..Dk`` in body order.
        edge_pairs: for each ``i``, the label of edge ``(Di, D(i+1))`` —
            position pairs ``(pos in Di, pos in D(i+1))`` of shared
            variables.
    """

    ic: IntegrityConstraint
    atoms: tuple[Atom, ...]
    edge_pairs: tuple[frozenset[tuple[int, int]], ...]

    @property
    def length(self) -> int:
        return len(self.atoms)

    def reversed(self) -> "PatternGraph":
        """The same path walked ``Dk .. D1`` (labels flipped)."""
        atoms = tuple(reversed(self.atoms))
        pairs = tuple(
            frozenset((j, i) for i, j in label)
            for label in reversed(self.edge_pairs))
        return PatternGraph(self.ic, atoms, pairs)


def build_pattern_graph(ic: IntegrityConstraint) -> PatternGraph:
    """Build the pattern graph; the IC must be chain-shaped."""
    ic.require_chain()
    atoms = ic.database_atoms()
    if not atoms:
        raise ConstraintError("an IC needs at least one database atom")
    pairs = []
    for left, right in zip(atoms, atoms[1:]):
        label = same_rule_shared_positions(left, right)
        if not label:  # pragma: no cover - require_chain already checks
            raise ConstraintError(
                f"consecutive IC atoms {left} and {right} share no "
                "variable")
        pairs.append(label)
    return PatternGraph(ic, atoms, tuple(pairs))
