"""Rule-body minimization under integrity constraints.

The paper's related work (Section 1) credits Sagiv [13] with eliminating
redundant atoms and rules in Datalog programs under dependencies.  The
chase machinery built for the push guard gives that optimization almost
for free, so this module exposes it as a standalone pass:

- an atom of a rule body is *redundant* when deleting it provably
  preserves the rule's answers on every IC-satisfying database
  (:func:`repro.core.containment.elimination_is_sound` — classical
  conjunctive-query minimization when the IC set is empty, chase-based
  minimization under the ICs otherwise);
- a rule is *subsumed* when another rule for the same predicate provably
  produces every answer it produces.

This complements the recursion-aware pushing: minimization works one
rule at a time and needs no expansion sequences, but conversely it can
never see multi-instance redundancies like Example 3.2's expert join —
experiment E10 quantifies the difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..constraints.ic import IntegrityConstraint
from ..datalog.analysis import is_safe
from ..datalog.atoms import Atom, Comparison
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Constant, FreshVariableSupply, Variable
from ..datalog.unify import Substitution
from .containment import contained_under, elimination_is_sound


@dataclass
class MinimizationReport:
    """What the pass removed."""

    original: Program
    minimized: Program
    removed_atoms: list[tuple[str, str]] = field(default_factory=list)
    removed_rules: list[str] = field(default_factory=list)
    fd_notes: list[tuple[str, str]] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.removed_atoms or self.removed_rules
                    or self.fd_notes)

    def summary(self) -> str:
        lines = [f"{len(self.removed_atoms)} atom(s), "
                 f"{len(self.removed_rules)} rule(s) removed"]
        for label, atom_text in self.removed_atoms:
            lines.append(f"  {label}: dropped {atom_text}")
        for label, note in self.fd_notes:
            lines.append(f"  {label}: {note}")
        for label in self.removed_rules:
            lines.append(f"  dropped rule {label}")
        return "\n".join(lines)


def as_functional_dependency(
        ic: IntegrityConstraint
) -> tuple[str, tuple[int, ...], int] | None:
    """Recognize an FD-shaped IC: ``p(..), p(..) -> X = Y``.

    Returns ``(pred, key_positions, dependent_position)`` when the IC's
    body is two atoms of the same predicate sharing variables exactly at
    the key positions, and the head equates the two variables sitting at
    the dependent position.  This is the constraint class of
    Lakshmanan & Hernandez [6] (the paper's related work) and the fuel
    for optimization kind (iv), "only one answer".
    """
    atoms = ic.database_atoms()
    if len(atoms) != 2 or ic.evaluable_atoms():
        return None
    first, second = atoms
    if first.pred != second.pred or first.arity != second.arity:
        return None
    head = ic.head
    if not isinstance(head, Comparison) or head.op != "=":
        return None
    if not isinstance(head.lhs, Variable) or \
            not isinstance(head.rhs, Variable):
        return None
    keys: list[int] = []
    dependent: int | None = None
    for position, (a, b) in enumerate(zip(first.args, second.args)):
        if a == b and isinstance(a, Variable):
            keys.append(position)
        elif {a, b} == {head.lhs, head.rhs}:
            if dependent is not None:
                return None  # only single-column dependents supported
            dependent = position
        else:
            return None
    if dependent is None or not keys:
        return None
    return (first.pred, tuple(keys), dependent)


def apply_functional_dependencies(
        rule: Rule, ics: Sequence[IntegrityConstraint]
) -> tuple[Rule | None, list[str]]:
    """Merge body atoms that an FD forces to agree.

    Two body atoms of the FD's predicate with syntactically equal key
    arguments must agree on the dependent argument on every consistent
    database: their dependent terms are unified (the duplicate atom then
    folds away), or — when they carry distinct constants — the whole rule
    is unsatisfiable and ``None`` is returned.

    Returns the rewritten rule (or None) and human-readable notes.
    """
    fds = [fd for fd in (as_functional_dependency(ic) for ic in ics)
           if fd is not None]
    if not fds:
        return rule, []
    notes: list[str] = []
    current = rule
    progress = True
    while progress:
        progress = False
        atoms = [(i, lit) for i, lit in enumerate(current.body)
                 if isinstance(lit, Atom)]
        for pred, keys, dependent in fds:
            same = [(i, a) for i, a in atoms if a.pred == pred]
            for (i, a), (j, b) in (
                    ((x, y) for x in same for y in same if x[0] < y[0])):
                if any(a.args[k] != b.args[k] for k in keys):
                    continue
                left, right = a.args[dependent], b.args[dependent]
                if left == right:
                    # Literal duplicate at the dependent position too:
                    # drop the second atom outright.
                    current = current.remove_body_index(j)
                    notes.append(f"folded duplicate {b}")
                    progress = True
                    break
                if isinstance(left, Constant) and \
                        isinstance(right, Constant):
                    notes.append(
                        f"rule unsatisfiable: {a} and {b} violate the "
                        f"functional dependency on {pred}")
                    return None, notes
                # Substitute one variable by the other term, preferring
                # to keep head variables as representatives.
                if isinstance(right, Variable) and \
                        right not in current.head_variables():
                    victim, replacement = right, left
                elif isinstance(left, Variable) and \
                        left not in current.head_variables():
                    victim, replacement = left, right
                elif isinstance(right, Variable):
                    victim, replacement = right, left
                else:
                    victim, replacement = left, right  # left is Variable
                merged = current.apply(
                    Substitution({victim: replacement}))
                notes.append(f"merged {victim} := {replacement} "
                             f"(FD on {pred})")
                current = merged
                progress = True
                break
            if progress:
                break
    return current, notes


def minimize_rule(rule: Rule, ics: Sequence[IntegrityConstraint] = ()
                  ) -> tuple[Rule, list[Atom]]:
    """Drop redundant body atoms of one rule.

    Tries each database atom in turn (greedy, re-checking after each
    drop); an atom goes when the chase proves the smaller body contained
    in the larger and the result stays safe.  With no ICs this is
    classical CQ minimization (folding duplicate-join homomorphisms).
    Returns the minimized rule and the dropped atoms.
    """
    current = rule
    dropped: list[Atom] = []
    progress = True
    while progress:
        progress = False
        for index, literal in enumerate(current.body):
            if not isinstance(literal, Atom):
                continue
            if literal.pred == current.head.pred:
                continue  # never touch the recursive call
            smaller = current.remove_body_index(index)
            if not is_safe(smaller):
                continue
            if elimination_is_sound(current.head, current.body, index,
                                    ics):
                dropped.append(literal)
                current = smaller
                progress = True
                break
    return current, dropped


def rule_subsumed_by(candidate: Rule, other: Rule,
                     ics: Sequence[IntegrityConstraint] = ()) -> bool:
    """Does ``other`` produce every answer ``candidate`` produces?

    Checked as containment of ``candidate``'s body in ``other``'s (with
    ``other`` renamed apart and its head unified onto ``candidate``'s),
    under the ICs.
    """
    if candidate.head.pred != other.head.pred:
        return False
    if candidate.label == other.label:
        return False
    supply = FreshVariableSupply(
        {v.name for v in candidate.variables()}
        | {v.name for v in other.variables()})
    renaming = Substitution({
        v: supply.fresh(v.name)
        for v in sorted(other.variables(), key=lambda v: v.name)})
    renamed = other.apply(renaming)
    from ..datalog.unify import unify

    unifier = unify(renamed.head, candidate.head)
    if unifier is None:
        return False
    aligned = renamed.apply(unifier)
    return contained_under(candidate.head, candidate.body, aligned.body,
                           list(ics))


def minimize_program(program: Program,
                     ics: Iterable[IntegrityConstraint] = ()
                     ) -> MinimizationReport:
    """Minimize every rule body, then drop subsumed rules."""
    ics = list(ics)
    report = MinimizationReport(program, program)
    new_rules: list[Rule] = []
    for rule in program:
        merged, notes = apply_functional_dependencies(rule, ics)
        for note in notes:
            report.fd_notes.append((rule.label or "?", note))
        if merged is None:
            report.removed_rules.append(rule.label or "?")
            continue
        minimized, dropped = minimize_rule(merged, ics)
        for atom in dropped:
            report.removed_atoms.append((rule.label or "?", str(atom)))
        new_rules.append(minimized)

    survivors: list[Rule] = []
    for index, rule in enumerate(new_rules):
        others = [r for j, r in enumerate(new_rules)
                  if j != index and r.label not in report.removed_rules]
        if any(rule_subsumed_by(rule, other, ics) for other in others):
            report.removed_rules.append(rule.label or "?")
            continue
        survivors.append(rule)
    report.minimized = Program(
        survivors, edb_hint=tuple(program.edb_predicates))
    return report
