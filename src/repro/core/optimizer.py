"""End-to-end semantic optimizer.

:class:`SemanticOptimizer` wires the pipeline together: residue
generation (Algorithm 3.1), sequence isolation (Algorithm 4.1) and
residue pushing (Section 4), with reporting of what was and was not
applied and why.

Composition policy (see DESIGN.md): Algorithm 3.1's assumptions — linear
recursion, no mutual recursion — do not hold for an already-transformed
program, so multi-level passes do not compose arbitrarily.
:meth:`SemanticOptimizer.optimize` therefore works in two phases:

1. all multi-level residues that are *periodic* (uniform ``r^k``
   sequences over the same recursive rule) compose into ONE depth-class
   compilation, each edit applying from its own depth threshold — so
   several ICs on one recursion do not block each other;
2. the remaining residues are pushed per (predicate, sequence) group:
   rule-level groups greedily (they preserve linearity), plus at most
   one further multi-level isolation, ordered by a benefit policy
   (pruning > elimination > introduction, strict usefulness first).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..constraints.ic import IntegrityConstraint
from ..datalog.program import Program
from ..errors import ProgramError
from .collapse import inline_auxiliaries
from .isolate import Isolation, isolate
from .periodic import (periodic_applicable, periodic_eliminate,
                       periodic_introduce, periodic_prune,
                       push_periodic_group_best_effort)
from .push import (GuardMode, PushOutcome, apply_elimination,
                   apply_introduction, apply_pruning)
from .residues import (SequenceResidue, generate_residues,
                       generate_residues_exhaustive,
                       rule_level_residues)
from .sdgraph import DEFAULT_MAX_HOPS

#: Push-action priority (lower sorts first).
_ACTION_RANK = {"prune": 0, "eliminate": 1, "introduce": 2, "skip": 3}


@dataclass(frozen=True)
class OptimizationStep:
    """One residue push attempt, applied or not."""

    ic_label: str
    sequence: tuple[str, ...]
    residue: str
    outcome: PushOutcome

    def __str__(self) -> str:
        status = "applied" if self.outcome.applied else \
            f"skipped ({self.outcome.reason})"
        return (f"[{self.outcome.action}] ic={self.ic_label} "
                f"seq={' '.join(self.sequence)} residue='{self.residue}' "
                f"-> {status}")


@dataclass
class OptimizationReport:
    """The result of :meth:`SemanticOptimizer.optimize`."""

    original: Program
    optimized: Program
    steps: list[OptimizationStep] = field(default_factory=list)

    @property
    def applied_steps(self) -> list[OptimizationStep]:
        return [s for s in self.steps if s.outcome.applied]

    @property
    def changed(self) -> bool:
        return bool(self.applied_steps)

    def summary(self) -> str:
        lines = [f"{len(self.applied_steps)}/{len(self.steps)} residue "
                 "pushes applied"]
        lines.extend(f"  {step}" for step in self.steps)
        return "\n".join(lines)


def _preferred_action(item: SequenceResidue,
                      small_relations: frozenset[str]) -> str:
    """Choose the optimization a residue suggests (Section 4)."""
    residue = item.residue
    if residue.is_null:
        return "prune"
    head = residue.head_atom()
    occurs = head is not None and \
        item.clause.provenance_of(head) is not None
    if occurs:
        return "eliminate"
    if head is not None:
        # Introduction of a database atom only pays off for small
        # relations (the paper's criterion); otherwise do nothing.
        return "introduce" if head.pred in small_relations else "skip"
    return "introduce"  # evaluable head: scan reduction


class SemanticOptimizer:
    """Pushes the semantics of integrity constraints inside recursion.

    Args:
        program: a (rectified) linear recursive program.
        ics: the integrity constraints (EDB-only).
        pred: the recursive predicate to optimize; defaults to the single
            recursive predicate of the program.
        guard: ``"chase"`` (default) validates every edit with the
            containment test; ``"none"`` reproduces the paper verbatim.
        small_relations: EDB predicates worth *introducing* as semijoin
            reducers (the paper's "small relation" criterion is a
            physical-design judgement the optimizer cannot make alone).
        max_hops: SD-graph depth bound for Algorithm 3.1.
    """

    def __init__(self, program: Program,
                 ics: Iterable[IntegrityConstraint],
                 pred: str | None = None,
                 guard: GuardMode = "chase",
                 small_relations: Iterable[str] = (),
                 max_hops: int = DEFAULT_MAX_HOPS,
                 collapse: bool = True,
                 compilation: str = "periodic") -> None:
        if compilation not in ("periodic", "automaton"):
            raise ValueError(
                f"compilation must be 'periodic' or 'automaton', "
                f"got {compilation!r}")
        self.program = program
        self.ics = list(ics)
        self.guard: GuardMode = guard
        self.small_relations = frozenset(small_relations)
        self.max_hops = max_hops
        self.collapse = collapse
        self.compilation = compilation
        self.pred = pred or self._single_recursive_pred(program)

    @staticmethod
    def _single_recursive_pred(program: Program) -> str | None:
        """The unique recursive predicate; None for non-recursive
        programs (rule-level residues still apply); ambiguity raises."""
        info = program.recursion_info()
        recursive = sorted(info.recursive_predicates)
        if not recursive:
            return None
        if len(recursive) > 1:
            raise ProgramError(
                f"cannot infer the recursive predicate (found "
                f"{recursive}); pass pred= explicitly or use "
                "optimize_all_predicates")
        return recursive[0]

    # -- residue generation ----------------------------------------------------
    def sequence_residues(self) -> list[SequenceResidue]:
        """Sequence residues of every IC (useful ones only).

        Chain-shaped ICs go through Algorithm 3.1's graph detection;
        non-chain ICs (outside the algorithm's stated class) fall back
        to the bounded exhaustive enumerator, so the optimizer is not
        limited to the paper's syntactic class.
        """
        out: list[SequenceResidue] = []
        if self.pred is None:
            return out
        for ic in self.ics:
            if not ic.is_edb_only(self.program):
                continue
            if ic.is_chain():
                out.extend(generate_residues(
                    self.program, self.pred, ic, max_hops=self.max_hops))
            else:
                out.extend(generate_residues_exhaustive(
                    self.program, self.pred, ic,
                    max_length=len(ic.database_atoms()) + 2))
        return out

    def rule_residues(self) -> list[SequenceResidue]:
        """Rule-level residues (any predicate, any IC shape)."""
        out: list[SequenceResidue] = []
        for ic in self.ics:
            out.extend(rule_level_residues(self.program, ic))
        return out

    def all_residues(self) -> list[SequenceResidue]:
        """Sequence residues plus rule-level residues, deduplicated."""
        residues = self.sequence_residues()
        seen = {(r.sequence, str(r.residue)) for r in residues}
        for item in self.rule_residues():
            key = (item.sequence, str(item.residue))
            if key not in seen:
                seen.add(key)
                residues.append(item)
        return residues

    # -- pushing ------------------------------------------------------------------
    def push(self, program: Program, item: SequenceResidue) -> PushOutcome:
        """Isolate the residue's sequence in ``program`` and push it."""
        isolation = isolate(program, item.clause.pred, item.sequence)
        return self.push_into(isolation, item)

    def push_periodic_item(self, program: Program,
                           item: SequenceResidue) -> PushOutcome:
        """Push via the overlap-aware depth-class compilation.

        Callers must have checked :func:`periodic_applicable` against
        ``program`` first.
        """
        action = _preferred_action(item, self.small_relations)
        pred = item.clause.pred
        if action == "prune":
            return periodic_prune(program, pred, item, self.ics,
                                  self.guard)
        if action == "eliminate":
            return periodic_eliminate(program, pred, item, self.ics,
                                      self.guard)
        if action == "introduce":
            return periodic_introduce(program, pred, item, self.ics,
                                      self.guard)
        return PushOutcome("skip", False,
                           "nothing beneficial to push")

    def push_into(self, isolation: Isolation,
                  item: SequenceResidue) -> PushOutcome:
        action = _preferred_action(item, self.small_relations)
        if action == "skip":
            return PushOutcome(
                "skip", False,
                "fact residue names a relation not declared small; "
                "nothing beneficial to push")
        if action == "prune":
            return apply_pruning(isolation, item, self.ics, self.guard)
        if action == "eliminate":
            outcome = apply_elimination(isolation, item, self.ics,
                                        self.guard)
            if outcome.applied:
                return outcome
            if (item.residue.head_atom() is not None
                    and item.residue.head_atom().pred
                    in self.small_relations):
                return apply_introduction(isolation, item, self.ics,
                                          self.guard)
            return outcome
        return apply_introduction(isolation, item, self.ics, self.guard)

    def optimize(self) -> OptimizationReport:
        """Run the full pipeline (see module docstring for the policy)."""
        report = OptimizationReport(self.program, self.program)
        current = self.program
        multi_level_done = False
        preserved: set[str] = set()

        # Group residues by (pred, sequence); push each group in one
        # isolation so the sequence is only isolated once.  Preference
        # order: pruning > elimination > introduction; strict usefulness
        # over loose; all-recursive sequences (which cover arbitrarily
        # deep trees) over exit-terminated ones; shorter over longer.
        def sort_key(item: SequenceResidue):
            exit_terminated = any(
                self.program.rule(label).count_occurrences(
                    item.clause.pred) == 0
                for label in item.sequence)
            return (_ACTION_RANK[_preferred_action(
                        item, self.small_relations)],
                    0 if item.strictly_useful or item.residue.is_null
                    else 1,
                    1 if exit_terminated else 0,
                    len(item.sequence))

        residues = sorted(self.all_residues(), key=sort_key)

        # Phase 1 — periodic super-groups: all multi-level residues over
        # the same recursive rule compose into ONE depth-class
        # compilation (each edit applies from its own depth threshold),
        # so several ICs on one recursion no longer block each other.
        handled: set[int] = set()
        if self.compilation == "periodic":
            by_rule: dict[tuple[str, str],
                          list[tuple[SequenceResidue, str]]] = {}
            for item in residues:
                if len(item.sequence) <= 1:
                    continue
                action = _preferred_action(item, self.small_relations)
                if action == "skip":
                    continue
                if not periodic_applicable(current, item.clause.pred,
                                           item):
                    continue
                key = (item.clause.pred, item.sequence[0])
                by_rule.setdefault(key, []).append((item, action))
            for (pred, _rule_label), entries in by_rule.items():
                if multi_level_done:
                    break
                items = [entry[0] for entry in entries]
                actions = [entry[1] for entry in entries]
                outcome, per_item = push_periodic_group_best_effort(
                    current, pred, items, actions, self.ics, self.guard)
                if not outcome.applied:
                    # Compilation-level failure (e.g. a second recursive
                    # rule): leave the items to phase 2's automaton path.
                    continue
                for item, item_outcome in zip(items, per_item):
                    handled.add(id(item))
                    report.steps.append(OptimizationStep(
                        _ic_label(item), item.sequence,
                        str(item.residue), item_outcome))
                current = outcome.program
                preserved |= outcome.preserved_preds
                multi_level_done = True

        # Phase 2 — the remaining residues, per (pred, sequence) group.
        groups: dict[tuple[str, tuple[str, ...]],
                     list[SequenceResidue]] = {}
        for item in residues:
            if id(item) in handled:
                continue
            groups.setdefault((item.clause.pred, item.sequence),
                              []).append(item)

        for (pred, sequence), items in groups.items():
            multi_level = len(sequence) > 1
            if multi_level and multi_level_done:
                for item in items:
                    report.steps.append(OptimizationStep(
                        _ic_label(item), sequence, str(item.residue),
                        PushOutcome(
                            _preferred_action(item, self.small_relations),
                            False,
                            "another multi-level sequence was already "
                            "isolated this pass")))
                continue
            isolation: Isolation | None = None
            group_changed = False
            for item in items:
                try:
                    if (self.compilation == "periodic"
                            and periodic_applicable(current, pred, item)):
                        outcome = self.push_periodic_item(current, item)
                    else:
                        if isolation is None:
                            isolation = isolate(current, pred, sequence)
                        outcome = self.push_into(isolation, item)
                except ProgramError as error:
                    outcome = PushOutcome(
                        _preferred_action(item, self.small_relations),
                        False, f"earlier edit superseded the target rule: "
                        f"{error}")
                report.steps.append(OptimizationStep(
                    _ic_label(item), sequence, str(item.residue), outcome))
                if outcome.applied and outcome.program is not None:
                    current = outcome.program
                    group_changed = True
                    preserved |= outcome.preserved_preds
                    if isolation is not None:
                        # Re-anchor the isolation on the updated program
                        # so later residues of the group see earlier
                        # edits.
                        isolation = Isolation(
                            current, isolation.pred, isolation.sequence,
                            isolation.clause, isolation.alpha_labels,
                            isolation.p_names, isolation.q_names)
            if multi_level and group_changed:
                multi_level_done = True
        if self.collapse:
            auxiliaries = (current.idb_predicates
                           - self.program.idb_predicates - preserved)
            current = inline_auxiliaries(current, auxiliaries)
        report.optimized = current
        return report


def _ic_label(item: SequenceResidue) -> str:
    ic = item.residue.ic
    return (ic.label or str(ic)) if ic is not None else "?"


def optimize(program: Program, ics: Sequence[IntegrityConstraint],
             pred: str | None = None, guard: GuardMode = "chase",
             small_relations: Iterable[str] = ()) -> OptimizationReport:
    """One-call convenience wrapper around :class:`SemanticOptimizer`."""
    return SemanticOptimizer(
        program, ics, pred=pred, guard=guard,
        small_relations=small_relations).optimize()


def optimize_all_predicates(program: Program,
                            ics: Sequence[IntegrityConstraint],
                            guard: GuardMode = "chase",
                            small_relations: Iterable[str] = (),
                            compilation: str = "periodic"
                            ) -> OptimizationReport:
    """Optimize every linear recursive predicate of the program in turn.

    Each predicate gets its own :class:`SemanticOptimizer` pass over the
    program produced by the previous pass — sound because a pass only
    rewrites its own predicate's rules (other predicates' rules, and
    hence their linearity, are untouched).  Non-linear or mutually
    recursive predicates are skipped with a report entry.
    """
    combined = OptimizationReport(program, program)
    current = program
    info = program.recursion_info()
    for pred in sorted(info.recursive_predicates):
        if not info.is_linear(pred) or any(
                pred in group for group in info.mutual_groups):
            combined.steps.append(OptimizationStep(
                "-", (pred,), "-",
                PushOutcome("skip", False,
                            f"{pred} is not linear recursion")))
            continue
        report = SemanticOptimizer(
            current, ics, pred=pred, guard=guard,
            small_relations=small_relations,
            compilation=compilation).optimize()
        combined.steps.extend(report.steps)
        current = report.optimized
    # A non-recursive program still gets its rule-level residues.
    if not info.recursive_predicates:
        report = SemanticOptimizer(
            current, ics, guard=guard,
            small_relations=small_relations,
            compilation=compilation).optimize()
        combined.steps.extend(report.steps)
        current = report.optimized
    combined.optimized = current
    return combined
