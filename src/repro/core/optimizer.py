"""End-to-end semantic optimizer.

:class:`SemanticOptimizer` wires the pipeline together: residue
generation (Algorithm 3.1), sequence isolation (Algorithm 4.1) and
residue pushing (Section 4), with reporting of what was and was not
applied and why.

Composition policy (see DESIGN.md): Algorithm 3.1's assumptions — linear
recursion, no mutual recursion — do not hold for an already-transformed
program, so multi-level passes do not compose arbitrarily.
:meth:`SemanticOptimizer.optimize` therefore works in two phases:

1. all multi-level residues that are *periodic* (uniform ``r^k``
   sequences over the same recursive rule) compose into ONE depth-class
   compilation, each edit applying from its own depth threshold — so
   several ICs on one recursion do not block each other;
2. the remaining residues are pushed per (predicate, sequence) group:
   rule-level groups greedily (they preserve linearity), plus at most
   one further multi-level isolation, ordered by a benefit policy
   (pruning > elimination > introduction, strict usefulness first).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..constraints.ic import IntegrityConstraint
from ..datalog.program import Program
from ..errors import ProgramError
from ..runtime import chaos
from ..runtime.budget import Budget
from ..runtime.resilience import ResilienceReport, StageFailure
from .collapse import inline_auxiliaries
from .isolate import Isolation, isolate
from .periodic import (periodic_applicable, periodic_eliminate,
                       periodic_introduce, periodic_prune,
                       push_periodic_group_best_effort)
from .push import (GuardMode, PushOutcome, apply_elimination,
                   apply_introduction, apply_pruning)
from .residues import (SequenceResidue, generate_residues,
                       generate_residues_exhaustive,
                       rule_level_residues)
from .sdgraph import DEFAULT_MAX_HOPS

#: Push-action priority (lower sorts first).
_ACTION_RANK = {"prune": 0, "eliminate": 1, "introduce": 2, "skip": 3}


@dataclass(frozen=True)
class OptimizationStep:
    """One residue push attempt, applied or not."""

    ic_label: str
    sequence: tuple[str, ...]
    residue: str
    outcome: PushOutcome

    def __str__(self) -> str:
        status = "applied" if self.outcome.applied else \
            f"skipped ({self.outcome.reason})"
        return (f"[{self.outcome.action}] ic={self.ic_label} "
                f"seq={' '.join(self.sequence)} residue='{self.residue}' "
                f"-> {status}")


@dataclass
class OptimizationReport:
    """The result of :meth:`SemanticOptimizer.optimize`."""

    original: Program
    optimized: Program
    steps: list[OptimizationStep] = field(default_factory=list)

    @property
    def applied_steps(self) -> list[OptimizationStep]:
        return [s for s in self.steps if s.outcome.applied]

    @property
    def changed(self) -> bool:
        return bool(self.applied_steps)

    def summary(self) -> str:
        lines = [f"{len(self.applied_steps)}/{len(self.steps)} residue "
                 "pushes applied"]
        lines.extend(f"  {step}" for step in self.steps)
        return "\n".join(lines)


def _preferred_action(item: SequenceResidue,
                      small_relations: frozenset[str]) -> str:
    """Choose the optimization a residue suggests (Section 4)."""
    residue = item.residue
    if residue.is_null:
        return "prune"
    head = residue.head_atom()
    occurs = head is not None and \
        item.clause.provenance_of(head) is not None
    if occurs:
        return "eliminate"
    if head is not None:
        # Introduction of a database atom only pays off for small
        # relations (the paper's criterion); otherwise do nothing.
        return "introduce" if head.pred in small_relations else "skip"
    return "introduce"  # evaluable head: scan reduction


class SemanticOptimizer:
    """Pushes the semantics of integrity constraints inside recursion.

    Args:
        program: a (rectified) linear recursive program.
        ics: the integrity constraints (EDB-only).
        pred: the recursive predicate to optimize; defaults to the single
            recursive predicate of the program.
        guard: ``"chase"`` (default) validates every edit with the
            containment test; ``"none"`` reproduces the paper verbatim.
        small_relations: EDB predicates worth *introducing* as semijoin
            reducers (the paper's "small relation" criterion is a
            physical-design judgement the optimizer cannot make alone).
        max_hops: SD-graph depth bound for Algorithm 3.1.
        executor: engine executor used by sample verification
            (``_spot_check``); ``"parallel"`` shards those evaluations
            (see :mod:`repro.engine.parallel`).
        shards: shard count when ``executor="parallel"``.
        planner: engine join planner used by the same verification
            evaluations (``"cbo"`` runs them under the cost-based
            optimizer's adaptive machinery; the semantic rewrites this
            class applies are themselves enumerated as candidates by
            :mod:`repro.engine.optimizer`).
    """

    def __init__(self, program: Program,
                 ics: Iterable[IntegrityConstraint],
                 pred: str | None = None,
                 guard: GuardMode = "chase",
                 small_relations: Iterable[str] = (),
                 max_hops: int = DEFAULT_MAX_HOPS,
                 collapse: bool = True,
                 compilation: str = "periodic",
                 executor: str = "compiled",
                 shards: int | None = None,
                 planner: str = "greedy") -> None:
        if compilation not in ("periodic", "automaton"):
            raise ValueError(
                f"compilation must be 'periodic' or 'automaton', "
                f"got {compilation!r}")
        from ..engine.bindings import validate_planner
        from ..engine.compile import validate_executor
        validate_executor(executor)
        validate_planner(planner)
        self.program = program
        self.ics = list(ics)
        self.guard: GuardMode = guard
        self.small_relations = frozenset(small_relations)
        self.max_hops = max_hops
        self.collapse = collapse
        self.compilation = compilation
        self.executor = executor
        self.shards = shards
        self.planner = planner
        self.pred = pred or self._single_recursive_pred(program)

    @staticmethod
    def _single_recursive_pred(program: Program) -> str | None:
        """The unique recursive predicate; None for non-recursive
        programs (rule-level residues still apply); ambiguity raises."""
        info = program.recursion_info()
        recursive = sorted(info.recursive_predicates)
        if not recursive:
            return None
        if len(recursive) > 1:
            raise ProgramError(
                f"cannot infer the recursive predicate (found "
                f"{recursive}); pass pred= explicitly or use "
                "optimize_all_predicates")
        return recursive[0]

    # -- residue generation ----------------------------------------------------
    def sequence_residues(self) -> list[SequenceResidue]:
        """Sequence residues of every IC (useful ones only).

        Chain-shaped ICs go through Algorithm 3.1's graph detection;
        non-chain ICs (outside the algorithm's stated class) fall back
        to the bounded exhaustive enumerator, so the optimizer is not
        limited to the paper's syntactic class.
        """
        out: list[SequenceResidue] = []
        if self.pred is None:
            return out
        for ic in self.ics:
            if not ic.is_edb_only(self.program):
                continue
            if ic.is_chain():
                out.extend(generate_residues(
                    self.program, self.pred, ic, max_hops=self.max_hops))
            else:
                out.extend(generate_residues_exhaustive(
                    self.program, self.pred, ic,
                    max_length=len(ic.database_atoms()) + 2))
        return out

    def rule_residues(self) -> list[SequenceResidue]:
        """Rule-level residues (any predicate, any IC shape)."""
        out: list[SequenceResidue] = []
        for ic in self.ics:
            out.extend(rule_level_residues(self.program, ic))
        return out

    def all_residues(self) -> list[SequenceResidue]:
        """Sequence residues plus rule-level residues, deduplicated."""
        residues = self.sequence_residues()
        seen = {(r.sequence, str(r.residue)) for r in residues}
        for item in self.rule_residues():
            key = (item.sequence, str(item.residue))
            if key not in seen:
                seen.add(key)
                residues.append(item)
        return residues

    # -- pushing ------------------------------------------------------------------
    def push(self, program: Program, item: SequenceResidue) -> PushOutcome:
        """Isolate the residue's sequence in ``program`` and push it."""
        isolation = isolate(program, item.clause.pred, item.sequence)
        return self.push_into(isolation, item)

    def push_periodic_item(self, program: Program,
                           item: SequenceResidue) -> PushOutcome:
        """Push via the overlap-aware depth-class compilation.

        Callers must have checked :func:`periodic_applicable` against
        ``program`` first.
        """
        action = _preferred_action(item, self.small_relations)
        pred = item.clause.pred
        if action == "prune":
            return periodic_prune(program, pred, item, self.ics,
                                  self.guard)
        if action == "eliminate":
            return periodic_eliminate(program, pred, item, self.ics,
                                      self.guard)
        if action == "introduce":
            return periodic_introduce(program, pred, item, self.ics,
                                      self.guard)
        return PushOutcome("skip", False,
                           "nothing beneficial to push")

    def push_into(self, isolation: Isolation,
                  item: SequenceResidue) -> PushOutcome:
        action = _preferred_action(item, self.small_relations)
        if action == "skip":
            return PushOutcome(
                "skip", False,
                "fact residue names a relation not declared small; "
                "nothing beneficial to push")
        if action == "prune":
            return apply_pruning(isolation, item, self.ics, self.guard)
        if action == "eliminate":
            outcome = apply_elimination(isolation, item, self.ics,
                                        self.guard)
            if outcome.applied:
                return outcome
            if (item.residue.head_atom() is not None
                    and item.residue.head_atom().pred
                    in self.small_relations):
                return apply_introduction(isolation, item, self.ics,
                                          self.guard)
            return outcome
        return apply_introduction(isolation, item, self.ics, self.guard)

    # -- pipeline stages (shared by optimize and optimize_safe) --------------
    def _sort_key(self, item: SequenceResidue):
        """Push-preference order: pruning > elimination > introduction;
        strict usefulness over loose; all-recursive sequences (which
        cover arbitrarily deep trees) over exit-terminated ones; shorter
        over longer."""
        exit_terminated = any(
            self.program.rule(label).count_occurrences(
                item.clause.pred) == 0
            for label in item.sequence)
        return (_ACTION_RANK[_preferred_action(
                    item, self.small_relations)],
                0 if item.strictly_useful or item.residue.is_null
                else 1,
                1 if exit_terminated else 0,
                len(item.sequence))

    def _sorted_residues(self) -> list[SequenceResidue]:
        return sorted(self.all_residues(), key=self._sort_key)

    def _phase1_periodic(self, current: Program,
                         residues: Sequence[SequenceResidue],
                         report: OptimizationReport, preserved: set[str],
                         capture: Callable[..., None] | None = None,
                         budget: Budget | None = None
                         ) -> tuple[Program, bool, set[int]]:
        """Phase 1 — periodic super-groups: all multi-level residues over
        the same recursive rule compose into ONE depth-class compilation
        (each edit applies from its own depth threshold), so several ICs
        on one recursion do not block each other.

        Returns ``(program, multi_level_done, handled residue ids)``.
        With ``capture`` set (the guarded pipeline), a failing group is
        dropped and reported instead of propagating.
        """
        multi_level_done = False
        handled: set[int] = set()
        if self.compilation != "periodic":
            return current, multi_level_done, handled
        by_rule: dict[tuple[str, str],
                      list[tuple[SequenceResidue, str]]] = {}
        for item in residues:
            if len(item.sequence) <= 1:
                continue
            action = _preferred_action(item, self.small_relations)
            if action == "skip":
                continue
            if not periodic_applicable(current, item.clause.pred, item):
                continue
            key = (item.clause.pred, item.sequence[0])
            by_rule.setdefault(key, []).append((item, action))
        for (pred, rule_label), entries in by_rule.items():
            if multi_level_done:
                break
            items = [entry[0] for entry in entries]
            actions = [entry[1] for entry in entries]
            try:
                if capture is not None:
                    chaos.checkpoint(f"periodic:{pred}/{rule_label}")
                    if budget is not None:
                        budget.check_round(last_round=None)
                outcome, per_item = push_periodic_group_best_effort(
                    current, pred, items, actions, self.ics, self.guard)
            except Exception as error:
                if capture is None:
                    raise
                capture(f"periodic:{pred}/{rule_label}", error,
                        tuple(_ic_label(item) for item in items))
                continue
            if not outcome.applied:
                # Compilation-level failure (e.g. a second recursive
                # rule): leave the items to phase 2's automaton path.
                continue
            for item, item_outcome in zip(items, per_item):
                handled.add(id(item))
                report.steps.append(OptimizationStep(
                    _ic_label(item), item.sequence,
                    str(item.residue), item_outcome))
            current = outcome.program
            preserved |= outcome.preserved_preds
            multi_level_done = True
        return current, multi_level_done, handled

    def _phase2_push(self, current: Program,
                     residues: Sequence[SequenceResidue],
                     handled: set[int], multi_level_done: bool,
                     report: OptimizationReport, preserved: set[str],
                     capture: Callable[..., None] | None = None,
                     budget: Budget | None = None) -> Program:
        """Phase 2 — the remaining residues, per (pred, sequence) group.

        Each group is pushed in one isolation so the sequence is only
        isolated once.  With ``capture`` set, a failing residue is
        dropped and reported instead of propagating.
        """
        groups: dict[tuple[str, tuple[str, ...]],
                     list[SequenceResidue]] = {}
        for item in residues:
            if id(item) in handled:
                continue
            groups.setdefault((item.clause.pred, item.sequence),
                              []).append(item)

        for (pred, sequence), items in groups.items():
            multi_level = len(sequence) > 1
            if multi_level and multi_level_done:
                for item in items:
                    report.steps.append(OptimizationStep(
                        _ic_label(item), sequence, str(item.residue),
                        PushOutcome(
                            _preferred_action(item, self.small_relations),
                            False,
                            "another multi-level sequence was already "
                            "isolated this pass")))
                continue
            isolation: Isolation | None = None
            group_changed = False
            stage = f"push:{pred}/{' '.join(sequence)}"
            for item in items:
                try:
                    if capture is not None:
                        chaos.checkpoint(stage)
                        if budget is not None:
                            budget.check_round(last_round=None)
                    if (self.compilation == "periodic"
                            and periodic_applicable(current, pred, item)):
                        outcome = self.push_periodic_item(current, item)
                    else:
                        if isolation is None:
                            isolation = isolate(current, pred, sequence)
                        outcome = self.push_into(isolation, item)
                except ProgramError as error:
                    outcome = PushOutcome(
                        _preferred_action(item, self.small_relations),
                        False, f"earlier edit superseded the target rule: "
                        f"{error}")
                except Exception as error:
                    if capture is None:
                        raise
                    capture(stage, error, (_ic_label(item),))
                    outcome = PushOutcome(
                        _preferred_action(item, self.small_relations),
                        False, f"stage degraded: {error}")
                report.steps.append(OptimizationStep(
                    _ic_label(item), sequence, str(item.residue), outcome))
                if outcome.applied and outcome.program is not None:
                    current = outcome.program
                    group_changed = True
                    preserved |= outcome.preserved_preds
                    if isolation is not None:
                        # Re-anchor the isolation on the updated program
                        # so later residues of the group see earlier
                        # edits.
                        isolation = Isolation(
                            current, isolation.pred, isolation.sequence,
                            isolation.clause, isolation.alpha_labels,
                            isolation.p_names, isolation.q_names)
            if multi_level and group_changed:
                multi_level_done = True
        return current

    def _collapse_stage(self, current: Program,
                        preserved: set[str]) -> Program:
        auxiliaries = (current.idb_predicates
                       - self.program.idb_predicates - preserved)
        return inline_auxiliaries(current, auxiliaries)

    def optimize(self) -> OptimizationReport:
        """Run the full pipeline (see module docstring for the policy)."""
        report = OptimizationReport(self.program, self.program)
        preserved: set[str] = set()
        residues = self._sorted_residues()
        current, multi_level_done, handled = self._phase1_periodic(
            self.program, residues, report, preserved)
        current = self._phase2_push(current, residues, handled,
                                    multi_level_done, report, preserved)
        if self.collapse:
            current = self._collapse_stage(current, preserved)
        report.optimized = current
        return report

    # -- guarded pipeline ----------------------------------------------------
    def _residues_of_ic(self, ic: IntegrityConstraint
                        ) -> list[SequenceResidue]:
        """All residues contributed by one IC (sequence + rule level)."""
        out: list[SequenceResidue] = []
        if self.pred is not None and ic.is_edb_only(self.program):
            if ic.is_chain():
                out.extend(generate_residues(
                    self.program, self.pred, ic, max_hops=self.max_hops))
            else:
                out.extend(generate_residues_exhaustive(
                    self.program, self.pred, ic,
                    max_length=len(ic.database_atoms()) + 2))
        out.extend(rule_level_residues(self.program, ic))
        return out

    def _safe_residues(self, capture: Callable[..., None],
                       budget: Budget | None) -> list[SequenceResidue]:
        """Residue generation with per-IC degradation.

        First tries the whole stage at once; if that fails, retries one
        IC at a time, dropping (and reporting) only the ICs whose
        residue generation fails.
        """
        try:
            chaos.checkpoint("residues")
            if budget is not None:
                budget.check_round(last_round=None)
            return self._sorted_residues()
        except Exception as error:
            capture("residues", error, ())
        collected: list[SequenceResidue] = []
        seen: set[tuple] = set()
        for ic in self.ics:
            label = ic.label or str(ic)
            try:
                chaos.checkpoint(f"residues:{label}")
                if budget is not None:
                    budget.check_round(last_round=None)
                items = self._residues_of_ic(ic)
            except Exception as error:
                capture(f"residues:{label}", error, (label,))
                continue
            for item in items:
                key = (item.sequence, str(item.residue))
                if key not in seen:
                    seen.add(key)
                    collected.append(item)
        return sorted(collected, key=self._sort_key)

    def optimize_safe(self, budget: Budget | None = None,
                      verify: str = "none", sample_count: int = 3,
                      sample_facts: int = 12,
                      stage_timeout_s: float | None = None,
                      rng: random.Random | None = None
                      ) -> ResilienceReport:
        """Run the pipeline with exception capture and graceful fallback.

        Every stage — residue generation, periodic compilation, per-group
        pushing, auxiliary collapse — runs under its own budget slice
        with exception capture.  A failing stage (or residue group, or
        single IC) is *dropped* and recorded in the returned
        :class:`ResilienceReport`; the pipeline continues from the last
        sound program, degrading in the worst case to the original
        program itself.  Dropping work is always sound: the optimized
        program differs from the source only by guard-validated edits,
        so any prefix of the edit sequence preserves answers
        (Theorem 4.1; see ``docs/robustness.md``).

        Args:
            budget: overall budget; each stage gets a
                :meth:`Budget.child` slice sharing its deadline and
                cancellation flag.  Deadline expiry degrades like any
                other stage failure instead of raising.
            verify: ``"sample"`` runs an equivalence spot-check of the
                optimized vs. source program on random IC-consistent
                databases and *quarantines* the optimization (falls back
                to the source program) on mismatch.
            sample_count / sample_facts: spot-check breadth: number of
                sampled databases and facts per relation in each.
            stage_timeout_s: optional per-stage wall-clock allowance,
                capped by ``budget``'s remaining time.
            rng: randomness for the spot-check (seeded default, so runs
                are reproducible).
        """
        if verify not in ("none", "sample"):
            raise ValueError(
                f"verify must be 'none' or 'sample', got {verify!r}")
        if budget is not None:
            budget.start()
        result = ResilienceReport(self.program, self.program)
        report = OptimizationReport(self.program, self.program)

        def capture(stage: str, error: BaseException,
                    dropped: tuple[str, ...] = ()) -> None:
            result.failures.append(StageFailure(
                stage, str(error) or error.__class__.__name__,
                type(error).__name__, tuple(dropped)))

        def stage_budget() -> Budget | None:
            if budget is not None:
                return budget.child(stage_timeout_s).start()
            if stage_timeout_s is not None:
                return Budget(timeout_s=stage_timeout_s).start()
            return None

        residues = self._safe_residues(capture, stage_budget())
        preserved: set[str] = set()
        current = self.program
        multi_level_done, handled = False, set()

        # Stage-level capture backstops the per-group capture inside each
        # phase; when a phase dies outside a group, its partial steps are
        # discarded so the report never claims an edit the returned
        # program does not contain.
        marker = len(report.steps)
        try:
            current, multi_level_done, handled = self._phase1_periodic(
                self.program, residues, report, preserved,
                capture=capture, budget=stage_budget())
        except Exception as error:
            capture("periodic", error, ())
            del report.steps[marker:]
            current, multi_level_done, handled = self.program, False, set()

        marker = len(report.steps)
        before_phase2 = current
        try:
            current = self._phase2_push(
                current, residues, handled, multi_level_done, report,
                preserved, capture=capture, budget=stage_budget())
        except Exception as error:
            capture("push", error, ())
            del report.steps[marker:]
            current = before_phase2

        if self.collapse:
            try:
                chaos.checkpoint("collapse")
                sliced = stage_budget()
                if sliced is not None:
                    sliced.check_round(last_round=None)
                current = self._collapse_stage(current, preserved)
            except Exception as error:
                # Collapse is cosmetic (inlining auxiliaries); keep the
                # uncollapsed — still sound — program.
                capture("collapse", error, ())

        result.steps = report.steps
        result.optimized = current

        if verify == "sample" and result.applied_steps:
            try:
                chaos.checkpoint("verify")
                detail = self._spot_check(current, sample_count,
                                          sample_facts, rng,
                                          stage_budget())
            except Exception as error:
                result.verification = "error"
                result.verification_detail = str(error)
            else:
                if detail is None:
                    result.verification = "passed"
                else:
                    suspects = "; ".join(
                        f"[{s.outcome.action}] ic={s.ic_label} "
                        f"seq={' '.join(s.sequence)}"
                        for s in result.applied_steps)
                    result.verification = "mismatch"
                    result.verification_detail = \
                        f"{detail}; suspect steps: {suspects}"
                    result.quarantined = True
                    result.optimized = self.program
        return result

    def _spot_check(self, optimized: Program, count: int,
                    facts_per_relation: int,
                    rng: random.Random | None,
                    budget: Budget | None) -> str | None:
        """Compare ``optimized`` against the source program on sampled
        IC-consistent databases; a one-line diagnosis on mismatch."""
        from ..engine import evaluate
        from .equivalence import (infer_numeric_columns,
                                  random_consistent_databases)

        arities = self.program.predicate_arities()
        schema = {pred: arities[pred]
                  for pred in sorted(self.program.edb_predicates)}
        if not schema:
            return None
        rng = rng if rng is not None else random.Random(0x1C95)
        numeric = infer_numeric_columns(self.program, self.ics)
        databases = random_consistent_databases(
            schema, self.ics, count, rng,
            facts_per_relation=facts_per_relation,
            numeric_columns=numeric)
        for index, database in enumerate(databases):
            source = evaluate(self.program, database, budget=budget,
                              executor=self.executor, shards=self.shards,
                              planner=self.planner)
            candidate = evaluate(optimized, database, budget=budget,
                                 executor=self.executor,
                                 shards=self.shards,
                                 planner=self.planner)
            for pred in sorted(self.program.idb_predicates):
                left = source.facts(pred)
                right = candidate.facts(pred)
                if left != right:
                    return (f"sampled database #{index}: {pred} differs "
                            f"({len(left - right)} tuples lost, "
                            f"{len(right - left)} gained)")
        return None


def _ic_label(item: SequenceResidue) -> str:
    ic = item.residue.ic
    return (ic.label or str(ic)) if ic is not None else "?"


def optimize(program: Program, ics: Sequence[IntegrityConstraint],
             pred: str | None = None, guard: GuardMode = "chase",
             small_relations: Iterable[str] = ()) -> OptimizationReport:
    """One-call convenience wrapper around :class:`SemanticOptimizer`."""
    return SemanticOptimizer(
        program, ics, pred=pred, guard=guard,
        small_relations=small_relations).optimize()


def optimize_all_predicates(program: Program,
                            ics: Sequence[IntegrityConstraint],
                            guard: GuardMode = "chase",
                            small_relations: Iterable[str] = (),
                            compilation: str = "periodic"
                            ) -> OptimizationReport:
    """Optimize every linear recursive predicate of the program in turn.

    Each predicate gets its own :class:`SemanticOptimizer` pass over the
    program produced by the previous pass — sound because a pass only
    rewrites its own predicate's rules (other predicates' rules, and
    hence their linearity, are untouched).  Non-linear or mutually
    recursive predicates are skipped with a report entry.
    """
    combined = OptimizationReport(program, program)
    current = program
    info = program.recursion_info()
    for pred in sorted(info.recursive_predicates):
        if not info.is_linear(pred) or any(
                pred in group for group in info.mutual_groups):
            combined.steps.append(OptimizationStep(
                "-", (pred,), "-",
                PushOutcome("skip", False,
                            f"{pred} is not linear recursion")))
            continue
        report = SemanticOptimizer(
            current, ics, pred=pred, guard=guard,
            small_relations=small_relations,
            compilation=compilation).optimize()
        combined.steps.extend(report.steps)
        current = report.optimized
    # A non-recursive program still gets its rule-level residues.
    if not info.recursive_predicates:
        report = SemanticOptimizer(
            current, ics, guard=guard,
            small_relations=small_relations,
            compilation=compilation).optimize()
        combined.steps.extend(report.steps)
        current = report.optimized
    combined.optimized = current
    return combined
