"""The subgoal-dependency graph (SD-graph).

Nodes are EDB subgoal occurrences; a directed edge ``a -> b`` labelled
``(exp, {(i1, j1), ...})`` records that in any expansion sequence
extending ``rule(a)`` by the rules of ``exp``, the ``i``-th argument of
``a`` is identical to the ``j``-th argument of ``b`` (``b`` lives
``len(exp)`` levels deeper).  Edges are obtained by composing one
undirected AP-graph hop (into a recursive-call position) with a chain of
directed hops (output-variable flow), exactly as Definition 3.2's paths
prescribe.

Undirected SD edges record same-rule variable sharing (directly or via a
dummy subgoal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..datalog.program import Program
from .apgraph import (APGraph, DirectedEdge, SubgoalNode, build_ap_graph,
                      same_rule_shared_positions)

#: Maximum number of recursion levels an SD edge may span.
DEFAULT_MAX_HOPS = 6


@dataclass(frozen=True)
class SDEdge:
    """A directed SD-graph edge.

    Attributes:
        source: the shallower subgoal occurrence.
        target: the deeper subgoal occurrence.
        expansion: rule labels crossed, top-down; ``target`` belongs to
            the last one.
        pairs: argument-position pairs ``(i, j)`` with source's i-th
            argument identical to target's j-th argument.
    """

    source: SubgoalNode
    target: SubgoalNode
    expansion: tuple[str, ...]
    pairs: frozenset[tuple[int, int]]


@dataclass
class SDGraph:
    """The SD-graph: directed cross-level edges + same-rule sharing."""

    ap: APGraph
    directed: list[SDEdge] = field(default_factory=list)
    undirected: list[SDEdge] = field(default_factory=list)

    def edges_from(self, node: SubgoalNode,
                   include_undirected: bool = True) -> Iterator[SDEdge]:
        for edge in self.directed:
            if edge.source == node:
                yield edge
        if include_undirected:
            for edge in self.undirected:
                if edge.source == node:
                    yield edge

    def nodes_for(self, predicate: str) -> Iterator[SubgoalNode]:
        for node, atom in self.ap.subgoals.items():
            if atom.pred == predicate:
                yield node


def build_sd_graph(program: Program, pred: str,
                   max_hops: int = DEFAULT_MAX_HOPS) -> SDGraph:
    """Construct the SD-graph of ``program`` w.r.t. ``pred``."""
    ap = build_ap_graph(program, pred)
    graph = SDGraph(ap=ap)

    # Directed edges: undirected hop into p_k, then 1..max_hops directed
    # hops.  Accumulate (source, target, expansion) -> pairs.
    accumulated: dict[tuple[SubgoalNode, SubgoalNode, tuple[str, ...]],
                      set[tuple[int, int]]] = {}
    for start in ap.subgoals:
        for hop in ap.undirected_from(start):
            _walk(ap, start, hop.arg_pos, hop.position, (), accumulated,
                  max_hops)
    for (source, target, expansion), pairs in accumulated.items():
        graph.directed.append(
            SDEdge(source, target, expansion, frozenset(pairs)))

    # Undirected edges: same-rule sharing (directly or via dummies both
    # reduce to shared variables between the two atoms).
    nodes = list(ap.subgoals.items())
    for index_a, (node_a, atom_a) in enumerate(nodes):
        for node_b, atom_b in nodes[index_a + 1:]:
            if node_a[1] != node_b[1]:  # different rules
                continue
            pairs = same_rule_shared_positions(atom_a, atom_b)
            if pairs:
                graph.undirected.append(
                    SDEdge(node_a, node_b, (), pairs))
                graph.undirected.append(
                    SDEdge(node_b, node_a, (),
                           frozenset((j, i) for i, j in pairs)))
    return graph


def _walk(ap: APGraph, start: SubgoalNode, start_arg: int, position: int,
          expansion: tuple[str, ...],
          accumulated: dict, max_hops: int) -> None:
    """Depth-first walk along directed AP edges from ``p_position``."""
    if len(expansion) >= max_hops:
        return
    for edge in ap.directed_from(position):
        new_expansion = expansion + (edge.rule,)
        if isinstance(edge.target, tuple) and edge.target[0] == "subgoal":
            key = (start, edge.target, new_expansion)
            accumulated.setdefault(key, set()).add(
                (start_arg, edge.arg_pos))
        else:  # another recursive-call position: keep threading down
            _walk(ap, start, start_arg, edge.target[1], new_expansion,
                  accumulated, max_hops)
