"""Empirical semantic-equivalence checking.

Two programs are *semantically equivalent w.r.t. constraints I*
(Section 1) when they compute identical IDB relations on every database
satisfying ``I``.  Exact equivalence of recursive programs is undecidable
in general; we check it empirically on batches of random IC-satisfying
databases — which is how Theorem 4.1 and every push transformation are
validated in the test suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..constraints.checker import satisfies, violations
from ..constraints.ic import IntegrityConstraint
from ..datalog.atoms import Atom, Comparison
from ..datalog.program import Program
from ..datalog.terms import ArithExpr, Constant, Variable
from ..engine import evaluate
from ..facts.database import Database


@dataclass(frozen=True)
class Counterexample:
    """A database on which two programs disagree about ``pred``."""

    database: Database
    pred: str
    only_first: frozenset[tuple]
    only_second: frozenset[tuple]

    def __str__(self) -> str:
        return (f"programs disagree on {self.pred}: "
                f"{len(self.only_first)} tuples only in the first, "
                f"{len(self.only_second)} only in the second\n"
                f"database:\n{self.database.to_text()}")


def check_equivalent(first: Program, second: Program, pred: str,
                     databases: Iterable[Database]
                     ) -> Counterexample | None:
    """Compare the two programs' ``pred`` on each database."""
    for database in databases:
        left = evaluate(first, database).facts(pred)
        right = evaluate(second, database).facts(pred)
        if left != right:
            return Counterexample(database, pred,
                                  frozenset(left - right),
                                  frozenset(right - left))
    return None


def make_consistent(database: Database,
                    ics: Sequence[IntegrityConstraint],
                    max_rounds: int = 200) -> Database:
    """Mutate ``database`` until it satisfies every IC.

    Fact-style ICs (database-atom heads with no existential variables)
    are repaired by *adding* the implied facts; all other ICs (denials,
    evaluable heads, existential heads) by *deleting* a body fact of each
    violation.  Deletion can re-expose earlier ICs, hence the outer
    fixpoint loop.
    """
    for _ in range(max_rounds):
        dirty = False
        for ic in ics:
            for binding in violations(ic, database, limit=None):
                dirty = True
                if not _try_repair_by_adding(database, ic, binding):
                    _delete_one_body_fact(database, ic, binding)
                break  # re-evaluate from a clean iterator
        if not dirty:
            return database
    raise RuntimeError("make_consistent did not converge")


def _try_repair_by_adding(database: Database, ic: IntegrityConstraint,
                          binding) -> bool:
    head = ic.head
    if not isinstance(head, Atom):
        return False
    row = []
    for arg in head.args:
        if isinstance(arg, Constant):
            row.append(arg.value)
        elif isinstance(arg, Variable) and arg in binding:
            row.append(binding[arg])
        else:
            return False  # existential head variable
    database.add_fact(head.pred, *row)
    return True


def _delete_one_body_fact(database: Database, ic: IntegrityConstraint,
                          binding) -> None:
    for literal in ic.database_atoms():
        row = []
        grounded = True
        for arg in literal.args:
            if isinstance(arg, Constant):
                row.append(arg.value)
            elif isinstance(arg, Variable) and arg in binding:
                row.append(binding[arg])
            else:
                grounded = False
                break
        if grounded and tuple(row) in database.relation_or_empty(
                literal.pred, literal.arity):
            relation = database.relation(literal.pred)
            rows = set(relation.rows())
            rows.discard(tuple(row))
            relation.clear()
            relation.add_all(rows)
            return
    raise RuntimeError(  # pragma: no cover - violations are grounded
        f"could not ground a body fact of {ic} to delete")


def infer_numeric_columns(program: Program,
                          ics: Sequence[IntegrityConstraint] = ()
                          ) -> dict[str, list[int]]:
    """Guess which EDB columns must hold numbers for sampling.

    A variable compared (``<``, ``<=``, ...) against a numeric constant,
    or used in arithmetic, forces every EDB column it occupies in the
    same rule or IC body to be numeric — otherwise random symbolic
    values would make the comparison raise at evaluation time.  Used by
    the optimizer's sampled equivalence spot-check to parameterize
    :func:`random_database`.
    """
    scopes: list[tuple[tuple, tuple]] = []
    for r in program:
        atoms = tuple(lit for lit in r.body if isinstance(lit, Atom))
        comparisons = tuple(lit for lit in r.body
                            if isinstance(lit, Comparison))
        scopes.append((atoms, comparisons))
    for ic in ics:
        scopes.append((ic.database_atoms(), ic.evaluable_atoms()))

    columns: dict[str, set[int]] = {}
    edb = program.edb_predicates
    for atoms, comparisons in scopes:
        numeric_vars: set[Variable] = set()
        for comparison in comparisons:
            operands = (comparison.lhs, comparison.rhs)
            forces_numeric = any(
                isinstance(term, ArithExpr) for term in operands) or any(
                isinstance(term, Constant)
                and isinstance(term.value, (int, float))
                for term in operands)
            if forces_numeric:
                numeric_vars |= comparison.variable_set()
        if not numeric_vars:
            continue
        for atom in atoms:
            if atom.pred not in edb:
                continue
            for column, arg in enumerate(atom.args):
                if isinstance(arg, Variable) and arg in numeric_vars:
                    columns.setdefault(atom.pred, set()).add(column)
    return {pred: sorted(cols) for pred, cols in columns.items()}


def random_database(schema: dict[str, int], domain_size: int,
                    facts_per_relation: int, rng: random.Random,
                    numeric_columns: dict[str, Sequence[int]] | None = None,
                    max_value: int = 100) -> Database:
    """A random database for ``schema`` (predicate -> arity).

    ``numeric_columns[pred]`` lists 0-based columns drawing random
    integers in ``[1, max_value]`` instead of symbols ``c0..c<n>``.
    """
    numeric_columns = numeric_columns or {}
    database = Database()
    for pred, arity in schema.items():
        numeric = set(numeric_columns.get(pred, ()))
        for _ in range(facts_per_relation):
            row = []
            for column in range(arity):
                if column in numeric:
                    row.append(rng.randint(1, max_value))
                else:
                    row.append(f"c{rng.randrange(domain_size)}")
            database.add_fact(pred, *row)
    return database


def random_consistent_databases(schema: dict[str, int],
                                ics: Sequence[IntegrityConstraint],
                                count: int, rng: random.Random,
                                domain_size: int = 8,
                                facts_per_relation: int = 15,
                                numeric_columns: dict[str, Sequence[int]]
                                | None = None) -> list[Database]:
    """A batch of random databases repaired to satisfy the ICs."""
    out = []
    for _ in range(count):
        database = random_database(schema, domain_size,
                                   facts_per_relation, rng,
                                   numeric_columns=numeric_columns)
        make_consistent(database, ics)
        assert satisfies(database, *ics)
        out.append(database)
    return out
