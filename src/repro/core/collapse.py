"""Collapsing the isolation chain by unfold/inline (a cost refinement).

Algorithm 4.1's output materializes the auxiliary predicates
``p_1..p_{k-1}``, ``q_1..q_{k-1}``.  Under bottom-up evaluation that is
expensive: every tuple of the recursive predicate flows through *every*
alpha-rule of the chain, so the chain multiplies per-level join work by
roughly ``k`` — easily outweighing what the pushed residues save.

The classical unfold transformation (Tamaki & Sato) fixes this without
touching semantics: an auxiliary predicate with known definitions is
resolved away by inlining each definition into each consumer.  The
result replaces the ``k``-rule chain by ``k``-step "unrolled" rules that
advance ``k`` recursion levels per application, preserving the pushed
edits (eliminated atoms stay eliminated, guards stay attached) while
restoring one join pass per level.

The collapse is *our* refinement — the paper stops at Algorithm 4.1 —
and is benchmarked as an ablation (automaton form vs collapsed form) in
experiment E1.
"""

from __future__ import annotations

from typing import Iterable

from ..datalog.atoms import Atom
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import FreshVariableSupply
from ..datalog.unify import Substitution, unify

#: Give up (and keep the automaton form) past this many rules.
DEFAULT_RULE_BUDGET = 200


def _has_aux_atom(rule: Rule, aux: set[str]) -> bool:
    return any(isinstance(lit, Atom) and lit.pred in aux
               for lit in rule.body)


def _inline_once(rule: Rule, pred: str, definitions: Iterable[Rule],
                 supply: FreshVariableSupply) -> list[Rule]:
    """Resolve the first ``pred`` occurrence of ``rule`` against each
    definition; returns the replacement rules."""
    index = next(i for i, lit in enumerate(rule.body)
                 if isinstance(lit, Atom) and lit.pred == pred)
    call = rule.body[index]
    assert isinstance(call, Atom)
    out: list[Rule] = []
    for definition in definitions:
        renaming = Substitution({
            v: supply.fresh(v.name)
            for v in sorted(definition.variables(),
                            key=lambda v: v.name)})
        renamed = definition.apply(renaming)
        unifier = unify(renamed.head, call)
        if unifier is None:
            continue
        body = (rule.body[:index] + renamed.body + rule.body[index + 1:])
        new_rule = Rule(rule.head, body,
                        label=f"{rule.label}+{definition.label}")
        out.append(new_rule.apply(unifier))
    return out


def inline_auxiliaries(program: Program, aux_preds: Iterable[str],
                       rule_budget: int = DEFAULT_RULE_BUDGET
                       ) -> Program:
    """Resolve away every auxiliary predicate, or return ``program``
    unchanged when the unrolled form would exceed ``rule_budget`` rules.

    Auxiliaries are processed innermost-first: a predicate is inlined
    only once its own definitions are auxiliary-free, which terminates
    because the isolation chain is acyclic through the auxiliaries.
    """
    aux = {p for p in aux_preds}
    if not aux:
        return program
    rules = list(program)
    supply = FreshVariableSupply(
        {v.name for rule in rules for v in rule.variables()})

    while True:
        defined_aux = {r.head.pred for r in rules if r.head.pred in aux}
        ready = [pred for pred in sorted(defined_aux)
                 if not any(_has_aux_atom(r, aux) for r in rules
                            if r.head.pred == pred)]
        # Auxiliaries with no remaining rules (pruned away) inline to
        # nothing: consumers of an empty predicate are dead.
        empty = aux - defined_aux
        consumers_of_empty = [
            r for r in rules
            if any(isinstance(lit, Atom) and lit.pred in empty
                   for lit in r.body)]
        if consumers_of_empty:
            doomed = {id(r) for r in consumers_of_empty}
            rules = [r for r in rules if id(r) not in doomed]
            continue
        if not ready:
            break
        pred = ready[0]
        definitions = [r for r in rules if r.head.pred == pred]
        new_rules: list[Rule] = []
        for rule in rules:
            if rule.head.pred == pred:
                continue
            if _has_aux_atom(rule, {pred}):
                new_rules.extend(
                    _inline_once(rule, pred, definitions, supply))
            else:
                new_rules.append(rule)
        if len(new_rules) > rule_budget:
            return program  # keep the (correct) automaton form
        rules = new_rules
        aux.discard(pred)
        if not aux:
            break

    # Re-label duplicates introduced by inlining.
    seen: set[str] = set()
    final: list[Rule] = []
    for rule in rules:
        label = rule.label or "r"
        while label in seen:
            label += "'"
        seen.add(label)
        final.append(rule.with_label(label))
    return Program(final, edb_hint=tuple(program.edb_predicates))
