"""Residue generation for recursive programs — Algorithm 3.1.

Given a linear program and a chain IC, find the expansion sequences the
IC *maximally subsumes* and compute the corresponding free residues:

1. build the SD-graph of the program and the pattern graph of the IC;
2. walk the pattern path over the SD-graph in both orientations
   (Lemma 3.1), checking the label-subset condition edge by edge; each
   complete walk yields a candidate expansion sequence (Step 3);
3. *verify* each candidate by unfolding it and testing maximal free
   subsumption directly (Step 4), which also produces the subsuming
   substitution and the residue;
4. apply the Section 3 usefulness test, extending theta so a database
   head atom lands on an atom of the sequence.

An exhaustive bounded enumerator over all expansion sequences is provided
as a reference implementation; tests cross-check the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..constraints.free import (FreeSubsumption, extend_to_useful,
                                maximal_free_subsumptions)
from ..constraints.ic import IntegrityConstraint
from ..constraints.residue import Residue
from ..datalog.atoms import Atom
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.unify import Substitution
from ..errors import ConstraintError
from .pattern import PatternGraph, build_pattern_graph
from .sdgraph import DEFAULT_MAX_HOPS, SDGraph, build_sd_graph
from .sequences import SequenceClause, enumerate_sequences, unfold


@dataclass(frozen=True)
class SequenceResidue:
    """A residue attached to the expansion sequence that produced it.

    This is the ``(s, R)`` notation of Section 3.  ``strictly_useful``
    records whether usefulness held under the letter of the definition
    (extension of theta on unbound IC variables only); a useful-but-not-
    strict residue relied on the loose clause-variable rebinding and must
    pass the chase guard before being pushed.
    """

    sequence: tuple[str, ...]
    residue: Residue
    clause: SequenceClause
    subsumption: FreeSubsumption
    useful: bool
    strictly_useful: bool = False

    def __str__(self) -> str:
        if self.strictly_useful:
            flag = "useful"
        elif self.useful:
            flag = "loosely useful"
        else:
            flag = "not useful"
        return (f"({' '.join(self.sequence)}; {self.residue}) "
                f"[{self.residue.kind}, {flag}]")


def clause_for_rule(rule: Rule) -> SequenceClause:
    """View a single rule as a length-1 expansion sequence clause."""
    from .sequences import ProvenancedLiteral

    body = tuple(ProvenancedLiteral(lit, 0, index)
                 for index, lit in enumerate(rule.body))
    recursive_tail = None
    for index, lit in enumerate(rule.body):
        if isinstance(lit, Atom) and lit.pred == rule.head.pred:
            recursive_tail = index
    return SequenceClause(
        pred=rule.head.pred,
        labels=(rule.label or "?",),
        head=rule.head,
        body=body,
        instances=(rule,),
        level_substitutions=(Substitution(),),
        recursive_tail=recursive_tail)


# ---------------------------------------------------------------------------
# Candidate detection (Steps 1-3): SD-graph walk
# ---------------------------------------------------------------------------

def candidate_sequences(sd: SDGraph, pattern: PatternGraph
                        ) -> Iterator[tuple[str, ...]]:
    """Candidate expansion sequences for one pattern orientation."""
    if pattern.length == 1:
        seen: set[tuple[str, ...]] = set()
        for node in sd.nodes_for(pattern.atoms[0].pred):
            sequence = (node[1],)
            if sequence not in seen:
                seen.add(sequence)
                yield sequence
        return

    def extend(node, step: int, sequence: tuple[str, ...]
               ) -> Iterator[tuple[str, ...]]:
        if step == pattern.length - 1:
            yield sequence
            return
        wanted_pred = pattern.atoms[step + 1].pred
        wanted_pairs = pattern.edge_pairs[step]
        for edge in sd.edges_from(node):
            if sd.ap.subgoals[edge.target].pred != wanted_pred:
                continue
            if not wanted_pairs <= edge.pairs:
                continue
            yield from extend(edge.target, step + 1,
                              sequence + edge.expansion)

    for start in sd.nodes_for(pattern.atoms[0].pred):
        yield from extend(start, 0, (start[1],))


def detect_sequences(program: Program, pred: str,
                     ic: IntegrityConstraint,
                     max_hops: int = DEFAULT_MAX_HOPS
                     ) -> list[tuple[str, ...]]:
    """Steps 1-3 of Algorithm 3.1: all candidate sequences, both
    orientations, deduplicated, shortest first."""
    sd = build_sd_graph(program, pred, max_hops=max_hops)
    pattern = build_pattern_graph(ic)
    candidates: list[tuple[str, ...]] = []
    seen: set[tuple[str, ...]] = set()
    for oriented in (pattern, pattern.reversed()):
        for sequence in candidate_sequences(sd, oriented):
            if sequence not in seen:
                seen.add(sequence)
                candidates.append(sequence)
    candidates.sort(key=len)
    return candidates


# ---------------------------------------------------------------------------
# Verification (Step 4) and residue extraction
# ---------------------------------------------------------------------------

def _matched_levels(clause: SequenceClause,
                    subsumption: FreeSubsumption) -> set[int]:
    """Levels of the clause touched by the subsumption's matched atoms."""
    levels: set[int] = set()
    ic_atoms = subsumption.residue.ic.database_atoms() \
        if subsumption.residue.ic is not None else ()
    theta = subsumption.subst
    for index in subsumption.matched:
        mapped = theta.apply(ic_atoms[index])
        for item in clause.body:
            if item.literal == mapped:
                levels.add(item.level)
                break
    return levels


def _spans_whole_sequence(clause: SequenceClause, levels: set[int]) -> bool:
    """True when the touched levels reach the first and last instance.

    This keeps only *minimal* sequences: a residue whose footprint fits
    in a sub-window belongs to the shorter sequence of that window.  The
    footprint includes the level of the useful residue head when it lands
    on a sequence atom.
    """
    needed = len(clause.labels)
    if needed == 1:
        return True
    return bool(levels) and min(levels) == 0 and max(levels) == needed - 1


def residues_for_sequence(program: Program, pred: str,
                          sequence: Sequence[str],
                          ic: IntegrityConstraint,
                          require_span: bool = True
                          ) -> list[SequenceResidue]:
    """Verify maximal free subsumption of ``ic`` against a sequence."""
    clause = unfold(program, pred, tuple(sequence))
    return _residues_for_clause(clause, ic, require_span)


def _residues_for_clause(clause: SequenceClause, ic: IntegrityConstraint,
                         require_span: bool) -> list[SequenceResidue]:
    literals = clause.literals()
    out: list[SequenceResidue] = []
    for subsumption in maximal_free_subsumptions(ic, literals):
        strict = True
        extended = extend_to_useful(subsumption.residue, literals,
                                    strict=True)
        if extended is None:
            strict = False
            extended = extend_to_useful(subsumption.residue, literals,
                                        strict=False)
        if extended is not None:
            residue, useful = extended, True
        else:
            residue, useful = subsumption.residue, False
            strict = False
        if residue.is_tautology:
            continue
        if require_span:
            levels = _matched_levels(clause, subsumption)
            head = residue.head_atom()
            if useful and head is not None:
                provenance = clause.provenance_of(head)
                if provenance is not None:
                    levels.add(provenance.level)
            if not _spans_whole_sequence(clause, levels):
                continue
        candidate = SequenceResidue(clause.labels, residue, clause,
                                    subsumption, useful,
                                    strictly_useful=useful and strict)
        if all(not _same_residue(candidate, existing) for existing in out):
            out.append(candidate)
    return out


def _same_residue(a: SequenceResidue, b: SequenceResidue) -> bool:
    return (a.sequence == b.sequence
            and a.residue.body == b.residue.body
            and a.residue.head == b.residue.head)


def introduction_eligible(item: SequenceResidue) -> bool:
    """Can this residue drive *atom introduction* (Section 4, (2))?

    The residue head must be an evaluable atom, or a database atom that
    shares at least one variable with the expansion sequence — the
    paper's criterion (ii).  Such residues are kept even when not useful
    in the elimination sense, because introduction is exactly for atoms
    that do *not* already occur (Example 4.2's ``doctoral(S)``).
    """
    residue = item.subsumption.residue
    if residue.head is None:
        return False
    head_vars = residue.head.variable_set()
    if not head_vars:
        return False
    clause_vars = item.clause.variables()
    return bool(head_vars & clause_vars)


# ---------------------------------------------------------------------------
# Algorithm 3.1, end to end
# ---------------------------------------------------------------------------

def _sequence_extensions(program: Program, pred: str,
                         sequence: tuple[str, ...], max_extend: int,
                         cap: int = 500) -> Iterator[tuple[str, ...]]:
    """Windows around ``sequence``: prefix/suffix rule strings.

    Prefixes use recursive rules only; suffixes may end with an exit
    rule.  Used by the usefulness-driven extension search: a residue head
    can land on an atom several recursion levels away from the atoms the
    IC's body matched (Example 4.1 needs ``r2 r2 r2 r2`` although the IC
    has a single database atom).
    """
    recursive = [r.label for r in program.recursive_rules(pred)]
    exits = [r.label for r in program.exit_rules(pred)]
    ends_with_exit = program.rule(sequence[-1]).count_occurrences(pred) == 0

    def strings(alphabet: list[str], length: int
                ) -> Iterator[tuple[str, ...]]:
        if length == 0:
            yield ()
            return
        for prefix in strings(alphabet, length - 1):
            for symbol in alphabet:
                yield prefix + (symbol,)

    produced = 0
    for pre_len in range(max_extend + 1):
        for post_len in range(max_extend + 1):
            if pre_len == 0 and post_len == 0:
                continue
            if post_len and ends_with_exit:
                continue
            for prefix in strings(recursive, pre_len):
                if post_len == 0:
                    yield prefix + sequence
                    produced += 1
                    if produced >= cap:
                        return
                    continue
                for body in strings(recursive, post_len - 1):
                    for last in recursive + exits:
                        yield prefix + sequence + body + (last,)
                        produced += 1
                        if produced >= cap:
                            return


def generate_residues(program: Program, pred: str,
                      ic: IntegrityConstraint,
                      max_hops: int = DEFAULT_MAX_HOPS,
                      useful_only: bool = True,
                      max_extend: int = 3) -> list[SequenceResidue]:
    """Algorithm 3.1: residues of ``ic`` w.r.t. the program for ``pred``.

    Candidates come from the SD-graph walk; each is verified by direct
    maximal free subsumption on its unfolding.  With ``useful_only`` the
    Section 3 usefulness filter is applied (the default, as the paper
    only pushes useful residues).  When a residue's database head does
    not land on a sequence atom, windows extending the sequence by up to
    ``max_extend`` levels on either side are searched for a placement
    that makes it useful — the detection the paper defers to its tech
    report [8].
    """
    if not ic.is_edb_only(program):
        raise ConstraintError(
            f"IC {ic.label or ic} mentions IDB predicates; the paper "
            "considers EDB-only constraints (assumption 4)")
    results: list[SequenceResidue] = []

    def note(item: SequenceResidue) -> None:
        if all(not _same_residue(item, other) for other in results):
            results.append(item)

    for sequence in detect_sequences(program, pred, ic, max_hops=max_hops):
        items = residues_for_sequence(program, pred, sequence, ic)
        needs_extension = any(
            not item.strictly_useful
            and item.residue.head_atom() is not None
            for item in items)
        for item in items:
            if useful_only and not (item.useful
                                    or introduction_eligible(item)):
                continue
            note(item)
        if needs_extension and max_extend > 0:
            for extended in _sequence_extensions(program, pred, sequence,
                                                 max_extend):
                for item in residues_for_sequence(program, pred, extended,
                                                  ic):
                    if item.strictly_useful:
                        note(item)
    return results


def generate_residues_exhaustive(program: Program, pred: str,
                                 ic: IntegrityConstraint,
                                 max_length: int | None = None,
                                 useful_only: bool = True
                                 ) -> list[SequenceResidue]:
    """Reference implementation: try every sequence up to ``max_length``.

    The default bound is ``k + 1`` with ``k`` the number of database
    atoms of the IC — a chain of ``k`` atoms cannot span more rule
    instances once minimality (the span filter) is imposed.
    """
    if max_length is None:
        max_length = len(ic.database_atoms()) + 1
    results: list[SequenceResidue] = []
    for sequence in enumerate_sequences(program, pred, max_length,
                                        include_exit=True):
        for item in residues_for_sequence(program, pred, sequence, ic):
            if useful_only and not (item.useful
                                    or introduction_eligible(item)):
                continue
            if all(not _same_residue(item, other) for other in results):
                results.append(item)
    return results


def rule_level_residues(program: Program, ic: IntegrityConstraint,
                        useful_only: bool = True) -> list[SequenceResidue]:
    """Free residues of ``ic`` against single rules (any predicate).

    This is what the evaluation-based approaches [3, 9] work with; it is
    also how non-recursive rules (like Example 4.2's ``r2``) acquire
    residues.
    """
    results: list[SequenceResidue] = []
    for rule in program:
        clause = clause_for_rule(rule)
        for item in _residues_for_clause(clause, ic, require_span=True):
            if useful_only and not (item.useful
                                    or introduction_eligible(item)):
                continue
            results.append(item)
    return results
