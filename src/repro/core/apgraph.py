"""The argument/predicate graph (AP-graph) of Definition 3.2.

Vertices:

- one vertex per EDB subgoal occurrence, identified by
  ``(rule_label, body_index)``;
- one vertex ``p_i`` per argument position ``i`` (1-based) of the
  recursive predicate *in rule bodies*;
- dummy-subgoal positions ``d_i`` linking subgoals that share a variable
  not shared with the recursive predicate.

Edges:

- undirected ``(a, p_k)`` labelled ``(None, j)`` when the j-th argument
  of subgoal ``a`` is the variable at position ``k`` of the recursive
  call in the same rule;
- directed ``(p_i, a)`` labelled ``(r, j)`` when subgoal ``a`` of rule
  ``r`` has the output variable ``X_i`` (the rule's i-th head variable)
  at position ``j``;
- directed ``(p_i, p_j)`` labelled ``(r, None)`` when rule ``r``'s output
  variable ``X_i`` sits at position ``j`` of the recursive call;
- undirected ``(a, d_m)``, ``(b, d_m)`` for same-rule sharing away from
  the recursive call.

The composition of one undirected hop with a chain of directed hops is
how a variable's journey across recursion levels is read off; the
SD-graph (:mod:`repro.core.sdgraph`) materializes those journeys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..datalog.atoms import Atom
from ..datalog.program import Program
from ..datalog.terms import Variable
from ..errors import ProgramError

#: Vertex encodings.
SubgoalNode = tuple[str, str, int]       # ("subgoal", rule_label, body_index)
PositionNode = tuple[str, int]           # ("pos", i)
DummyNode = tuple[str, int]              # ("dummy", m)


def subgoal_node(rule_label: str, body_index: int) -> SubgoalNode:
    return ("subgoal", rule_label, body_index)


def position_node(index: int) -> PositionNode:
    return ("pos", index)


@dataclass(frozen=True)
class UndirectedEdge:
    """``(subgoal, p_k)`` edge: subgoal arg ``arg_pos`` feeds position k."""

    subgoal: SubgoalNode
    position: int
    arg_pos: int  # 1-based position within the subgoal


@dataclass(frozen=True)
class DirectedEdge:
    """``(p_i, target)`` edge carrying the rule it crosses.

    ``target`` is a subgoal node (then ``arg_pos`` is set) or a position
    node (then ``arg_pos`` is None): the output variable ``X_i`` of
    ``rule`` appears at ``arg_pos`` of the subgoal / at position ``j`` of
    the recursive call.
    """

    position: int
    rule: str
    target: SubgoalNode | PositionNode
    arg_pos: int | None


@dataclass
class APGraph:
    """The AP-graph of a program w.r.t. its recursive predicate ``pred``."""

    pred: str
    arity: int
    subgoals: dict[SubgoalNode, Atom] = field(default_factory=dict)
    undirected: list[UndirectedEdge] = field(default_factory=list)
    directed: list[DirectedEdge] = field(default_factory=list)
    dummies: list[tuple[SubgoalNode, SubgoalNode, int, int]] = \
        field(default_factory=list)  # (a, b, arg_pos_a, arg_pos_b)

    def undirected_from(self, node: SubgoalNode) -> Iterator[UndirectedEdge]:
        for edge in self.undirected:
            if edge.subgoal == node:
                yield edge

    def directed_from(self, position: int) -> Iterator[DirectedEdge]:
        for edge in self.directed:
            if edge.position == position:
                yield edge


def build_ap_graph(program: Program, pred: str) -> APGraph:
    """Construct the AP-graph of ``program`` w.r.t. predicate ``pred``."""
    program.require_linear(pred)
    arity = program.predicate_arities().get(pred)
    if arity is None:
        raise ProgramError(f"unknown predicate {pred!r}")
    graph = APGraph(pred=pred, arity=arity)
    dummy_counter = 0

    for rule in program.rules_for(pred):
        rec_atom: Atom | None = None
        for _, occurrence in rule.occurrences_of(pred):
            rec_atom = occurrence
        edb_subgoals: list[tuple[SubgoalNode, Atom]] = []
        for body_index, literal in enumerate(rule.body):
            if not isinstance(literal, Atom) or literal.pred == pred:
                continue
            if not program.is_edb(literal.pred):
                continue
            node = subgoal_node(rule.label, body_index)
            graph.subgoals[node] = literal
            edb_subgoals.append((node, literal))

        rec_positions: dict[Variable, list[int]] = {}
        if rec_atom is not None:
            for k, arg in enumerate(rec_atom.args, start=1):
                if isinstance(arg, Variable):
                    rec_positions.setdefault(arg, []).append(k)

        # Undirected (a, p_k) edges.
        for node, atom in edb_subgoals:
            for j, arg in enumerate(atom.args, start=1):
                if isinstance(arg, Variable):
                    for k in rec_positions.get(arg, ()):
                        graph.undirected.append(
                            UndirectedEdge(node, k, j))

        # Directed (p_i, a) and (p_i, p_j) edges.
        for i, head_arg in enumerate(rule.head.args, start=1):
            if not isinstance(head_arg, Variable):
                continue
            for node, atom in edb_subgoals:
                for j, arg in enumerate(atom.args, start=1):
                    if arg == head_arg:
                        graph.directed.append(
                            DirectedEdge(i, rule.label, node, j))
            for j in rec_positions.get(head_arg, ()):
                graph.directed.append(
                    DirectedEdge(i, rule.label, position_node(j), None))

        # Dummy links for same-rule sharing away from the recursive call.
        for index_a in range(len(edb_subgoals)):
            node_a, atom_a = edb_subgoals[index_a]
            for index_b in range(index_a + 1, len(edb_subgoals)):
                node_b, atom_b = edb_subgoals[index_b]
                shared = (atom_a.variable_set() & atom_b.variable_set()) \
                    - set(rec_positions)
                for variable in shared:
                    pos_a = _position_of(atom_a, variable)
                    pos_b = _position_of(atom_b, variable)
                    graph.dummies.append((node_a, node_b, pos_a, pos_b))
                    dummy_counter += 1
    return graph


def _position_of(atom: Atom, variable: Variable) -> int:
    for index, arg in enumerate(atom.args, start=1):
        if arg == variable:
            return index
    raise ValueError(f"{variable} not in {atom}")  # pragma: no cover


def same_rule_shared_positions(atom_a: Atom, atom_b: Atom
                               ) -> frozenset[tuple[int, int]]:
    """All ``(pos_in_a, pos_in_b)`` pairs of shared variables."""
    pairs = set()
    for i, arg_a in enumerate(atom_a.args, start=1):
        if not isinstance(arg_a, Variable):
            continue
        for j, arg_b in enumerate(atom_b.args, start=1):
            if arg_a == arg_b:
                pairs.add((i, j))
    return frozenset(pairs)
