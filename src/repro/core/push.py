"""Pushing residues inside recursion (Section 4, stage 2).

Given an :class:`repro.core.isolate.Isolation` and a residue attached to
the isolated sequence, apply one of the three optimizations:

- **atom elimination** (fact residue whose head lands on a sequence
  atom): delete that atom from the corresponding alpha-rule; for a
  conditional residue ``E -> A``, split the rule into an ``E``-guarded
  copy without ``A`` and ``not E``-guarded copies with it;
- **atom introduction** (fact residue naming an evaluable atom or a
  small relation): add the implied atom to the alpha-rule it shares
  variables with, with the complementary ``not E`` copies;
- **subtree pruning** (null residue): guard the alpha-rule carrying the
  residue's variables with ``not E``; an unconditional null residue
  deletes the pattern-completing alpha-rule outright, followed by
  dead-rule cleanup.

``not E`` for a conjunction ``E1, ..., Em`` is realized as ``m`` rule
copies each carrying one complemented comparison (free residue bodies are
evaluable, so complements are comparisons again — no negation needed).

Unless ``guard="none"`` (paper-fidelity mode), every edit is first
validated with the chase-based containment test of
:mod:`repro.core.containment`; edits that cannot be proven
answer-preserving are skipped and reported rather than applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal as TypingLiteral

from ..datalog.analysis import is_safe
from ..datalog.atoms import Atom, Comparison
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..errors import TransformError
from .containment import chase, contained_under, freeze
from .isolate import Isolation
from .residues import SequenceResidue
from .sequences import ProvenancedLiteral

GuardMode = TypingLiteral["chase", "none"]


@dataclass(frozen=True)
class PushOutcome:
    """What happened to one residue push attempt."""

    action: str                      # eliminate | introduce | prune
    applied: bool
    reason: str = ""
    edited_rule: str | None = None   # label of the alpha-rule edited
    program: Program | None = field(default=None, repr=False)
    #: Auxiliary predicates the collapse pass must leave alone (used by
    #: the periodic depth-class compilation, whose classes are
    #: load-bearing).
    preserved_preds: frozenset[str] = frozenset()


def _complement_copies(rule: Rule, condition: tuple[Comparison, ...],
                       label_stem: str) -> list[Rule]:
    """The ``not E`` side of a conditional split (one copy per literal)."""
    copies = []
    for index, comparison in enumerate(condition):
        label = f"{label_stem}_n{index}" if len(condition) > 1 \
            else f"{label_stem}_n"
        copies.append(rule.add_literals(
            comparison.complement()).with_label(label))
    return copies


def _find_level_for_condition(isolation: Isolation,
                              condition: tuple[Comparison, ...],
                              prefer: int | None = None) -> int | None:
    """A level whose alpha-rule binds every condition variable.

    Prefers ``prefer`` when it qualifies (same-rule split is cheapest),
    otherwise the qualifying level nearest to it.
    """
    needed = set()
    for comparison in condition:
        needed.update(comparison.variable_set())
    qualifying = [
        level for level in range(len(isolation.alpha_labels))
        if needed <= isolation.alpha_rule(level).body_variables()]
    if not qualifying:
        return None
    if prefer is None:
        return qualifying[0]
    if prefer in qualifying:
        return prefer
    return min(qualifying, key=lambda level: abs(level - prefer))


def _chain_pred_name(isolation: Isolation, level: int) -> str:
    """The predicate defined by the alpha-rule at ``level``."""
    if level == 0:
        return isolation.pred
    return isolation.p_names[level - 1]


def _rename_head(rule: Rule, new_pred: str) -> Rule:
    return rule.with_head(Atom(new_pred, rule.head.args))


def _rename_call(rule: Rule, old_pred: str, new_pred: str) -> Rule:
    body = list(rule.body)
    for index, literal in enumerate(body):
        if isinstance(literal, Atom) and literal.pred == old_pred:
            body[index] = Atom(new_pred, literal.args)
            return rule.with_body(tuple(body))
    raise TransformError(  # pragma: no cover - callers know the call exists
        f"{rule.label} has no call to {old_pred}")


def _split_with_condition(isolation: Isolation, edit_level: int,
                          edited: Rule,
                          condition: tuple[Comparison, ...],
                          tag: str) -> tuple[Program | None, str]:
    """Install ``edited`` (built from the alpha-rule at ``edit_level``)
    guarded by ``condition``.

    When the condition's variables are bound in the same alpha-rule, this
    is the paper's split: the edited copy gets ``E``, the original gets
    the ``not E`` copies.  When the condition lives in a *different*
    alpha-rule, the guard decision is threaded through duplicated chain
    predicates so the decision taken deep in the pattern reaches the rule
    being edited (Example 4.1 needs this: the rank test sits three
    recursion levels below the eliminable atom).

    Returns ``(program, "")`` on success or ``(None, reason)``.
    """
    original = isolation.alpha_rule(edit_level)
    if not condition:
        if not is_safe(edited):
            return None, f"edit would make {original.label} unsafe"
        return isolation.program.replace_rule(original.label, edited), ""

    cond_level = _find_level_for_condition(isolation, condition,
                                           prefer=edit_level)
    if cond_level is None:
        return None, ("no single alpha-rule binds every residue-"
                      "condition variable")

    if cond_level == edit_level:
        optimized = edited.add_literals(*condition).with_label(
            f"{original.label}_{tag}")
        replacements = [optimized] + _complement_copies(
            original, condition, original.label)
        unsafe = [r.label for r in replacements if not is_safe(r)]
        if unsafe:
            return None, f"conditional split produces unsafe rules: {unsafe}"
        return isolation.program.replace_rule(
            original.label, *replacements), ""

    # Threaded split: duplicate the chain predicates between the two
    # levels so the condition's outcome selects which copy of the edited
    # rule consumes the sub-derivation.
    program = isolation.program
    existing = set(program.predicates)

    def dup_name(level: int) -> str:
        name = f"{_chain_pred_name(isolation, level)}_{tag}"
        while name in existing:
            name += "_"
        existing.add(name)
        return name

    dup_names: dict[int, str] = {}
    cond_rule = isolation.alpha_rule(cond_level)

    if cond_level > edit_level:
        # The condition is decided deeper; its verdict climbs up through
        # duplicated predicates pred_{edit_level+1} .. pred_{cond_level}.
        for level in range(edit_level + 1, cond_level + 1):
            dup_names[level] = dup_name(level)
        new_rules: list[tuple[str, list[Rule]]] = []
        # cond rule: E-copy feeds the duplicated chain, not-E copies the
        # normal one.
        sat_copy = _rename_head(
            cond_rule.add_literals(*condition), dup_names[cond_level]
            ).with_label(f"{cond_rule.label}_{tag}")
        new_rules.append((cond_rule.label,
                          [sat_copy] + _complement_copies(
                              cond_rule, condition, cond_rule.label)))
        # intermediate rules: duplicated head and call.
        for level in range(edit_level + 1, cond_level):
            rule = isolation.alpha_rule(level)
            copy = _rename_call(
                _rename_head(rule, dup_names[level]),
                _chain_pred_name(isolation, level + 1),
                dup_names[level + 1]).with_label(f"{rule.label}_{tag}")
            new_rules.append((rule.label, [rule, copy]))
        # edited rule consumes the duplicated chain.
        optimized = _rename_call(
            edited, _chain_pred_name(isolation, edit_level + 1),
            dup_names[edit_level + 1]).with_label(
                f"{original.label}_{tag}")
        new_rules.append((original.label, [original, optimized]))
    else:
        # The condition is decided shallower; the edited rule offers an
        # alternative chain that only the E-guarded copy consumes.
        for level in range(cond_level + 1, edit_level + 1):
            dup_names[level] = dup_name(level)
        new_rules = []
        optimized = _rename_head(edited, dup_names[edit_level]) \
            .with_label(f"{original.label}_{tag}")
        new_rules.append((original.label, [original, optimized]))
        for level in range(cond_level + 1, edit_level):
            rule = isolation.alpha_rule(level)
            copy = _rename_call(
                _rename_head(rule, dup_names[level]),
                _chain_pred_name(isolation, level + 1),
                dup_names[level + 1]).with_label(f"{rule.label}_{tag}")
            new_rules.append((rule.label, [rule, copy]))
        guarded = _rename_call(
            cond_rule.add_literals(*condition),
            _chain_pred_name(isolation, cond_level + 1),
            dup_names[cond_level + 1]).with_label(
                f"{cond_rule.label}_{tag}")
        new_rules.append((cond_rule.label,
                          [guarded] + _complement_copies(
                              cond_rule, condition, cond_rule.label)))

    all_new = [r for _, rules in new_rules for r in rules]
    unsafe = [r.label for r in all_new if not is_safe(r)]
    if unsafe:
        return None, f"threaded split produces unsafe rules: {unsafe}"
    for old_label, replacements in new_rules:
        program = program.replace_rule(old_label, *replacements)
    return program, ""


def _locate_atom(isolation: Isolation, atom: Atom
                 ) -> ProvenancedLiteral | None:
    """Find ``atom``'s provenance within the isolated clause."""
    return isolation.clause.provenance_of(atom)


def _residue_condition(residue) -> tuple[Comparison, ...]:
    condition = tuple(lit for lit in residue.body
                      if isinstance(lit, Comparison))
    if len(condition) != len(residue.body):
        raise TransformError(
            f"residue {residue} has database atoms in its body; only "
            "free residues can be pushed")
    return condition


# ---------------------------------------------------------------------------
# (1) Atom elimination
# ---------------------------------------------------------------------------

def apply_elimination(isolation: Isolation, item: SequenceResidue,
                      ics, guard: GuardMode = "chase") -> PushOutcome:
    """Delete the residue-implied atom from its alpha-rule."""
    residue = item.residue
    head = residue.head_atom()
    if head is None:
        return PushOutcome("eliminate", False,
                           "residue has no database-atom head")
    condition = _residue_condition(residue)
    provenance = _locate_atom(isolation, head)
    if provenance is None:
        return PushOutcome(
            "eliminate", False,
            f"residue head {head} does not occur in the sequence "
            "(not useful for elimination)")

    if guard == "chase":
        literals = isolation.clause.literals()
        index = literals.index(head)
        smaller = literals[:index] + literals[index + 1:]
        if not contained_under(isolation.clause.head, smaller, literals,
                               ics, assumptions=condition):
            return PushOutcome(
                "eliminate", False,
                f"chase guard could not prove deleting {head} is "
                "answer-preserving")

    rule = isolation.alpha_rule(provenance.level)
    body_index = _alpha_body_index(rule, provenance, head)
    if body_index is None:
        return PushOutcome("eliminate", False,
                           f"{head} not found in alpha-rule {rule.label}")

    edited = rule.remove_body_index(body_index).with_label(
        f"{rule.label}_e")
    program, reason = _split_with_condition(
        isolation, provenance.level, edited, condition, tag="e")
    if program is None:
        return PushOutcome("eliminate", False, reason)
    return PushOutcome("eliminate", True, edited_rule=rule.label,
                       program=program)


def _alpha_body_index(rule: Rule, provenance: ProvenancedLiteral,
                      atom: Atom) -> int | None:
    """Map clause provenance back to the alpha-rule body position."""
    if (0 <= provenance.body_index < len(rule.body)
            and rule.body[provenance.body_index] == atom):
        return provenance.body_index
    for index, literal in enumerate(rule.body):  # pragma: no cover
        if literal == atom:
            return index
    return None


# ---------------------------------------------------------------------------
# (2) Atom introduction
# ---------------------------------------------------------------------------

def apply_introduction(isolation: Isolation, item: SequenceResidue,
                       ics, guard: GuardMode = "chase") -> PushOutcome:
    """Add the residue-implied atom to the alpha-rule sharing its vars.

    Unbound residue-head variables (existential witnesses) would make the
    introduced atom a cartesian blow-up; they are kept — they bind
    themselves during the semijoin — but at least one variable must be
    shared with the sequence (the paper's criterion (ii))."""
    residue = item.subsumption.residue  # unextended: head vars faithful
    condition = _residue_condition(residue)
    head = residue.head
    if head is None:
        return PushOutcome("introduce", False, "null residues cannot "
                           "introduce atoms")
    if isinstance(head, Comparison):
        introduced: Atom | Comparison = head
        shared = head.variable_set()
    else:
        introduced = head
        shared = head.variable_set()

    level = None
    best_overlap = 0
    for candidate in range(len(isolation.alpha_labels)):
        rule = isolation.alpha_rule(candidate)
        overlap = len(shared & rule.body_variables())
        if overlap > best_overlap:
            best_overlap = overlap
            level = candidate
    if level is None:
        return PushOutcome(
            "introduce", False,
            "the residue head shares no variable with the sequence")

    if guard == "chase":
        literals = isolation.clause.literals()
        larger = literals + (introduced,)
        if not contained_under(isolation.clause.head, literals, larger,
                               ics, assumptions=condition):
            return PushOutcome(
                "introduce", False,
                f"chase guard could not prove adding {introduced} is "
                "answer-preserving")

    rule = isolation.alpha_rule(level)
    # Prepend the reducer: the paper reorders so "the selection is first
    # performed on the small relation and the bindings passed on".
    edited = rule.with_body((introduced,) + rule.body).with_label(
        f"{rule.label}_i")
    program, reason = _split_with_condition(
        isolation, level, edited, condition, tag="i")
    if program is None:
        return PushOutcome("introduce", False, reason)
    return PushOutcome("introduce", True, edited_rule=rule.label,
                       program=program)


# ---------------------------------------------------------------------------
# (3) Subtree pruning
# ---------------------------------------------------------------------------

def apply_pruning(isolation: Isolation, item: SequenceResidue,
                  ics, guard: GuardMode = "chase") -> PushOutcome:
    """Guard (or delete) the alpha-chain so pruned subtrees never fire."""
    residue = item.residue
    if residue.head is not None:
        return PushOutcome("prune", False,
                           "only null residues prune subtrees")
    condition = _residue_condition(residue)

    if guard == "chase":
        instance, supply = freeze(isolation.clause.literals(), condition)
        chase(instance, list(ics), supply)
        if not instance.inconsistent:
            return PushOutcome(
                "prune", False,
                "chase guard could not derive a contradiction from the "
                "sequence plus the residue condition")

    if not condition:
        # Unconditional: the pattern-completing alpha-rule goes away.
        label = isolation.alpha_labels[-1]
        edb = isolation.program.edb_predicates  # before deletion
        program = isolation.program.replace_rule(label)
        program = remove_dead_rules(program, edb)
        return PushOutcome("prune", True, edited_rule=label,
                           program=program)

    level = _find_level_for_condition(isolation, condition)
    if level is None:
        return PushOutcome(
            "prune", False,
            "no single alpha-rule binds every residue-condition variable")
    rule = isolation.alpha_rule(level)
    replacements = _complement_copies(rule, condition, rule.label)
    for replacement in replacements:
        if not is_safe(replacement):
            return PushOutcome(
                "prune", False,
                f"guarding {rule.label} with the complement of "
                f"{condition} would make it unsafe")
    program = isolation.program.replace_rule(rule.label, *replacements)
    return PushOutcome("prune", True, edited_rule=rule.label,
                       program=program)


# ---------------------------------------------------------------------------
# Cleanup
# ---------------------------------------------------------------------------

def remove_dead_rules(program: Program,
                      edb: frozenset[str] | None = None) -> Program:
    """Drop rules referencing IDB predicates that have no rules left.

    Applied after unconditional pruning deletes a rule: callers of the
    now-empty auxiliary predicate can never fire.  ``edb`` must be the
    *true* EDB set (a predicate whose rules were all deleted would
    otherwise be mistaken for an extensional relation); it defaults to
    the program's own classification, which only works when no rules
    were deleted yet.
    """
    if edb is None:
        edb = program.edb_predicates
    rules = list(program)
    while True:
        defined = {rule.head.pred for rule in rules}
        alive = []
        for rule in rules:
            dead = any(
                isinstance(lit, Atom) and lit.pred not in defined
                and lit.pred not in edb
                for lit in rule.body)
            if not dead:
                alive.append(rule)
        if len(alive) == len(rules):
            return Program(alive, edb_hint=tuple(edb))
        rules = alive
