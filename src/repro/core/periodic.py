"""Overlap-aware pushing for periodic sequences (a cost refinement).

When the expansion sequence is the same recursive rule repeated —
``s = r^k``, by far the common case — the pattern occurs at *every*
recursion level with at least ``k-1`` levels below, and those occurrences
overlap.  Algorithm 4.1's automaton matches a greedy non-overlapping
subset, so the pushed edit only fires every ``k`` levels while its chain
predicates shadow the whole relation, which usually costs more than the
edit saves (measured in experiment E1's ablation).

This module compiles the overlapping reading directly, for residues whose
edit and condition sit at pattern level 0 (the outermost instance —
where the usefulness extension normally lands them):

- depth classes ``d_0 .. d_{k-2}`` (exactly ``j`` recursive steps) and
  ``deep`` (at least ``k-1`` steps);
- the exit rules fill ``d_0``; an unedited copy of ``r`` links each class
  to the next; ``deep`` absorbs further steps;
- the *edited* copy of ``r`` extends ``deep`` — every such extension has
  the full pattern beneath it, so the residue licenses the edit at every
  level past the first ``k-1``;
- the answer predicate is the union of the classes.

Tuples reachable at several depths are stored in up to two classes (their
minimal class and ``deep``), the price of the overlap-aware form on dense
data; on trees and chains each tuple lives in exactly one class and every
level past warm-up runs the edited body.  Soundness rests on the same
chase guard as the automaton path and is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.analysis import is_safe
from ..datalog.atoms import Atom, Comparison
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..errors import TransformError
from .containment import chase, contained_under, freeze
from .push import (GuardMode, PushOutcome, _complement_copies,
                   _residue_condition)
from .residues import SequenceResidue


def periodic_shape(program: Program, pred: str,
                   sequence: tuple[str, ...]) -> str | None:
    """The repeated recursive rule label, or None when not ``r^k``."""
    if len(sequence) < 2:
        return None
    labels = set(sequence)
    if len(labels) != 1:
        return None
    label = sequence[0]
    if program.rule(label).count_occurrences(pred) != 1:
        return None
    return label


def periodic_applicable(program: Program, pred: str,
                        item: SequenceResidue) -> bool:
    """Can this residue be pushed with the depth-class compilation?

    Requires: a uniform all-recursive sequence, an edit target at pattern
    level 0, and a condition whose variables live in the level-0 instance
    (i.e. the rule's own variables, since unfolding leaves level 0
    unrenamed).
    """
    if periodic_shape(program, pred, item.sequence) is None:
        return False
    residue = item.residue
    try:
        condition = _residue_condition(residue)
    except TransformError:
        return False
    rule = program.rule(item.sequence[0])
    condition_vars = set()
    for comparison in condition:
        condition_vars.update(comparison.variable_set())
    if not condition_vars <= rule.variables():
        return False
    head = residue.head_atom()
    if head is not None:
        provenance = item.clause.provenance_of(head)
        if provenance is not None and provenance.level != 0:
            return False
        if provenance is None and residue.head is not None:
            # Introduction: the atom must attach to level-0 variables.
            head_vars = item.subsumption.residue.head.variable_set() \
                if item.subsumption.residue.head is not None else set()
            if not head_vars & rule.variables():
                return False
    return True


def _aux_name(program: Program, pred: str, stem: str) -> str:
    name = f"{pred}__{stem}"
    existing = set(program.predicates)
    while name in existing:
        name += "_"
    return name


# ---------------------------------------------------------------------------
# Multi-residue compilation: several ICs over the same recursive rule
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Edit:
    """One residue's contribution to the depth-class program.

    ``threshold`` is the minimum number of recursive steps the *child*
    tuple must have for the pattern to sit beneath the extension
    (``k - 1`` for a ``r^k`` residue).
    """

    action: str                       # eliminate | introduce | prune
    threshold: int
    condition: tuple[Comparison, ...]
    body_index: int | None = None     # eliminate: atom position in r
    introduced: object = None         # introduce: the atom to prepend


def _apply_edit_unconditional(rule: Rule, edit: _Edit) -> Rule | None:
    if edit.action == "eliminate":
        return rule.remove_body_index(edit.body_index)
    if edit.action == "introduce":
        return rule.with_body((edit.introduced,) + rule.body)
    return None  # unconditional prune: the rule vanishes


def _split_on_edit(copies: list[Rule], edit: _Edit,
                   stem: str) -> list[Rule]:
    """Apply one conditional edit to every copy (case split on E)."""
    out: list[Rule] = []
    for index, copy in enumerate(copies):
        suffix = f"{stem}{index}" if len(copies) > 1 else stem
        if edit.action != "prune":
            edited = _apply_edit_unconditional(copy, edit)
            assert edited is not None
            out.append(edited.add_literals(*edit.condition).with_label(
                f"{copy.label}_{suffix}"))
        out.extend(_complement_copies(copy, edit.condition,
                                      f"{copy.label}_{suffix}"))
    return out


def push_periodic_group(program: Program, pred: str,
                        items: "list[SequenceResidue]",
                        actions: list[str],
                        ics, guard: GuardMode = "chase"
                        ) -> PushOutcome:
    """Compile several periodic residues over one recursive rule.

    The depth classes are sized to the *largest* residue; each residue's
    edit applies to every extension step whose child depth reaches that
    residue's threshold.  All residues must pass their individual chase
    guards (failing ones abort — callers can retry them individually).
    """
    labels = {periodic_shape(program, pred, item.sequence)
              for item in items}
    if len(labels) != 1 or None in labels:
        return PushOutcome("group", False,
                           "residues span different recursive rules")
    (label,) = labels
    recursive_rule = program.rule(label)
    if [r for r in program.recursive_rules(pred) if r.label != label]:
        return PushOutcome(
            "group", False,
            "periodic compilation needs a single recursive rule")

    # Validate each residue and build its edit.
    edits: list[_Edit] = []
    for item, action in zip(items, actions):
        outcome = _validate_for_group(program, pred, item, action, ics,
                                      guard)
        if isinstance(outcome, PushOutcome):
            return outcome
        edits.append(outcome)

    big_k = max(len(item.sequence) for item in items)
    class_names = [_aux_name(program, pred, f"d{j}")
                   for j in range(big_k - 1)]
    deep_name = _aux_name(program, pred, "deep")

    def class_name(j: int) -> str:
        return class_names[j] if j < big_k - 1 else deep_name

    def rename_call(rule: Rule, target: str) -> Rule:
        body = list(rule.body)
        for index, literal in enumerate(body):
            if isinstance(literal, Atom) and literal.pred == pred:
                body[index] = Atom(target, literal.args)
                return rule.with_body(tuple(body))
        raise TransformError(f"{rule.label} has no recursive call")

    new_rules: list[Rule] = []
    for exit_rule in program.exit_rules(pred):
        new_rules.append(Rule(Atom(class_names[0], exit_rule.head.args),
                              exit_rule.body,
                              label=f"{exit_rule.label}_d0"))

    # Extension steps: child class j -> class j+1 (saturating at deep),
    # plus the deep self-extension.
    steps = [(j, min(j + 1, big_k - 1)) for j in range(big_k - 1)]
    steps.append((big_k - 1, big_k - 1))
    for child, target in steps:
        child_tag = "deep" if child == big_k - 1 else f"d{child}"
        applicable = [e for e in edits if e.threshold <= child]
        base = rename_call(recursive_rule, class_name(child))
        base = Rule(Atom(class_name(target), base.head.args), base.body,
                    label=f"{label}_{child_tag}_step")
        unconditional = [e for e in applicable if not e.condition]
        conditional = [e for e in applicable if e.condition]
        vanished = False
        for edit in unconditional:
            edited = _apply_edit_unconditional(base, edit)
            if edited is None:
                vanished = True
                break
            base = edited.with_label(base.label)
        if vanished:
            continue  # unconditional prune: this step produces nothing
        copies = [base]
        for index, edit in enumerate(conditional):
            copies = _split_on_edit(copies, edit, f"c{index}")
        new_rules.extend(copies)

    head_args = recursive_rule.head.args
    for j in range(big_k - 1):
        new_rules.append(Rule(Atom(pred, head_args),
                              (Atom(class_names[j], head_args),),
                              label=f"{pred}_from_d{j}"))
    new_rules.append(Rule(Atom(pred, head_args),
                          (Atom(deep_name, head_args),),
                          label=f"{pred}_from_deep"))

    unsafe = [r.label for r in new_rules if not is_safe(r)]
    if unsafe:
        return PushOutcome("group", False,
                           f"group compilation produced unsafe rules: "
                           f"{unsafe}")
    untouched = [r for r in program if r.head.pred != pred]
    transformed = Program(untouched + new_rules,
                          edb_hint=tuple(program.edb_predicates))
    preserved = frozenset(class_names) | {deep_name}
    return PushOutcome("group", True, edited_rule=label,
                       program=transformed, preserved_preds=preserved)


def push_periodic_group_best_effort(
        program: Program, pred: str, items: "list[SequenceResidue]",
        actions: list[str], ics, guard: GuardMode = "chase"
) -> tuple[PushOutcome, list[PushOutcome]]:
    """Validate each residue individually, compile the survivors.

    Returns the group outcome plus one outcome per input residue (failed
    guards are reported individually instead of aborting the group).
    """
    per_item: list[PushOutcome] = []
    survivors: list = []
    survivor_actions: list[str] = []
    for item, action in zip(items, actions):
        validated = _validate_for_group(program, pred, item, action, ics,
                                        guard)
        if isinstance(validated, PushOutcome):
            per_item.append(validated)
        else:
            per_item.append(PushOutcome(action, True))
            survivors.append(item)
            survivor_actions.append(action)
    if not survivors:
        return (PushOutcome("group", False,
                            "no residue survived its guard"), per_item)
    # Guards already ran; compile without re-checking.
    outcome = push_periodic_group(program, pred, survivors,
                                  survivor_actions, ics, guard="none")
    if not outcome.applied:
        per_item = [
            PushOutcome(entry.action, False, outcome.reason)
            if entry.applied else entry for entry in per_item]
    return outcome, per_item


def _validate_for_group(program: Program, pred: str, item, action: str,
                        ics, guard: GuardMode):
    """Run the per-residue guard and build its :class:`_Edit`."""
    residue = item.residue
    threshold = len(item.sequence) - 1
    if action == "prune":
        condition = _residue_condition(residue)
        if guard == "chase":
            instance, supply = freeze(item.clause.literals(), condition)
            chase(instance, list(ics), supply)
            if not instance.inconsistent:
                return PushOutcome(
                    "prune", False,
                    "chase guard could not derive a contradiction for "
                    f"{residue}")
        return _Edit("prune", threshold, condition)
    if action == "eliminate":
        head = residue.head_atom()
        condition = _residue_condition(residue)
        provenance = item.clause.provenance_of(head) if head else None
        if provenance is None or provenance.level != 0:
            return PushOutcome("eliminate", False,
                               "edit target is not at pattern level 0")
        if guard == "chase":
            literals = item.clause.literals()
            index = literals.index(head)
            smaller = literals[:index] + literals[index + 1:]
            if not contained_under(item.clause.head, smaller, literals,
                                   ics, assumptions=condition):
                return PushOutcome(
                    "eliminate", False,
                    f"chase guard rejected deleting {head}")
        return _Edit("eliminate", threshold, condition,
                     body_index=provenance.body_index)
    if action == "introduce":
        unextended = item.subsumption.residue
        condition = _residue_condition(unextended)
        head = unextended.head
        if head is None:
            return PushOutcome("introduce", False, "no head to introduce")
        if guard == "chase":
            literals = item.clause.literals()
            if not contained_under(item.clause.head, literals,
                                   literals + (head,), ics,
                                   assumptions=condition):
                return PushOutcome(
                    "introduce", False,
                    f"chase guard rejected adding {head}")
        return _Edit("introduce", threshold, condition, introduced=head)
    return PushOutcome(action, False, f"unsupported action {action!r}")


# ---------------------------------------------------------------------------
# Guarded entry points mirroring repro.core.push.apply_*
# ---------------------------------------------------------------------------

def _single(program: Program, pred: str, item: SequenceResidue,
            action: str, ics, guard: GuardMode) -> PushOutcome:
    """Push one residue via the (general) group compiler."""
    validated = _validate_for_group(program, pred, item, action, ics,
                                    guard)
    if isinstance(validated, PushOutcome):
        return validated
    outcome = push_periodic_group(program, pred, [item], [action], ics,
                                  guard="none")
    if outcome.applied:
        return PushOutcome(action, True, edited_rule=outcome.edited_rule,
                           program=outcome.program,
                           preserved_preds=outcome.preserved_preds)
    return PushOutcome(action, False, outcome.reason)


def periodic_eliminate(program: Program, pred: str,
                       item: SequenceResidue, ics,
                       guard: GuardMode = "chase") -> PushOutcome:
    """Depth-class atom elimination (edit at pattern level 0)."""
    return _single(program, pred, item, "eliminate", ics, guard)


def periodic_prune(program: Program, pred: str, item: SequenceResidue,
                   ics, guard: GuardMode = "chase") -> PushOutcome:
    """Depth-class subtree pruning (condition at pattern level 0)."""
    return _single(program, pred, item, "prune", ics, guard)


def periodic_introduce(program: Program, pred: str,
                       item: SequenceResidue, ics,
                       guard: GuardMode = "chase") -> PushOutcome:
    """Depth-class atom introduction (attachment at pattern level 0)."""
    return _single(program, pred, item, "introduce", ics, guard)
