"""Conjunctive-query containment under integrity constraints (chase).

Atom elimination (Section 4, optimization 1) deletes an atom ``B`` from a
sequence clause ``C``.  That is only sound when ``C`` and ``C - B`` are
equivalent *as queries* on every database satisfying the ICs.  One
direction is trivial (``C`` has more conjuncts).  The other —
``C - B  subseteq_IC  C`` — is the classical chase test:

1. freeze the variables of ``C - B`` into a canonical instance ``D``
   (variables act as labeled nulls);
2. chase ``D`` with the ICs (firing an IC whose evaluable premises are
   entailed by the asserted conditions adds its head, inventing fresh
   nulls for existential head variables);
3. succeed iff ``C`` has a homomorphism into the chased instance that is
   the identity on the head variables.

The paper applies eliminations directly from useful residues; we use this
check as a soundness guard (it accepts all the paper's examples) unless
the optimizer is run in ``paper`` fidelity mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from ..datalog.atoms import Atom, Comparison, Literal
from ..datalog.terms import Constant, FreshVariableSupply, Term, Variable
from ..datalog.unify import (EMPTY_SUBSTITUTION, Substitution, match,
                             match_terms)
from ..engine import builtins
from ..constraints.ic import IntegrityConstraint
from ..constraints.subsumption import match_literal, rename_ic_apart


@dataclass
class ChaseInstance:
    """A canonical instance: ground-ish atoms plus assumed comparisons.

    Terms are ordinary AST terms; variables play the role of labeled
    nulls.  ``assumptions`` are comparisons taken as true (the clause's
    own evaluable literals plus any asserted residue condition).
    """

    atoms: list[Atom] = field(default_factory=list)
    assumptions: list[Comparison] = field(default_factory=list)
    inconsistent: bool = False
    #: Variables EGD merging should keep as representatives (typically
    #: the head variables of a containment check).
    protected: frozenset = frozenset()

    def has_atom(self, atom: Atom) -> bool:
        return atom in self.atoms

    def add_atom(self, atom: Atom) -> bool:
        if atom in self.atoms:
            return False
        self.atoms.append(atom)
        return True

    def add_assumption(self, comparison: Comparison) -> bool:
        if comparison in self.assumptions:
            return False
        self.assumptions.append(comparison)
        return True


def _equality_classes(assumptions: Sequence[Comparison]
                      ) -> dict[Term, Term]:
    """Union-find representatives induced by ``=`` assumptions."""
    parent: dict[Term, Term] = {}

    def find(term: Term) -> Term:
        while term in parent:
            term = parent[term]
        return term

    for comparison in assumptions:
        if comparison.op != "=":
            continue
        left, right = find(comparison.lhs), find(comparison.rhs)
        if left == right:
            continue
        # Prefer constants as representatives.
        if isinstance(left, Constant):
            parent[right] = left
        else:
            parent[left] = right
    return {term: find(term) for term in parent}


def entails(assumptions: Sequence[Comparison],
            comparison: Comparison) -> bool:
    """Decide whether the assumption set entails ``comparison``.

    Deliberately incomplete but sound: ground evaluation, syntactic match
    modulo converse orientation, and rewriting through ``=`` assumptions.
    """
    classes = _equality_classes(assumptions)

    def canon(term: Term) -> Term:
        return classes.get(term, term)

    goal = Comparison(comparison.op, canon(comparison.lhs),
                      canon(comparison.rhs))
    # Ground decision.
    if isinstance(goal.lhs, Constant) and isinstance(goal.rhs, Constant):
        try:
            return builtins.holds(goal, {})
        except Exception:  # incomparable types: fall through
            return False
    if goal.op == "=" and goal.lhs == goal.rhs:
        return True
    for assumed in assumptions:
        canonical = Comparison(assumed.op, canon(assumed.lhs),
                               canon(assumed.rhs))
        if canonical == goal or canonical.converse() == goal:
            return True
    return False


def _homomorphisms(pattern: Sequence[Literal], instance: ChaseInstance,
                   seed: Substitution) -> Iterator[Substitution]:
    """Homomorphisms of a conjunction into a chase instance.

    Database atoms map onto instance atoms; evaluable literals must be
    entailed by the instance's assumptions under the mapping.
    """
    atoms = [lit for lit in pattern if isinstance(lit, Atom)]
    comparisons = [lit for lit in pattern if isinstance(lit, Comparison)]

    def assign(index: int, current: Substitution) -> Iterator[Substitution]:
        if index == len(atoms):
            for comparison in comparisons:
                mapped = current.apply_literal(comparison)
                if not entails(instance.assumptions, mapped):
                    return
            yield current
            return
        for candidate in instance.atoms:
            extended = match(atoms[index], candidate, current)
            if extended is not None:
                yield from assign(index + 1, extended)

    yield from assign(0, seed)


def _apply_egd(instance: ChaseInstance, equality: Comparison) -> str:
    """Apply one EGD step: unify the equality's two sides.

    Returns ``"noop"`` when the sides are already equal, ``"merged"``
    after substituting one side for the other throughout the instance,
    and ``"inconsistent"`` when two distinct constants are equated.
    """
    left, right = equality.lhs, equality.rhs
    if left == right:
        return "noop"
    if isinstance(left, Constant) and isinstance(right, Constant):
        return "inconsistent"
    # Substitute a variable (null) by the other term; prefer replacing
    # a variable with a constant, and keep protected (head) variables
    # as representatives.
    left_ok = isinstance(left, Variable) and left not in instance.protected
    right_ok = isinstance(right, Variable) and \
        right not in instance.protected
    if left_ok and (not right_ok or not isinstance(right, Variable)):
        victim, replacement = left, right
    elif right_ok:
        victim, replacement = right, left
    elif isinstance(left, Variable):
        victim, replacement = left, right
    elif isinstance(right, Variable):
        victim, replacement = right, left
    else:  # arithmetic terms: record as an assumption instead
        instance.add_assumption(equality)
        return "merged"
    subst = Substitution({victim: replacement})
    instance.atoms[:] = list(dict.fromkeys(
        subst.apply(atom) for atom in instance.atoms))
    instance.assumptions[:] = list(dict.fromkeys(
        subst.apply_literal(comparison)
        for comparison in instance.assumptions))
    return "merged"


def _head_satisfied(mapped: Atom, existential: frozenset[Variable],
                    existing: Atom) -> bool:
    """Does ``existing`` witness the mapped head atom?

    Non-existential positions must agree exactly (they hold instance
    terms); existential variables bind consistently.
    """
    if mapped.pred != existing.pred or mapped.arity != existing.arity:
        return False
    witness: dict[Variable, Term] = {}
    for pattern_arg, target_arg in zip(mapped.args, existing.args):
        if isinstance(pattern_arg, Variable) and pattern_arg in existential:
            if witness.setdefault(pattern_arg, target_arg) != target_arg:
                return False
        elif pattern_arg != target_arg:
            return False
    return True


def chase(instance: ChaseInstance, ics: Sequence[IntegrityConstraint],
          supply: FreshVariableSupply, max_rounds: int = 25) -> ChaseInstance:
    """Run the (restricted) chase in place and return the instance.

    An IC fires when its database atoms embed into the instance and its
    evaluable premises are entailed.  Denials mark the instance
    inconsistent.  Atom heads are only added when no existing atom already
    satisfies them (restricted chase), with fresh variables standing in
    for existential head variables; the round bound guards against
    non-terminating dependency sets.
    """
    for _ in range(max_rounds):
        changed = False
        for ic in ics:
            renamed = rename_ic_apart(
                ic, tuple(instance.atoms) + tuple(instance.assumptions))
            # Materialize before firing: firing mutates the instance.
            matches = list(_homomorphisms(renamed.body, instance,
                                          EMPTY_SUBSTITUTION))
            for theta in matches:
                head = renamed.head
                if head is None:
                    instance.inconsistent = True
                    return instance
                mapped = theta.apply_literal(head)
                if isinstance(mapped, Comparison):
                    if mapped.op == "=":
                        # Equality-generating dependency: merge the two
                        # terms in the instance (the standard chase EGD
                        # step); clashing constants are a contradiction.
                        outcome = _apply_egd(instance, mapped)
                        if outcome == "inconsistent":
                            instance.inconsistent = True
                            return instance
                        changed |= outcome == "merged"
                        continue
                    if not entails(instance.assumptions, mapped):
                        changed |= instance.add_assumption(mapped)
                    continue
                assert isinstance(mapped, Atom)
                existential = frozenset(
                    v for v in head.variable_set() if v not in theta)
                # Restricted chase: satisfied when some atom agrees with
                # the mapped head exactly, with only the *existential*
                # head variables acting as wildcards.
                satisfied = any(
                    _head_satisfied(mapped, existential, existing)
                    for existing in instance.atoms)
                if satisfied:
                    continue
                grounding = Substitution({
                    v: supply.fresh(v.name) for v in existential})
                changed |= instance.add_atom(grounding.apply(mapped))
        if not changed:
            break
    return instance


def freeze(literals: Sequence[Literal],
           extra_assumptions: Iterable[Comparison] = ()
           ) -> tuple[ChaseInstance, FreshVariableSupply]:
    """Build the canonical instance of a clause body."""
    instance = ChaseInstance()
    names: set[str] = set()
    for lit in literals:
        names.update(v.name for v in lit.variables())
        if isinstance(lit, Atom):
            instance.add_atom(lit)
        elif isinstance(lit, Comparison):
            instance.add_assumption(lit)
    for comparison in extra_assumptions:
        names.update(v.name for v in comparison.variables())
        instance.add_assumption(comparison)
    supply = FreshVariableSupply(names, prefix="N")
    return instance, supply


def contained_under(head: Atom, smaller_body: Sequence[Literal],
                    larger_body: Sequence[Literal],
                    ics: Sequence[IntegrityConstraint],
                    assumptions: Iterable[Comparison] = (),
                    max_rounds: int = 25) -> bool:
    """Is every answer of ``(head :- smaller_body)`` also an answer of
    ``(head :- larger_body)`` on IC-satisfying databases (given the
    asserted ``assumptions``)?

    Both bodies must share the same variable space and the same head.
    This is the guard for atom elimination with ``smaller_body`` the
    clause minus the candidate atom and ``larger_body`` the full clause.
    """
    instance, supply = freeze(smaller_body, assumptions)
    instance.protected = frozenset(
        arg for arg in head.args if isinstance(arg, Variable))
    chase(instance, ics, supply, max_rounds=max_rounds)
    if instance.inconsistent:
        return True  # the smaller query is empty under the ICs
    seed: Optional[Substitution] = EMPTY_SUBSTITUTION
    for arg in head.args:
        if isinstance(arg, Variable):
            seed = match_terms(arg, arg, seed)  # identity on head vars
            if seed is None:  # pragma: no cover - identity always matches
                return False
    return next(_homomorphisms(larger_body, instance, seed),
                None) is not None


def elimination_is_sound(head: Atom, body: Sequence[Literal],
                         atom_index: int,
                         ics: Sequence[IntegrityConstraint],
                         assumptions: Iterable[Comparison] = ()) -> bool:
    """Can ``body[atom_index]`` be deleted without changing answers?

    ``assumptions`` carries the residue condition ``E`` for conditional
    eliminations (the optimized rule copy is guarded by ``E``).
    """
    body = tuple(body)
    if not isinstance(body[atom_index], Atom):
        return False
    smaller = body[:atom_index] + body[atom_index + 1:]
    return contained_under(head, smaller, body, ics,
                           assumptions=assumptions)
