"""Algorithm 4.1: isolating an expansion sequence.

Given a linear program ``P`` for predicate ``p`` and an expansion
sequence ``s = <r_j1, ..., r_jk>``, produce an equivalent program that
generates occurrences of ``s`` through a dedicated chain of rules, so the
push transformations of Section 4 can edit exactly those occurrences.

The construction is a pattern-matching automaton over rule strings:

- auxiliary predicates ``p_1 .. p_{k-1}`` and ``q_1 .. q_{k-1}`` with
  ``p_0 = q_0 = p_k = q_k = p``;
- **alpha-rules** (one per position ``i``): ``p_{i-1} :- body(r_ji)``
  with the recursive call renamed to ``p_i`` — the match advances;
- **beta-rules** (positions ``1 .. k-1``): same body but the call renamed
  to ``q_i`` — the match will break at the *next* position;
- **gamma-rules** for ``q_{i-1}``: a copy of every rule ``r_l`` with
  ``l != j_i`` (recursive calls keep pointing at ``p``) — the breaking
  rule fires and matching restarts.

Step 5's head unifications are realized by building the alpha/beta rules
directly from the *unfolding*'s rule instances
(:func:`repro.core.sequences.unfold`), whose variable spaces are already
chained head-to-call; gamma-rule heads are unified with the corresponding
alpha-rule heads.  Theorem 4.1 (equivalence) is validated empirically by
:mod:`repro.core.equivalence` and the property-test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..datalog.atoms import Atom
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import FreshVariableSupply
from ..datalog.unify import Substitution, unify
from ..errors import TransformError
from .sequences import SequenceClause, unfold


@dataclass(frozen=True)
class Isolation:
    """The output of Algorithm 4.1.

    Attributes:
        program: the transformed, equivalent program.
        pred: the recursive predicate.
        sequence: the isolated sequence's rule labels.
        clause: the unfolding the alpha-rules were aligned with.
        alpha_labels: labels of the alpha-rules; ``alpha_labels[i]`` is
            the rule built from sequence position ``i`` (0-based level),
            i.e. the paper's ``(i+1)``-th alpha-rule.
        p_names: auxiliary predicate names ``p_1..p_{k-1}``.
        q_names: auxiliary predicate names ``q_1..q_{k-1}``.
    """

    program: Program
    pred: str
    sequence: tuple[str, ...]
    clause: SequenceClause
    alpha_labels: tuple[str, ...]
    p_names: tuple[str, ...]
    q_names: tuple[str, ...]

    def alpha_rule(self, level: int) -> Rule:
        """The alpha-rule built from sequence position ``level``."""
        return self.program.rule(self.alpha_labels[level])


def _aux_names(program: Program, pred: str, kind: str,
               count: int) -> list[str]:
    existing = set(program.predicates)
    names = []
    for index in range(1, count + 1):
        name = f"{pred}__{kind}{index}"
        while name in existing:
            name += "_"
        existing.add(name)
        names.append(name)
    return names


def _rename_recursive_call(rule: Rule, pred: str, new_pred: str) -> Rule:
    """Rename the (single) occurrence of ``pred`` in the body."""
    body = list(rule.body)
    for index, literal in enumerate(body):
        if isinstance(literal, Atom) and literal.pred == pred:
            body[index] = Atom(new_pred, literal.args)
            return rule.with_body(tuple(body))
    return rule


def isolate(program: Program, pred: str,
            sequence: Sequence[str]) -> Isolation:
    """Apply Algorithm 4.1 and return the transformed program.

    With a length-1 sequence the transformation is the identity (the
    "alpha-rule" is the original rule), which is exactly the rule-level
    optimization setting of Chakravarthy et al.
    """
    sequence = tuple(sequence)
    if not sequence:
        raise TransformError("cannot isolate an empty sequence")
    program.require_linear(pred)
    clause = unfold(program, pred, sequence)
    k = len(sequence)

    if k == 1:
        return Isolation(program, pred, sequence, clause,
                         alpha_labels=(sequence[0],),
                         p_names=(), q_names=())

    p_names = _aux_names(program, pred, "p", k - 1)
    q_names = _aux_names(program, pred, "q", k - 1)

    def p_name(index: int) -> str:
        """``p_index`` with the paper's convention p_0 = p_k = p."""
        if index in (0, k):
            return pred
        return p_names[index - 1]

    def q_name(index: int) -> str:
        if index in (0, k):
            return pred
        return q_names[index - 1]

    supply = FreshVariableSupply(
        {v.name for rule in program for v in rule.variables()}
        | {v.name for v in clause.variables()})

    alpha_rules: list[Rule] = []
    beta_rules: list[Rule] = []
    gamma_rules: list[Rule] = []
    alpha_labels: list[str] = []

    for level, instance in enumerate(clause.instances):
        i = level + 1  # the paper's 1-based rule position
        head = Atom(p_name(i - 1), instance.head.args)
        alpha = _rename_recursive_call(
            Rule(head, instance.body, label=f"{pred}__alpha{i}"),
            pred, p_name(i))
        alpha_rules.append(alpha)
        alpha_labels.append(alpha.label)

        if i <= k - 1:
            # beta-rule: identical body, the call diverts to q_i.
            beta = _rename_recursive_call(
                Rule(head, instance.body, label=f"{pred}__beta{i}"),
                pred, q_name(i))
            if beta.body != alpha.body:  # exit rules yield no distinct beta
                beta_rules.append(beta)

        # gamma-rules for q_{i-1}: every rule other than r_ji, with the
        # head unified with the alpha-rule's head (step 5).  For i = 1,
        # q_0 = p and the heads are the original ones, so the original
        # rules are kept verbatim.
        for other in program.rules_for(pred):
            if other.label == sequence[i - 1]:
                continue
            if i == 1:
                gamma_rules.append(other)
                continue
            renamed_map = {v: supply.fresh(v.name) for v in sorted(
                other.variables(), key=lambda v: v.name)}
            renamed = other.apply(Substitution(renamed_map))
            target_head = Atom(q_name(i - 1), head.args)
            unifier = unify(Atom(q_name(i - 1), renamed.head.args),
                            target_head)
            if unifier is None:
                # Heads that cannot take this argument pattern can never
                # be called here; omit the rule.
                continue
            gamma = renamed.apply(unifier).with_head(
                unifier.apply(target_head)).with_label(
                    f"{pred}__gamma{i}_{other.label}")
            gamma_rules.append(gamma)

    untouched = [rule for rule in program if rule.head.pred != pred]
    transformed = Program(
        untouched + alpha_rules + beta_rules + gamma_rules,
        edb_hint=tuple(program.edb_predicates))
    return Isolation(transformed, pred, sequence, clause,
                     tuple(alpha_labels), tuple(p_names), tuple(q_names))
