"""The paper's contribution: residue generation and pushing (Sections 3-4)."""

from .sequences import (ProvenancedLiteral, SequenceClause,
                        enumerate_sequences, unfold)
from .apgraph import APGraph, build_ap_graph
from .sdgraph import SDEdge, SDGraph, build_sd_graph
from .pattern import PatternGraph, build_pattern_graph
from .residues import (SequenceResidue, clause_for_rule, detect_sequences,
                       generate_residues, generate_residues_exhaustive,
                       residues_for_sequence, rule_level_residues)
from .containment import (ChaseInstance, chase, contained_under,
                          elimination_is_sound, entails, freeze)
from .isolate import Isolation, isolate
from .push import (PushOutcome, apply_elimination, apply_introduction,
                   apply_pruning, remove_dead_rules)
from .minimize import (MinimizationReport, apply_functional_dependencies,
                       as_functional_dependency, minimize_program,
                       minimize_rule, rule_subsumed_by)
from .optimizer import (OptimizationReport, OptimizationStep,
                        SemanticOptimizer, optimize,
                        optimize_all_predicates)
from .equivalence import (Counterexample, check_equivalent,
                          infer_numeric_columns, make_consistent,
                          random_consistent_databases, random_database)

__all__ = [
    "ProvenancedLiteral", "SequenceClause", "enumerate_sequences", "unfold",
    "APGraph", "build_ap_graph",
    "SDEdge", "SDGraph", "build_sd_graph",
    "PatternGraph", "build_pattern_graph",
    "SequenceResidue", "clause_for_rule", "detect_sequences",
    "generate_residues", "generate_residues_exhaustive",
    "residues_for_sequence", "rule_level_residues",
    "ChaseInstance", "chase", "contained_under", "elimination_is_sound",
    "entails", "freeze",
    "Isolation", "isolate",
    "PushOutcome", "apply_elimination", "apply_introduction",
    "apply_pruning", "remove_dead_rules",
    "MinimizationReport", "apply_functional_dependencies",
    "as_functional_dependency", "minimize_program", "minimize_rule",
    "rule_subsumed_by",
    "OptimizationReport", "OptimizationStep", "SemanticOptimizer",
    "optimize", "optimize_all_predicates",
    "Counterexample", "check_equivalent", "infer_numeric_columns",
    "make_consistent", "random_consistent_databases", "random_database",
]
