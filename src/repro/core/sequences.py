"""Expansion sequences and their unfolding into conjunctive clauses.

An *expansion sequence* is a sequence of program rules applied top-down
(Section 2): ``r0 r1 r0`` denotes the proof-tree spine where the recursive
predicate is expanded with ``r0``, then ``r1``, then ``r0``.  For linear
programs, expansion sequences are in 1-1 correspondence with proof trees.

Unfolding composes the rules into a single clause.  Every body literal of
the unfolded clause carries *provenance* — which rule instance (level) and
which body position it came from — because the push transformations of
Section 4 must edit the alpha-rule corresponding to a specific atom
occurrence.  The per-level variable renamings are exposed so Algorithm 4.1
can emit alpha-rules in exactly the unfolding's variable space (the
paper's step 5 "head unification").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..datalog.atoms import Atom, Literal
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import FreshVariableSupply, Variable
from ..datalog.unify import Substitution, unify
from ..errors import TransformError


@dataclass(frozen=True)
class ProvenancedLiteral:
    """A literal of an unfolded clause with its origin.

    Attributes:
        literal: the (renamed) literal.
        level: 0-based index of the rule instance in the sequence.
        body_index: the literal's position in that rule's original body.
    """

    literal: Literal
    level: int
    body_index: int


@dataclass(frozen=True)
class SequenceClause:
    """The unfolding of an expansion sequence.

    Attributes:
        pred: the recursive predicate the sequence expands.
        labels: the rule labels of the sequence, top-down.
        head: the clause head (the first rule's head).
        body: all body literals with provenance, level-major order.  When
            the last rule is recursive this includes the trailing
            recursive atom (its provenance points at that occurrence).
        instances: the renamed rule instances, one per level; instance
            ``i``'s head is the recursive call emitted by instance
            ``i-1`` (instance 0 keeps the original head).
        level_substitutions: per level, the renaming from the original
            rule's variables into the unfolding's variable space.
        recursive_tail: index into ``body`` of the trailing recursive
            atom, or None when the sequence ends with an exit rule.
    """

    pred: str
    labels: tuple[str, ...]
    head: Atom
    body: tuple[ProvenancedLiteral, ...]
    instances: tuple[Rule, ...]
    level_substitutions: tuple[Substitution, ...]
    recursive_tail: int | None

    def literals(self, include_tail: bool = True) -> tuple[Literal, ...]:
        """The bare body literals (optionally without the recursive tail)."""
        out = []
        for index, item in enumerate(self.body):
            if not include_tail and index == self.recursive_tail:
                continue
            out.append(item.literal)
        return tuple(out)

    def __str__(self) -> str:
        body = ", ".join(str(item.literal) for item in self.body)
        return f"{self.head} :- {body}."

    def provenance_of(self, literal: Literal) -> ProvenancedLiteral | None:
        """First provenance entry whose literal equals ``literal``."""
        for item in self.body:
            if item.literal == literal:
                return item
        return None

    def variables(self) -> frozenset[Variable]:
        out = set(self.head.variables())
        for item in self.body:
            out.update(item.literal.variables())
        return frozenset(out)


def _sequence_rules(program: Program, pred: str,
                    labels: Sequence[str]) -> list[Rule]:
    rules = []
    for position, label in enumerate(labels):
        rule = program.rule(label)
        if rule.head.pred != pred:
            raise TransformError(
                f"rule {label} defines {rule.head.pred}, not {pred}")
        occurrences = rule.count_occurrences(pred)
        if occurrences > 1:
            raise TransformError(
                f"rule {label} is not linear in {pred}")
        if occurrences == 0 and position != len(labels) - 1:
            raise TransformError(
                f"exit rule {label} can only terminate a sequence")
        rules.append(rule)
    if not rules:
        raise TransformError("an expansion sequence needs at least one rule")
    return rules


def unfold(program: Program, pred: str,
           labels: Sequence[str]) -> SequenceClause:
    """Unfold an expansion sequence into a :class:`SequenceClause`."""
    labels = tuple(labels)
    rules = _sequence_rules(program, pred, labels)
    supply = FreshVariableSupply(
        {v.name for rule in program for v in rule.variables()})

    instances: list[Rule] = []
    substitutions: list[Substitution] = []
    body: list[ProvenancedLiteral] = []
    recursive_tail: int | None = None

    call_atom: Atom | None = None  # the pending recursive call to expand
    for level, rule in enumerate(rules):
        if level == 0:
            renaming = Substitution()
            instance = rule
        else:
            assert call_atom is not None
            fresh_map = {v: supply.fresh(v.name) for v in sorted(
                rule.variables(), key=lambda v: v.name)}
            renaming = Substitution(fresh_map)
            renamed = rule.apply(renaming)
            unifier = unify(renamed.head, call_atom)
            if unifier is None:
                raise TransformError(
                    f"cannot unfold {labels}: head of {rule.label} does "
                    f"not unify with the recursive call {call_atom}")
            foreign = set(unifier) - set(renamed.variables())
            if foreign:
                # Binding call-site variables would have to propagate to
                # earlier levels; rectified heads never trigger this.
                raise TransformError(
                    f"cannot unfold {labels}: rule {rule.label} has a "
                    "non-rectified head that constrains the call site; "
                    "rectify the program first")
            instance = renamed.apply(unifier)
            renaming = renaming.compose(unifier)
        instances.append(instance)
        substitutions.append(renaming)

        call_atom = None
        for body_index, literal in enumerate(instance.body):
            original = rule.body[body_index]
            is_recursive_call = (isinstance(original, Atom)
                                 and original.pred == pred)
            if is_recursive_call and level < len(rules) - 1:
                # Expanded by the next rule: not part of the clause body.
                call_atom = literal  # type: ignore[assignment]
                continue
            body.append(ProvenancedLiteral(literal, level, body_index))
            if is_recursive_call:
                recursive_tail = len(body) - 1
                call_atom = literal  # type: ignore[assignment]

    return SequenceClause(
        pred=pred,
        labels=labels,
        head=instances[0].head,
        body=tuple(body),
        instances=tuple(instances),
        level_substitutions=tuple(substitutions),
        recursive_tail=recursive_tail)


def enumerate_sequences(program: Program, pred: str, max_length: int,
                        include_exit: bool = True
                        ) -> Iterator[tuple[str, ...]]:
    """Enumerate expansion-sequence label tuples up to ``max_length``.

    All prefixes consist of recursive rules; when ``include_exit`` is set,
    sequences may additionally end with an exit rule.  Lengths from 1 to
    ``max_length`` are produced in breadth-first order.
    """
    recursive = [r.label for r in program.recursive_rules(pred)]
    exits = [r.label for r in program.exit_rules(pred)] if include_exit \
        else []
    frontier: list[tuple[str, ...]] = [()]
    for _ in range(max_length):
        next_frontier: list[tuple[str, ...]] = []
        for prefix in frontier:
            for label in recursive:
                sequence = prefix + (label,)
                yield sequence
                next_frontier.append(sequence)
            for label in exits:
                yield prefix + (label,)
        frontier = next_frontier
