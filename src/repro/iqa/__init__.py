"""Intelligent query answering (Section 5)."""

from .knowledge import KnowledgeQuery, parse_describe
from .reachability import reachable_predicates, relevant_context
from .answering import (DescribeResult, ProofTree, TreeDescription,
                        describe, proof_trees)

__all__ = [
    "KnowledgeQuery", "parse_describe",
    "reachable_predicates", "relevant_context",
    "DescribeResult", "ProofTree", "TreeDescription", "describe",
    "proof_trees",
]
