"""Predicate reachability for relevant-context extraction (Section 5).

The paper defines reachability as the smallest *symmetric* relation with:
every predicate reachable from itself, and ``p`` reachable from ``q``
when ``q`` occurs in the body of a rule for a predicate reachable from
``p``.  Operationally this is connectivity in the undirected predicate
dependency graph.  Context predicates not reachable from the query
predicate are irrelevant (the student's chess hobby cannot bear on
honors status).
"""

from __future__ import annotations

from ..datalog.atoms import Comparison, Literal, literal_variables
from ..datalog.program import Program


def reachable_predicates(program: Program, pred: str,
                         ics: tuple = ()) -> frozenset[str]:
    """All predicates reachable from ``pred`` (symmetric closure).

    When integrity constraints are supplied, their body/head predicates
    are treated as connected too — an ``alumni -> graduated`` constraint
    makes ``alumni`` relevant to anything ``graduated`` is relevant to.
    """
    import networkx as nx

    graph = program.dependency_graph().copy()
    for ic in ics:
        preds = [a.pred for a in ic.database_atoms()]
        head = ic.head
        if head is not None and hasattr(head, "pred"):
            preds.append(head.pred)
        for left, right in zip(preds, preds[1:]):
            graph.add_edge(left, right)
    if pred not in graph:
        return frozenset({pred})
    undirected = graph.to_undirected(as_view=True)
    component = nx.node_connected_component(undirected, pred)
    return frozenset(component)


def relevant_context(program: Program, pred: str,
                     context: tuple[Literal, ...], ics: tuple = ()
                     ) -> tuple[tuple[Literal, ...], tuple[Literal, ...]]:
    """Split a knowledge-query context into (relevant, irrelevant).

    Database literals are relevant when their predicate is reachable from
    the query predicate (optionally also through IC connections);
    evaluable literals are relevant when they share a variable with some
    relevant database literal (they qualify it).
    """
    reachable = reachable_predicates(program, pred, ics)
    relevant: list[Literal] = []
    irrelevant: list[Literal] = []
    pending_evaluable: list[Comparison] = []
    for literal in context:
        if isinstance(literal, Comparison):
            pending_evaluable.append(literal)
            continue
        name = literal.pred if not hasattr(literal, "atom") \
            else literal.atom.pred  # Negation
        if name in reachable:
            relevant.append(literal)
        else:
            irrelevant.append(literal)
    relevant_vars = literal_variables(tuple(relevant))
    for comparison in pending_evaluable:
        if comparison.variable_set() & relevant_vars:
            relevant.append(comparison)
        else:
            irrelevant.append(comparison)
    return tuple(relevant), tuple(irrelevant)
