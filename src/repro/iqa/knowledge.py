"""Knowledge queries: ``describe phi(X) where psi(X)`` (Motro & Yuan).

A knowledge query does not ask for tuples; it asks for a *description*
of the objects satisfying ``phi`` given that the context ``psi`` holds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.atoms import Atom, Literal
from ..datalog.parser import parse_atom, parse_query
from ..errors import ParseError


@dataclass(frozen=True)
class KnowledgeQuery:
    """``describe target where context``.

    Attributes:
        target: the atom being described, e.g. ``honors(Stud)``.
        context: the asserted context literals, sharing variables with
            the target.
    """

    target: Atom
    context: tuple[Literal, ...]

    def __str__(self) -> str:
        context = ", ".join(str(lit) for lit in self.context)
        return f"describe {self.target} where {context}"


def parse_describe(text: str) -> KnowledgeQuery:
    """Parse the ``describe ... where ...`` surface syntax.

    Example::

        describe honors(Stud) where major(Stud, cs),
            graduated(Stud, College), topten(College), hobby(Stud, chess)
    """
    stripped = text.strip().rstrip(".")
    if not stripped.startswith("describe "):
        raise ParseError("a knowledge query starts with 'describe'")
    rest = stripped[len("describe "):]
    if " where " not in rest:
        raise ParseError("a knowledge query needs a 'where' context")
    target_text, context_text = rest.split(" where ", 1)
    target = parse_atom(target_text.strip())
    context = parse_query(context_text.strip()).literals
    return KnowledgeQuery(target, context)
