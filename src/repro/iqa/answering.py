"""Intelligent query answering via semantic-optimization machinery.

Section 5's methodology, as run on Example 5.1:

1. extract the *relevant* part of the context by reachability analysis;
2. enumerate the proof trees of the query predicate (each is a
   conjunctive query over EDB leaves);
3. treat the relevant context as an axiom and test whether it (partially)
   subsumes each proof tree's leaves — with the query's distinguished
   variable pinned to the tree's;
4. read descriptions off the residues: an *empty* residue means every
   object satisfying the context qualifies; otherwise the residue lists
   exactly the additional conditions the object must meet.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constraints.subsumption import match_literal
from ..datalog.atoms import Atom, Comparison, Literal
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import FreshVariableSupply, Variable
from ..datalog.unify import EMPTY_SUBSTITUTION, Substitution, unify
from ..errors import TransformError
from .knowledge import KnowledgeQuery
from .reachability import relevant_context


@dataclass(frozen=True)
class ProofTree:
    """One complete unfolding of the query predicate.

    Attributes:
        labels: rule labels applied, in expansion order.
        head: the tree's root atom.
        leaves: the EDB/evaluable leaves (the conjunctive query).
    """

    labels: tuple[str, ...]
    head: Atom
    leaves: tuple[Literal, ...]

    def __str__(self) -> str:
        leaves = ", ".join(str(lit) for lit in self.leaves)
        return f"[{' '.join(self.labels)}] {self.head} :- {leaves}"


def proof_trees(program: Program, query: Atom,
                max_expansions: int = 8) -> list[ProofTree]:
    """All complete proof trees of ``query`` within the expansion budget.

    Every IDB atom is repeatedly replaced by a (renamed, unified) rule
    body; trees needing more than ``max_expansions`` rule applications
    are dropped, which truncates recursive predicates — acceptable for
    description purposes and noted by callers that need completeness.
    """
    supply = FreshVariableSupply(
        {v.name for rule in program for v in rule.variables()}
        | {v.name for v in query.variables()})
    results: list[ProofTree] = []

    def expand(goal_list: list[Literal], labels: tuple[str, ...],
               budget: int) -> None:
        for index, literal in enumerate(goal_list):
            if isinstance(literal, Atom) and \
                    literal.pred in program.idb_predicates:
                if budget == 0:
                    return
                for rule in program.rules_for(literal.pred):
                    renamed_map = {v: supply.fresh(v.name) for v in sorted(
                        rule.variables(), key=lambda v: v.name)}
                    renamed = rule.apply(Substitution(renamed_map))
                    unifier = unify(renamed.head, literal)
                    if unifier is None:
                        continue
                    new_goals = (
                        [unifier.apply_literal(g) for g in
                         goal_list[:index]]
                        + [unifier.apply_literal(g) for g in
                           unifier.apply_literals(renamed.body)]
                        + [unifier.apply_literal(g) for g in
                           goal_list[index + 1:]])
                    expand(new_goals, labels + (renamed.label or "?",),
                           budget - 1)
                return
        results.append(ProofTree(labels, query, tuple(goal_list)))

    expand([query], (), max_expansions)
    return results


@dataclass(frozen=True)
class TreeDescription:
    """How one proof tree relates to the context.

    ``residue`` holds the conditions *still required* beyond the context;
    an empty residue means the context alone guarantees membership.
    """

    tree: ProofTree
    subsumed: bool
    residue: tuple[Literal, ...]

    @property
    def context_suffices(self) -> bool:
        return self.subsumed and not self.residue


@dataclass(frozen=True)
class DescribeResult:
    """The intelligent answer to a knowledge query."""

    query: KnowledgeQuery
    relevant: tuple[Literal, ...]
    irrelevant: tuple[Literal, ...]
    descriptions: tuple[TreeDescription, ...]
    context_inconsistent: bool = False

    @property
    def context_suffices(self) -> bool:
        """True when some proof tree is totally subsumed by the context."""
        return any(d.context_suffices for d in self.descriptions)

    def summary(self) -> str:
        lines = [str(self.query)]
        if self.irrelevant:
            ignored = ", ".join(str(lit) for lit in self.irrelevant)
            lines.append(f"ignored as irrelevant: {ignored}")
        if self.context_inconsistent:
            lines.append(
                "answer: the context contradicts the integrity "
                "constraints; no object can satisfy it")
            return "\n".join(lines)
        if self.context_suffices:
            lines.append(
                "answer: every object satisfying the context is a "
                f"{self.query.target.pred}")
            return "\n".join(lines)
        lines.append("answer: the context alone does not suffice; "
                     "per proof tree, the object must additionally "
                     "satisfy:")
        for description in self.descriptions:
            residue = ", ".join(str(lit) for lit in description.residue) \
                or "true"
            lines.append(
                f"  via {' '.join(description.tree.labels)}: {residue}")
        return "\n".join(lines)


def _best_coverage(context: tuple[Literal, ...], tree: ProofTree,
                   query: Atom) -> tuple[frozenset[int], Substitution]:
    """Map the tree's leaves *into* the context, maximizing coverage.

    Leaf variables are the bindable side (they are existential once the
    query variables are pinned); context variables are rigid — the
    context asserts facts about *its own* individuals, so a context
    about a different person must not be strengthened onto the query's
    (``describe honors(Stud) where graduated(Other, C)...`` does not
    make Stud an honors student).  The query variables are pinned to
    themselves: proof trees are unfolded from the query atom, so tree
    and query share them.

    Returns the largest set of covered leaf indexes and its mapping.
    """
    best: tuple[frozenset[int], Substitution] = (frozenset(),
                                                 EMPTY_SUBSTITUTION)

    def assign(index: int, covered: frozenset[int],
               current: Substitution) -> None:
        nonlocal best
        if index == len(tree.leaves):
            if len(covered) > len(best[0]):
                best = (covered, current)
            return
        leaf = tree.leaves[index]
        # Option 1: leave this leaf uncovered (goes to the residue).
        assign(index + 1, covered, current)
        # Option 2: cover it by some context literal.
        for asserted in context:
            for extended in match_literal(leaf, asserted, current):
                assign(index + 1, covered | {index}, extended)

    # Pin the query's variables so they stay rigid during matching.
    seed = EMPTY_SUBSTITUTION
    for arg in query.args:
        if isinstance(arg, Variable):
            seed = seed.bind(arg, arg)
    assign(0, frozenset(), seed)
    return best


def describe(program: Program, query: KnowledgeQuery,
             max_expansions: int = 8, ics: tuple = ()) -> DescribeResult:
    """Answer a knowledge query (the Section 5 pipeline).

    When integrity constraints are supplied, the relevant context is
    first *chased* with them, so knowledge implied by the context also
    counts as asserted (e.g. an ``alumni -> graduated`` constraint lets
    an alumni context satisfy a graduated condition).  An inconsistent
    context (its chase derives a contradiction) is reported as such.
    """
    if query.target.pred not in program.idb_predicates:
        raise TransformError(
            f"cannot describe {query.target.pred!r}: not an IDB "
            "predicate of the program")
    relevant, irrelevant = relevant_context(program, query.target.pred,
                                            query.context, ics)
    if ics:
        from ..core.containment import chase, freeze

        instance, supply = freeze(relevant)
        chase(instance, list(ics), supply)
        if instance.inconsistent:
            return DescribeResult(query, relevant, irrelevant, (),
                                  context_inconsistent=True)
        relevant_closed: tuple[Literal, ...] = (
            tuple(instance.atoms) + tuple(instance.assumptions))
    else:
        relevant_closed = relevant
    trees = proof_trees(program, query.target, max_expansions)
    if not trees:
        raise TransformError(
            f"{query.target.pred} has no proof trees within the "
            "expansion budget")
    descriptions = []
    for tree in trees:
        covered, theta = _best_coverage(relevant_closed, tree,
                                        query.target)
        residue = tuple(theta.apply_literal(leaf)
                        for index, leaf in enumerate(tree.leaves)
                        if index not in covered)
        database_leaves = {index for index, leaf in
                           enumerate(tree.leaves)
                           if isinstance(leaf, Atom)}
        subsumed = database_leaves <= covered and bool(covered)
        descriptions.append(TreeDescription(tree, subsumed, residue))
    return DescribeResult(query, relevant, irrelevant,
                          tuple(descriptions))
