"""Substitutions, unification and one-way matching.

Three operations drive everything downstream:

- :class:`Substitution` — an immutable mapping from variables to terms,
  applied with :meth:`Substitution.apply` / :meth:`Substitution.apply_literal`.
- :func:`unify` — classical most-general unification of two atoms (used by
  rule unfolding and Algorithm 4.1's step-5 head unification).
- :func:`match` — one-way matching ("subsuming substitutions"): variables of
  the *pattern* may bind to arbitrary terms of the *target*, but target
  variables are treated as constants.  This is the substitution notion used
  by (free) subsumption in Section 2 of the paper.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from .atoms import Atom, Comparison, Literal, Negation
from .terms import ArithExpr, Constant, Term, Variable


class Substitution:
    """An immutable mapping from :class:`Variable` to :class:`Term`."""

    __slots__ = ("_map",)

    def __init__(self, mapping: Mapping[Variable, Term] | None = None) -> None:
        self._map: dict[Variable, Term] = dict(mapping or {})

    # -- mapping protocol -------------------------------------------------
    def __getitem__(self, var: Variable) -> Term:
        return self._map[var]

    def __contains__(self, var: Variable) -> bool:
        return var in self._map

    def __len__(self) -> int:
        return len(self._map)

    def __iter__(self):
        return iter(self._map)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Substitution) and self._map == other._map

    def __hash__(self) -> int:
        return hash(frozenset(self._map.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}/{t}" for v, t in sorted(
            self._map.items(), key=lambda kv: kv[0].name))
        return "{" + inner + "}"

    def get(self, var: Variable, default: Term | None = None) -> Term | None:
        return self._map.get(var, default)

    def items(self):
        return self._map.items()

    # -- construction ------------------------------------------------------
    def bind(self, var: Variable, term: Term) -> "Substitution":
        """Return a new substitution extended with ``var -> term``."""
        new = dict(self._map)
        new[var] = term
        return Substitution(new)

    def compose(self, other: "Substitution") -> "Substitution":
        """Return ``self`` then ``other``: ``x -> other(self(x))``."""
        new = {v: other.apply_term(t) for v, t in self._map.items()}
        for v, t in other.items():
            new.setdefault(v, t)
        return Substitution(new)

    def restrict(self, variables: Iterable[Variable]) -> "Substitution":
        """Return the substitution restricted to ``variables``."""
        keep = set(variables)
        return Substitution({v: t for v, t in self._map.items() if v in keep})

    # -- application -------------------------------------------------------
    def apply_term(self, term: Term) -> Term:
        if isinstance(term, Variable):
            return self._map.get(term, term)
        if isinstance(term, ArithExpr):
            return ArithExpr(term.op, self.apply_term(term.left),
                             self.apply_term(term.right))
        return term

    def apply(self, atom: Atom) -> Atom:
        return Atom(atom.pred, tuple(self.apply_term(a) for a in atom.args),
                    span=atom.span)

    def apply_literal(self, literal: Literal) -> Literal:
        if isinstance(literal, Atom):
            return self.apply(literal)
        if isinstance(literal, Comparison):
            return Comparison(literal.op, self.apply_term(literal.lhs),
                              self.apply_term(literal.rhs),
                              span=literal.span)
        return Negation(self.apply(literal.atom), span=literal.span)

    def apply_literals(self, literals: Iterable[Literal]) -> tuple[Literal, ...]:
        return tuple(self.apply_literal(lit) for lit in literals)


EMPTY_SUBSTITUTION = Substitution()


def _walk(term: Term, subst: dict[Variable, Term]) -> Term:
    """Follow variable bindings to a representative term."""
    while isinstance(term, Variable) and term in subst:
        term = subst[term]
    return term


def _occurs(var: Variable, term: Term, subst: dict[Variable, Term]) -> bool:
    term = _walk(term, subst)
    if term == var:
        return True
    if isinstance(term, ArithExpr):
        return (_occurs(var, term.left, subst)
                or _occurs(var, term.right, subst))
    return False


def _unify_terms(a: Term, b: Term,
                 subst: dict[Variable, Term]) -> bool:
    a = _walk(a, subst)
    b = _walk(b, subst)
    if a == b:
        return True
    if isinstance(a, Variable):
        if _occurs(a, b, subst):
            return False
        subst[a] = b
        return True
    if isinstance(b, Variable):
        if _occurs(b, a, subst):
            return False
        subst[b] = a
        return True
    if isinstance(a, ArithExpr) and isinstance(b, ArithExpr):
        return (a.op == b.op
                and _unify_terms(a.left, b.left, subst)
                and _unify_terms(a.right, b.right, subst))
    return False


def _resolve(term: Term, subst: dict[Variable, Term]) -> Term:
    term = _walk(term, subst)
    if isinstance(term, ArithExpr):
        return ArithExpr(term.op, _resolve(term.left, subst),
                         _resolve(term.right, subst))
    return term


def unify(a: Atom, b: Atom) -> Optional[Substitution]:
    """Most general unifier of two atoms, or None when they do not unify."""
    if a.pred != b.pred or a.arity != b.arity:
        return None
    working: dict[Variable, Term] = {}
    for ta, tb in zip(a.args, b.args):
        if not _unify_terms(ta, tb, working):
            return None
    return Substitution({v: _resolve(t, working) for v, t in working.items()})


def match_terms(pattern: Term, target: Term,
                subst: Substitution) -> Optional[Substitution]:
    """Extend ``subst`` so that ``pattern`` maps onto ``target``.

    One-way: only variables of the pattern may be bound.  Target variables
    behave like constants (they can be *bound to*, not bound).
    """
    if isinstance(pattern, Variable):
        bound = subst.get(pattern)
        if bound is None:
            return subst.bind(pattern, target)
        return subst if bound == target else None
    if isinstance(pattern, Constant):
        return subst if pattern == target else None
    # ArithExpr pattern
    if (isinstance(target, ArithExpr) and pattern.op == target.op):
        step = match_terms(pattern.left, target.left, subst)
        if step is None:
            return None
        return match_terms(pattern.right, target.right, step)
    return None


def match(pattern: Atom, target: Atom,
          subst: Substitution = EMPTY_SUBSTITUTION) -> Optional[Substitution]:
    """One-way match of ``pattern`` onto ``target`` extending ``subst``."""
    if pattern.pred != target.pred or pattern.arity != target.arity:
        return None
    current = subst
    for p_arg, t_arg in zip(pattern.args, target.args):
        nxt = match_terms(p_arg, t_arg, current)
        if nxt is None:
            return None
        current = nxt
    return current


def rename_apart(literals: Iterable[Literal],
                 supply) -> tuple[tuple[Literal, ...], Substitution]:
    """Rename every variable in ``literals`` with fresh names.

    Returns the renamed literals and the renaming substitution.  ``supply``
    is a :class:`repro.datalog.terms.FreshVariableSupply`.
    """
    literals = tuple(literals)
    seen: dict[Variable, Term] = {}
    for lit in literals:
        for var in lit.variables():
            if var not in seen:
                seen[var] = supply.fresh(var.name)
    renaming = Substitution(seen)
    return renaming.apply_literals(literals), renaming
