"""Rules and facts.

A :class:`Rule` is ``head :- body`` with a database atom head and a body of
literals (database atoms, comparisons, and — engine extension — negated
atoms).  A fact is a rule with an empty body and a ground head; ground EDB
facts normally live in :class:`repro.facts.database.Database` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .atoms import Atom, Comparison, Literal, Negation, is_database
from .spans import Span
from .terms import Variable
from .unify import Substitution


@dataclass(frozen=True)
class Rule:
    """A Datalog rule ``head :- body``.

    Attributes:
        head: the head atom.
        body: the body literals, in source order.
        label: an optional name such as ``r0`` used in reports and when
            referring to rules inside expansion sequences.
        span: the source range of the whole statement when the rule came
            from the parser; excluded from equality like ``label``.
    """

    head: Atom
    body: tuple[Literal, ...]
    label: str | None = field(default=None, compare=False)
    span: Span | None = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        body = ", ".join(str(lit) for lit in self.body)
        return f"{self.head} :- {body}."

    # -- inspection --------------------------------------------------------
    @property
    def is_fact(self) -> bool:
        return not self.body

    def database_atoms(self) -> tuple[Atom, ...]:
        """The positive database atoms of the body, in order."""
        return tuple(lit for lit in self.body if isinstance(lit, Atom))

    def evaluable_atoms(self) -> tuple[Comparison, ...]:
        return tuple(lit for lit in self.body if isinstance(lit, Comparison))

    def negated_atoms(self) -> tuple[Negation, ...]:
        return tuple(lit for lit in self.body if isinstance(lit, Negation))

    def body_predicates(self) -> frozenset[str]:
        """Names of database predicates referenced in the body."""
        preds = set()
        for lit in self.body:
            if isinstance(lit, Atom):
                preds.add(lit.pred)
            elif isinstance(lit, Negation):
                preds.add(lit.atom.pred)
        return frozenset(preds)

    def head_variables(self) -> frozenset[Variable]:
        return self.head.variable_set()

    def body_variables(self) -> frozenset[Variable]:
        out: set[Variable] = set()
        for lit in self.body:
            out.update(lit.variables())
        return frozenset(out)

    def variables(self) -> frozenset[Variable]:
        return self.head_variables() | self.body_variables()

    def local_variables(self) -> frozenset[Variable]:
        """Variables appearing only in the body (the paper's terminology)."""
        return self.body_variables() - self.head_variables()

    def occurrences_of(self, pred: str) -> Iterator[tuple[int, Atom]]:
        """Yield ``(body_index, atom)`` for each positive occurrence."""
        for index, lit in enumerate(self.body):
            if isinstance(lit, Atom) and lit.pred == pred:
                yield index, lit

    def count_occurrences(self, pred: str) -> int:
        return sum(1 for _ in self.occurrences_of(pred))

    # -- construction helpers ----------------------------------------------
    def apply(self, subst: Substitution) -> "Rule":
        """Apply a substitution to head and body, keeping the label."""
        return Rule(subst.apply(self.head),
                    subst.apply_literals(self.body),
                    label=self.label, span=self.span)

    def with_body(self, body: tuple[Literal, ...]) -> "Rule":
        return Rule(self.head, body, label=self.label, span=self.span)

    def with_head(self, head: Atom) -> "Rule":
        return Rule(head, self.body, label=self.label, span=self.span)

    def with_label(self, label: str | None) -> "Rule":
        return Rule(self.head, self.body, label=label, span=self.span)

    def add_literals(self, *literals: Literal) -> "Rule":
        return Rule(self.head, self.body + tuple(literals),
                    label=self.label, span=self.span)

    def remove_body_index(self, index: int) -> "Rule":
        if not 0 <= index < len(self.body):
            raise IndexError(f"body index {index} out of range")
        body = self.body[:index] + self.body[index + 1:]
        return Rule(self.head, body, label=self.label, span=self.span)


def rule(head: Atom, *body: Literal, label: str | None = None) -> Rule:
    """Convenience constructor mirroring :func:`repro.datalog.atoms.atom`."""
    for lit in body:
        if not isinstance(lit, (Atom, Comparison, Negation)):
            raise TypeError(f"not a literal: {lit!r}")
    if not isinstance(head, Atom):
        raise TypeError(f"rule head must be a database atom, got {head!r}")
    return Rule(head, tuple(body), label=label)


def is_connected(literals: tuple[Literal, ...]) -> bool:
    """Connectivity test used for both rules and ICs (Section 1).

    A conjunction is connected when, viewing literals as nodes joined by
    shared variables, the graph has a single connected component.  Ground
    literals attach to nothing; a conjunction containing a ground literal
    and anything else is therefore disconnected, matching the definition.
    """
    literals = tuple(literals)
    if len(literals) <= 1:
        return True
    var_sets = [frozenset(lit.variables()) for lit in literals]
    remaining = set(range(1, len(literals)))
    reached_vars = set(var_sets[0])
    changed = True
    while changed and remaining:
        changed = False
        for index in list(remaining):
            if var_sets[index] & reached_vars:
                remaining.discard(index)
                reached_vars |= var_sets[index]
                changed = True
    return not remaining
