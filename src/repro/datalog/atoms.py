"""Atoms and literals.

The paper distinguishes *database predicates* (EDB/IDB atoms) from
*evaluable predicates* (built-in comparisons such as ``X > Y`` or
``X > 100``).  We model these as two classes:

- :class:`Atom` — a database atom ``pred(t1, ..., tn)``.
- :class:`Comparison` — an evaluable atom ``lhs op rhs``.

Negation (used by the engine's stratified-negation extension and never
needed for the optimizer's own output, see DESIGN.md) wraps an atom in
:class:`Negation`.  A *literal* is any of the three.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Union

from .spans import Span
from .terms import ArithExpr, Constant, Term, Variable, mk_term, variables_of


@dataclass(frozen=True, slots=True)
class Atom:
    """A database atom ``pred(t1, ..., tn)``.

    ``span`` ties the atom back to its source text when it came from the
    parser; it never participates in equality or hashing, so transformed
    and hand-built atoms compare as before.
    """

    pred: str
    args: tuple[Term, ...]
    span: Span | None = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        if not self.args:
            return self.pred
        return f"{self.pred}({', '.join(str(a) for a in self.args)})"

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> Iterator[Variable]:
        """Yield every variable occurrence (left to right, with repeats)."""
        for arg in self.args:
            yield from variables_of(arg)

    def variable_set(self) -> frozenset[Variable]:
        return frozenset(self.variables())


#: Comparison operators with their complements (used to build ``not E``).
COMPARISON_COMPLEMENT = {
    "=": "!=",
    "!=": "=",
    "<": ">=",
    ">=": "<",
    ">": "<=",
    "<=": ">",
}

#: Operators with operand order swapped (``a < b`` == ``b > a``).
COMPARISON_CONVERSE = {
    "=": "=",
    "!=": "!=",
    "<": ">",
    ">": "<",
    "<=": ">=",
    ">=": "<=",
}


@dataclass(frozen=True, slots=True)
class Comparison:
    """An evaluable atom ``lhs op rhs`` with ``op`` a comparison operator."""

    op: str
    lhs: Term
    rhs: Term
    span: Span | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_COMPLEMENT:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def __str__(self) -> str:
        return f"{self.lhs} {self.op} {self.rhs}"

    def variables(self) -> Iterator[Variable]:
        yield from variables_of(self.lhs)
        yield from variables_of(self.rhs)

    def variable_set(self) -> frozenset[Variable]:
        return frozenset(self.variables())

    def complement(self) -> "Comparison":
        """Return the logical negation as another comparison.

        This is what makes the optimizer's conditional splits executable
        without negation support: ``not (X > 5)`` is just ``X <= 5``.
        """
        return Comparison(COMPARISON_COMPLEMENT[self.op], self.lhs,
                          self.rhs, span=self.span)

    def converse(self) -> "Comparison":
        """Return the same constraint with operands swapped."""
        return Comparison(COMPARISON_CONVERSE[self.op], self.rhs,
                          self.lhs, span=self.span)


@dataclass(frozen=True, slots=True)
class Negation:
    """Negation of a database atom (stratified-negation extension)."""

    atom: Atom
    span: Span | None = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        return f"not {self.atom}"

    def variables(self) -> Iterator[Variable]:
        yield from self.atom.variables()

    def variable_set(self) -> frozenset[Variable]:
        return self.atom.variable_set()


#: Any body element of a rule or IC.
Literal = Union[Atom, Comparison, Negation]


def atom(pred: str, *args: object) -> Atom:
    """Convenience constructor: ``atom('par', 'X', 'Y')``.

    Arguments are coerced with :func:`repro.datalog.terms.mk_term`, so
    uppercase strings become variables and everything else constants.
    """
    return Atom(pred, tuple(mk_term(a) for a in args))


def comparison(lhs: object, op: str, rhs: object) -> Comparison:
    """Convenience constructor: ``comparison('X', '>', 100)``."""
    return Comparison(op, mk_term(lhs), mk_term(rhs))


def is_database(literal: Literal) -> bool:
    """True when ``literal`` is a (positive) database atom."""
    return isinstance(literal, Atom)


def is_evaluable(literal: Literal) -> bool:
    """True when ``literal`` is an evaluable (built-in) atom."""
    return isinstance(literal, Comparison)


def literal_variables(literals: Sequence[Literal]) -> frozenset[Variable]:
    """The set of variables occurring in a sequence of literals."""
    out: set[Variable] = set()
    for lit in literals:
        out.update(lit.variables())
    return frozenset(out)


def ground_terms(terms: Sequence[Term]) -> bool:
    """True when none of ``terms`` contains a variable."""
    return all(not any(True for _ in variables_of(t)) for t in terms)


def constants_of(literal: Literal) -> frozenset[Constant]:
    """The set of constants appearing in ``literal``."""

    def walk(term: Term) -> Iterator[Constant]:
        if isinstance(term, Constant):
            yield term
        elif isinstance(term, ArithExpr):
            yield from walk(term.left)
            yield from walk(term.right)

    out: set[Constant] = set()
    if isinstance(literal, Atom):
        for arg in literal.args:
            out.update(walk(arg))
    elif isinstance(literal, Comparison):
        out.update(walk(literal.lhs))
        out.update(walk(literal.rhs))
    else:
        return constants_of(literal.atom)
    return frozenset(out)
