"""Structural checks: range restriction, connectivity, safety.

The paper's standing assumptions (Section 1) are:

1. all rules are range restricted;
2. all rules and ICs are connected;
3. only linear recursion without mutual recursion;
4. ICs involve EDB relations (and evaluable predicates) only.

This module implements the checks for (1), (2) and the engine-level safety
condition; (3) is :meth:`repro.datalog.program.Program.require_linear` and
(4) lives with :class:`repro.constraints.ic.IntegrityConstraint`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .atoms import Atom, Comparison, Negation
from .program import Program
from .rules import Rule, is_connected
from .terms import Variable, variables_of


def is_range_restricted(rule: Rule) -> bool:
    """True when every head variable appears in the body (Section 1)."""
    return rule.head_variables() <= rule.body_variables()


def bound_variables(rule: Rule) -> frozenset[Variable]:
    """Variables guaranteed bound when the body is evaluated in any order:
    those in positive database atoms, closed under propagation through
    ``=`` comparisons with one side computable.

    The propagation rule mirrors the engine's binding builtin
    (:func:`repro.engine.builtins.can_bind`) exactly: an ``=`` binds when
    one side is a *bare* unbound variable and every variable of the other
    side — which may be a compound arithmetic term such as ``X + 1`` — is
    already bound, in either orientation (``Y = X + 1`` and
    ``X + 1 = Y`` are equivalent).  Keeping the two definitions in
    lock-step guarantees that :func:`is_safe` accepts a rule if and only
    if the join planner can order its body.
    """
    bound: set[Variable] = set()
    for lit in rule.body:
        if isinstance(lit, Atom):
            bound.update(lit.variables())
    equalities = [lit for lit in rule.body
                  if isinstance(lit, Comparison) and lit.op == "="]

    def newly_bound(eq: Comparison) -> Variable | None:
        """The variable this ``=`` would bind given ``bound``, if any."""
        for target, source in ((eq.lhs, eq.rhs), (eq.rhs, eq.lhs)):
            if (isinstance(target, Variable) and target not in bound
                    and set(variables_of(source)) <= bound):
                return target
        return None

    changed = True
    while changed:
        changed = False
        for eq in equalities:
            var = newly_bound(eq)
            if var is not None:
                bound.add(var)
                changed = True
    return frozenset(bound)


def is_safe(rule: Rule) -> bool:
    """Engine-level safety: every variable of the rule is bound.

    Head variables, variables under negation and variables in comparisons
    must all be bound by positive database atoms (possibly via ``=``
    chains), so that bottom-up evaluation always works with ground values.
    """
    bound = bound_variables(rule)
    if not rule.head_variables() <= bound:
        return False
    for lit in rule.body:
        if isinstance(lit, Negation):
            if not lit.variable_set() <= bound:
                return False
        elif isinstance(lit, Comparison):
            if not lit.variable_set() <= bound:
                return False
    return True


def rule_is_connected(rule: Rule) -> bool:
    """Connectivity of a rule's body in the paper's sense."""
    return is_connected(rule.body)


@dataclass
class ProgramReport:
    """Outcome of validating a program against the paper's assumptions."""

    unsafe_rules: list[str] = field(default_factory=list)
    unrestricted_rules: list[str] = field(default_factory=list)
    disconnected_rules: list[str] = field(default_factory=list)
    mutual_groups: list[frozenset[str]] = field(default_factory=list)
    nonlinear_predicates: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.unsafe_rules or self.unrestricted_rules
                    or self.mutual_groups or self.nonlinear_predicates)

    @property
    def ok_for_paper(self) -> bool:
        """Also requires connectivity, assumption (2)."""
        return self.ok and not self.disconnected_rules

    def summary(self) -> str:
        if self.ok_for_paper:
            return "program satisfies all assumptions"
        issues = []
        if self.unsafe_rules:
            issues.append(f"unsafe rules: {self.unsafe_rules}")
        if self.unrestricted_rules:
            issues.append(
                f"not range restricted: {self.unrestricted_rules}")
        if self.disconnected_rules:
            issues.append(f"disconnected rules: {self.disconnected_rules}")
        if self.mutual_groups:
            issues.append(
                f"mutual recursion: {[sorted(g) for g in self.mutual_groups]}")
        if self.nonlinear_predicates:
            issues.append(
                f"non-linear recursion: {sorted(self.nonlinear_predicates)}")
        return "; ".join(issues)


def validate_program(program: Program) -> ProgramReport:
    """Check a program against the engine's and the paper's assumptions."""
    report = ProgramReport()
    for rule in program:
        label = rule.label or str(rule)
        if not is_range_restricted(rule):
            report.unrestricted_rules.append(label)
        if not is_safe(rule):
            report.unsafe_rules.append(label)
        if rule.body and not rule_is_connected(rule):
            report.disconnected_rules.append(label)
    info = program.recursion_info()
    report.mutual_groups = list(info.mutual_groups)
    report.nonlinear_predicates = sorted(info.nonlinear_predicates)
    return report
