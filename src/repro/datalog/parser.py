"""A recursive-descent parser for the Prolog-like notation of the paper.

Grammar (informal)::

    unit      := statement*
    statement := [label ':'] (rule | ic | fact | query)
    rule      := atom ':-' literals '.'
    fact      := atom '.'
    ic        := literals '->' [literal] '.'
    query     := '?-' literals '.'
    literals  := literal (',' literal)*
    literal   := 'not' atom | atom | comparison
    atom      := ident ['(' term (',' term)* ')']
    comparison:= expr op expr        with op in  = != < <= > >=
    expr      := product (('+'|'-') product)*
    product   := unary (('*'|'/') unary)*
    unary     := ['-'] (var | number | string | ident | '(' expr ')')

Identifiers starting with a lowercase letter are predicate/constant
symbols; identifiers starting with an uppercase letter or ``_`` are
variables.  ``%`` starts a comment to end of line.  An IC may have an empty
head (a denial): ``a(X), X > 5 -> .`` or equivalently ``... -> false.``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from ..errors import ParseError
from .atoms import Atom, Comparison, Literal, Negation
from .rules import Rule
from .program import Program
from .spans import Span, caret_excerpt
from .terms import ArithExpr, Constant, Term, Variable

_PUNCT = (":-", "?-", "->", "<=", ">=", "!=", "=<", "=>",
          "(", ")", ",", ".", "<", ">", "=", "+", "-", "*", "/", ":")
_OP_NORMALIZE = {"=<": "<=", "=>": ">="}


@dataclass(frozen=True)
class Token:
    kind: str  # IDENT VAR NUMBER STRING PUNCT EOF
    text: str
    line: int
    column: int
    #: Exclusive end column; defaults to ``column + len(text)``.
    end_column: int = -1

    @property
    def end(self) -> int:
        if self.end_column >= 0:
            return self.end_column
        return self.column + len(self.text)

    def span(self) -> Span:
        return Span(self.line, self.column, self.line, self.end)


def _excerpt(text: str, line: int, column: int, width: int = 1) -> str:
    return caret_excerpt(text, Span(line, column, line, column + width))


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens; raises :class:`ParseError` on unknown characters."""
    line, column = 1, 1
    index = 0
    length = len(text)
    while index < length:
        ch = text[index]
        if ch == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            column += 1
            continue
        if ch == "%":
            while index < length and text[index] != "\n":
                index += 1
            continue
        if ch.isdigit():
            start = index
            while index < length and (text[index].isdigit()
                                      or text[index] == "."):
                # A '.' is part of the number only when followed by a digit;
                # otherwise it terminates the statement.
                if text[index] == ".":
                    if index + 1 < length and text[index + 1].isdigit():
                        index += 1
                    else:
                        break
                index += 1
            lexeme = text[start:index]
            yield Token("NUMBER", lexeme, line, column)
            column += index - start
            continue
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (text[index].isalnum()
                                      or text[index] == "_"):
                index += 1
            lexeme = text[start:index]
            kind = "VAR" if (lexeme[0].isupper() or lexeme[0] == "_") \
                else "IDENT"
            yield Token(kind, lexeme, line, column)
            column += index - start
            continue
        if ch in "'\"":
            quote = ch
            start_line, start_col = line, column
            index += 1
            column += 1
            chars: list[str] = []
            while index < length and text[index] != quote:
                if text[index] == "\\" and index + 1 < length:
                    chars.append(text[index + 1])
                    index += 2
                    column += 2
                    continue
                if text[index] == "\n":
                    raise ParseError("unterminated string",
                                     start_line, start_col,
                                     excerpt=_excerpt(text, start_line,
                                                      start_col))
                chars.append(text[index])
                index += 1
                column += 1
            if index >= length:
                raise ParseError("unterminated string",
                                 start_line, start_col,
                                 excerpt=_excerpt(text, start_line,
                                                  start_col))
            index += 1
            column += 1
            yield Token("STRING", "".join(chars), start_line, start_col,
                        end_column=column)
            continue
        for punct in _PUNCT:
            if text.startswith(punct, index):
                yield Token("PUNCT", _OP_NORMALIZE.get(punct, punct),
                            line, column)
                index += len(punct)
                column += len(punct)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", line, column,
                             excerpt=_excerpt(text, line, column))
    yield Token("EOF", "", line, column)


@dataclass(frozen=True)
class ParsedIC:
    """A parsed integrity constraint ``body -> head`` (head may be None)."""

    body: tuple[Literal, ...]
    head: Literal | None
    label: str | None = None
    span: Span | None = None


@dataclass(frozen=True)
class ParsedQuery:
    """A parsed query ``?- literals.``"""

    literals: tuple[Literal, ...]
    span: Span | None = None


Statement = Union[Rule, ParsedIC, ParsedQuery]

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = list(tokenize(text))
        self._pos = 0

    # -- token plumbing -----------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _last(self) -> Token:
        """The most recently consumed token (for span ends)."""
        return self._tokens[max(self._pos - 1, 0)]

    def _span_from(self, start: Token) -> Span:
        end = self._last()
        return Span(start.line, start.column, end.line, end.end)

    def _fail(self, message: str, token: Token) -> "ParseError":
        width = max(len(token.text), 1)
        return ParseError(message, token.line, token.column,
                          excerpt=_excerpt(self._text, token.line,
                                           token.column, width))

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise self._fail(
                f"expected {want!r}, found {token.text or token.kind!r}",
                token)
        return self._next()

    def _at_punct(self, text: str, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token.kind == "PUNCT" and token.text == text

    # -- grammar -------------------------------------------------------------
    def parse_unit(self) -> list[Statement]:
        statements: list[Statement] = []
        while self._peek().kind != "EOF":
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> Statement:
        label = None
        start = self._peek()
        if (self._peek().kind == "IDENT" and self._at_punct(":", 1)
                and not self._at_punct(":-", 1)):
            label = self._next().text
            self._next()  # ':'
        if self._at_punct("?-"):
            self._next()
            literals = self._parse_literals()
            self._expect("PUNCT", ".")
            return ParsedQuery(tuple(literals), span=self._span_from(start))
        head_start = self._peek()
        literals = self._parse_literals()
        if self._at_punct(":-"):
            self._next()
            if len(literals) != 1 or not isinstance(literals[0], Atom):
                raise self._fail("rule head must be a single database atom",
                                 head_start)
            body = self._parse_literals()
            self._expect("PUNCT", ".")
            return Rule(literals[0], tuple(body), label=label,
                        span=self._span_from(start))
        if self._at_punct("->"):
            self._next()
            head: Literal | None = None
            if not self._at_punct("."):
                if (self._peek().kind == "IDENT"
                        and self._peek().text == "false"
                        and self._at_punct(".", 1)):
                    self._next()
                else:
                    head = self._parse_literal()
            self._expect("PUNCT", ".")
            return ParsedIC(tuple(literals), head, label=label,
                            span=self._span_from(start))
        # A bare atom followed by '.' is a fact.
        self._expect("PUNCT", ".")
        if len(literals) != 1 or not isinstance(literals[0], Atom):
            raise self._fail("a fact must be a single database atom",
                             head_start)
        return Rule(literals[0], (), label=label,
                    span=self._span_from(start))

    def _parse_literals(self) -> list[Literal]:
        literals = [self._parse_literal()]
        while self._at_punct(","):
            self._next()
            literals.append(self._parse_literal())
        return literals

    def _parse_literal(self) -> Literal:
        token = self._peek()
        if token.kind == "IDENT" and token.text == "not":
            self._next()
            inner = self._parse_literal()
            if not isinstance(inner, Atom):
                raise self._fail("'not' applies to database atoms only",
                                 token)
            return Negation(inner, span=self._span_from(token))
        # An identifier followed by '(' is a database atom...
        if token.kind == "IDENT" and self._at_punct("(", 1):
            return self._parse_atom()
        # ... a zero-arity atom when followed by a literal separator ...
        if token.kind == "IDENT" and (
                self._at_punct(",", 1) or self._at_punct(".", 1)
                or self._at_punct(":-", 1) or self._at_punct("->", 1)):
            self._next()
            return Atom(token.text, (), span=token.span())
        # ... otherwise we are looking at a comparison.
        lhs = self._parse_expr()
        op_token = self._peek()
        if op_token.kind != "PUNCT" or op_token.text not in _COMPARISON_OPS:
            raise self._fail(
                f"expected comparison operator, found "
                f"{op_token.text or op_token.kind!r}",
                op_token)
        self._next()
        rhs = self._parse_expr()
        return Comparison(op_token.text, lhs, rhs,
                          span=self._span_from(token))

    def _parse_atom(self) -> Atom:
        start = self._peek()
        name = self._expect("IDENT").text
        args: list[Term] = []
        if self._at_punct("("):
            self._next()
            if not self._at_punct(")"):
                args.append(self._parse_expr())
                while self._at_punct(","):
                    self._next()
                    args.append(self._parse_expr())
            self._expect("PUNCT", ")")
        return Atom(name, tuple(args), span=self._span_from(start))

    def _parse_expr(self) -> Term:
        left = self._parse_product()
        while self._at_punct("+") or self._at_punct("-"):
            op = self._next().text
            right = self._parse_product()
            left = ArithExpr(op, left, right)
        return left

    def _parse_product(self) -> Term:
        left = self._parse_unary()
        while self._at_punct("*") or self._at_punct("/"):
            op = self._next().text
            right = self._parse_unary()
            left = ArithExpr(op, left, right)
        return left

    def _parse_unary(self) -> Term:
        token = self._peek()
        if self._at_punct("-"):
            self._next()
            number = self._expect("NUMBER")
            return Constant(-_to_number(number.text))
        if self._at_punct("("):
            self._next()
            inner = self._parse_expr()
            self._expect("PUNCT", ")")
            return inner
        if token.kind == "NUMBER":
            self._next()
            return Constant(_to_number(token.text))
        if token.kind == "STRING":
            self._next()
            return Constant(token.text)
        if token.kind == "VAR":
            self._next()
            return Variable(token.text)
        if token.kind == "IDENT":
            self._next()
            return Constant(token.text)
        raise self._fail(
            f"expected a term, found {token.text or token.kind!r}", token)


def _to_number(text: str) -> int | float:
    return float(text) if "." in text else int(text)


def parse_statements(text: str) -> list[Statement]:
    """Parse a mixed unit of rules, facts, ICs and queries."""
    return _Parser(text).parse_unit()


def parse_program(text: str, edb_hint: tuple[str, ...] = ()) -> Program:
    """Parse rules/facts only; any IC or query in the text is an error."""
    rules: list[Rule] = []
    for statement in parse_statements(text):
        if not isinstance(statement, Rule):
            span = statement.span
            raise ParseError(
                f"expected only rules, found {type(statement).__name__}",
                span.line if span else None,
                span.column if span else None,
                excerpt=caret_excerpt(text, span) if span else None)
        rules.append(statement)
    return Program(rules, edb_hint=edb_hint)


def parse_rule(text: str) -> Rule:
    """Parse exactly one rule (or fact)."""
    statements = parse_statements(text)
    if len(statements) != 1 or not isinstance(statements[0], Rule):
        raise ParseError("expected exactly one rule")
    return statements[0]


def parse_ic(text: str) -> ParsedIC:
    """Parse exactly one integrity constraint."""
    statements = parse_statements(text)
    if len(statements) != 1 or not isinstance(statements[0], ParsedIC):
        raise ParseError("expected exactly one integrity constraint")
    return statements[0]


def parse_query(text: str) -> ParsedQuery:
    """Parse exactly one query, with or without the leading ``?-``."""
    stripped = text.strip()
    if not stripped.startswith("?-"):
        stripped = "?- " + stripped
    if not stripped.rstrip().endswith("."):
        stripped = stripped.rstrip() + "."
    statements = parse_statements(stripped)
    if len(statements) != 1 or not isinstance(statements[0], ParsedQuery):
        raise ParseError("expected exactly one query")
    return statements[0]


def parse_atom(text: str) -> Atom:
    """Parse a single database atom such as ``par(X, Y)``."""
    parser = _Parser(text)
    result = parser._parse_atom()
    if parser._peek().kind != "EOF":
        token = parser._peek()
        raise parser._fail(f"trailing input after atom: {token.text!r}",
                           token)
    return result


def parse_literal(text: str) -> Literal:
    """Parse a single literal (atom, comparison, or negated atom)."""
    parser = _Parser(text)
    result = parser._parse_literal()
    if parser._peek().kind != "EOF":
        token = parser._peek()
        raise parser._fail(f"trailing input after literal: {token.text!r}",
                           token)
    return result
