"""Programs and their structural analysis.

A :class:`Program` is an ordered collection of rules.  It computes, on
demand, the analyses the paper's assumptions rest on:

- the EDB/IDB split (IDB = predicates defined by some rule head);
- the predicate dependency graph and its strongly connected components;
- recursive predicates, with *linear* vs *non-linear* classification and
  detection of *mutual* recursion (which the paper excludes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import networkx as nx

from ..errors import ProgramError
from .atoms import Atom, Negation
from .rules import Rule


@dataclass(frozen=True)
class RecursionInfo:
    """Summary of the recursion structure of a program.

    Attributes:
        recursive_predicates: predicates on a dependency cycle.
        mutual_groups: SCCs of size > 1 (mutual recursion).
        nonlinear_predicates: recursive predicates with a rule whose body
            mentions a predicate of its own SCC more than once.
    """

    recursive_predicates: frozenset[str]
    mutual_groups: tuple[frozenset[str], ...]
    nonlinear_predicates: frozenset[str]

    @property
    def has_mutual_recursion(self) -> bool:
        return bool(self.mutual_groups)

    def is_linear(self, pred: str) -> bool:
        return (pred in self.recursive_predicates
                and pred not in self.nonlinear_predicates)


class Program:
    """An ordered, immutable collection of Datalog rules.

    Rules keep their source order; labels are auto-assigned (``r0``,
    ``r1``, ...) for rules that do not carry one, because expansion
    sequences and reports refer to rules by label.
    """

    def __init__(self, rules: Iterable[Rule],
                 edb_hint: Iterable[str] | None = None) -> None:
        rules = list(rules)  # callers may pass generators
        labelled: list[Rule] = []
        used = {r.label for r in rules if isinstance(r, Rule) and r.label}
        counter = 0
        for r in rules:
            if not isinstance(r, Rule):
                raise TypeError(f"not a rule: {r!r}")
            if r.label is None:
                while f"r{counter}" in used:
                    counter += 1
                r = r.with_label(f"r{counter}")
                used.add(r.label)
                counter += 1
            labelled.append(r)
        if len({r.label for r in labelled}) != len(labelled):
            raise ProgramError("duplicate rule labels in program")
        self._rules: tuple[Rule, ...] = tuple(labelled)
        self._edb_hint = frozenset(edb_hint or ())
        self._by_label = {r.label: r for r in self._rules}
        self._by_head: dict[str, tuple[Rule, ...]] = {}
        for r in self._rules:
            self._by_head.setdefault(r.head.pred, ())
            self._by_head[r.head.pred] += (r,)
        self._recursion: RecursionInfo | None = None

    # -- container protocol -------------------------------------------------
    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __getitem__(self, index: int) -> Rule:
        return self._rules[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Program) and self._rules == other._rules

    def __hash__(self) -> int:
        return hash(self._rules)

    def __str__(self) -> str:
        return "\n".join(f"{r.label}: {r}" for r in self._rules)

    # -- basic accessors ------------------------------------------------------
    @property
    def rules(self) -> tuple[Rule, ...]:
        return self._rules

    def rule(self, label: str) -> Rule:
        """Look up a rule by its label."""
        try:
            return self._by_label[label]
        except KeyError:
            raise ProgramError(f"no rule labelled {label!r}") from None

    def rules_for(self, pred: str) -> tuple[Rule, ...]:
        """All rules whose head predicate is ``pred`` (source order)."""
        return self._by_head.get(pred, ())

    @property
    def idb_predicates(self) -> frozenset[str]:
        return frozenset(self._by_head)

    @property
    def edb_predicates(self) -> frozenset[str]:
        """Predicates referenced in bodies but never defined by a head."""
        referenced: set[str] = set()
        for r in self._rules:
            referenced.update(r.body_predicates())
        return frozenset((referenced | self._edb_hint) - self.idb_predicates)

    @property
    def predicates(self) -> frozenset[str]:
        return self.idb_predicates | self.edb_predicates

    def is_edb(self, pred: str) -> bool:
        return pred not in self.idb_predicates

    # -- transformation-friendly constructors --------------------------------
    def with_rules(self, rules: Iterable[Rule]) -> "Program":
        return Program(rules, edb_hint=self._edb_hint)

    def add_rules(self, *rules: Rule) -> "Program":
        return Program(self._rules + tuple(rules), edb_hint=self._edb_hint)

    def replace_rule(self, label: str, *replacements: Rule) -> "Program":
        """Replace the rule with ``label`` by ``replacements`` (in place)."""
        if label not in self._by_label:
            raise ProgramError(f"no rule labelled {label!r}")
        out: list[Rule] = []
        for r in self._rules:
            if r.label == label:
                out.extend(replacements)
            else:
                out.append(r)
        return Program(out, edb_hint=self._edb_hint)

    # -- dependency analysis ---------------------------------------------------
    def dependency_graph(self) -> "nx.DiGraph":
        """Directed graph: edge ``q -> p`` when q occurs in a body of p.

        Edge attribute ``negative`` is True when some occurrence is under
        negation (needed by stratification).
        """
        graph = nx.DiGraph()
        graph.add_nodes_from(self.predicates)
        for r in self._rules:
            for lit in r.body:
                if isinstance(lit, Atom):
                    negative = False
                elif isinstance(lit, Negation):
                    negative = True
                else:
                    continue
                pred = lit.pred if isinstance(lit, Atom) else lit.atom.pred
                if graph.has_edge(pred, r.head.pred):
                    if negative:
                        graph[pred][r.head.pred]["negative"] = True
                else:
                    graph.add_edge(pred, r.head.pred, negative=negative)
        return graph

    def recursion_info(self) -> RecursionInfo:
        """Analyse recursion structure (cached)."""
        if self._recursion is not None:
            return self._recursion
        graph = self.dependency_graph()
        sccs = [frozenset(c) for c in nx.strongly_connected_components(graph)]
        recursive: set[str] = set()
        mutual: list[frozenset[str]] = []
        for component in sccs:
            if len(component) > 1:
                recursive.update(component)
                mutual.append(component)
            else:
                (pred,) = component
                if graph.has_edge(pred, pred):
                    recursive.add(pred)
        scc_of: dict[str, frozenset[str]] = {}
        for component in sccs:
            for pred in component:
                scc_of[pred] = component
        nonlinear: set[str] = set()
        for r in self._rules:
            head = r.head.pred
            if head not in recursive:
                continue
            same_scc = sum(
                1 for a in r.database_atoms()
                if a.pred in recursive and scc_of.get(a.pred) == scc_of[head])
            if same_scc > 1:
                nonlinear.add(head)
        self._recursion = RecursionInfo(
            recursive_predicates=frozenset(recursive),
            mutual_groups=tuple(sorted(mutual, key=sorted)),
            nonlinear_predicates=frozenset(nonlinear))
        return self._recursion

    def exit_rules(self, pred: str) -> tuple[Rule, ...]:
        """Rules for ``pred`` whose body does not mention ``pred``."""
        return tuple(r for r in self.rules_for(pred)
                     if r.count_occurrences(pred) == 0)

    def recursive_rules(self, pred: str) -> tuple[Rule, ...]:
        """Rules for ``pred`` whose body mentions ``pred``."""
        return tuple(r for r in self.rules_for(pred)
                     if r.count_occurrences(pred) > 0)

    def require_linear(self, pred: str) -> None:
        """Enforce the paper's assumption (3) for ``pred``.

        Raises :class:`ProgramError` unless every rule for ``pred``
        contains at most one occurrence of ``pred`` in its body and
        ``pred`` is not mutually recursive with another predicate.
        """
        info = self.recursion_info()
        for group in info.mutual_groups:
            if pred in group:
                raise ProgramError(
                    f"{pred} is mutually recursive with "
                    f"{sorted(group - {pred})}; the paper's algorithms "
                    "require linear recursion without mutual recursion")
        for r in self.rules_for(pred):
            if r.count_occurrences(pred) > 1:
                raise ProgramError(
                    f"rule {r.label} is non-linear in {pred}: "
                    f"{r.count_occurrences(pred)} occurrences")

    def predicate_arities(self) -> Mapping[str, int]:
        """Map every predicate to its arity; inconsistent use is an error."""
        arities: dict[str, int] = {}

        def note(pred: str, arity: int) -> None:
            known = arities.setdefault(pred, arity)
            if known != arity:
                raise ProgramError(
                    f"predicate {pred} used with arities {known} and {arity}")

        for r in self._rules:
            note(r.head.pred, r.head.arity)
            for lit in r.body:
                if isinstance(lit, Atom):
                    note(lit.pred, lit.arity)
                elif isinstance(lit, Negation):
                    note(lit.atom.pred, lit.atom.arity)
        return arities
