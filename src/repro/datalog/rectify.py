"""Rule rectification.

The paper assumes (Section 2) that programs are *rectified* [Ullman 14]:
all rules defining the same predicate have an identical head
``p(X1, ..., Xn)`` where the ``Xi`` are distinct variables, with ``Xi`` in
column ``i``.  Rectifying a rule whose head contains constants or repeated
variables moves those constraints into the body as equality comparisons.

Example::

    p(X, X, a) :- e(X).       ==>    p(X1, X2, X3) :- e(X1),
                                                       X2 = X1, X3 = a.
"""

from __future__ import annotations

from .atoms import Atom, Comparison, Literal
from .program import Program
from .rules import Rule
from .terms import Constant, FreshVariableSupply, Variable


def head_variable(index: int) -> Variable:
    """The canonical head variable for column ``index`` (0-based)."""
    return Variable(f"X{index + 1}")


def is_rectified(rule: Rule) -> bool:
    """True when the head is a tuple of distinct variables."""
    seen: set[Variable] = set()
    for arg in rule.head.args:
        if not isinstance(arg, Variable) or arg in seen:
            return False
        seen.add(arg)
    return True


def rectify_rule(rule: Rule, canonical: bool = False) -> Rule:
    """Rectify one rule.

    When ``canonical`` is True the head variables are renamed to the
    canonical ``X1..Xn`` so that all rules for a predicate share an
    identical head, as the paper assumes; body variables are renamed
    consistently and clashes are avoided with fresh names.
    """
    supply = FreshVariableSupply({v.name for v in rule.variables()})
    extra: list[Literal] = []
    new_args: list[Variable] = []
    seen: set[Variable] = set()
    for arg in rule.head.args:
        if isinstance(arg, Variable) and arg not in seen:
            seen.add(arg)
            new_args.append(arg)
            continue
        fresh = supply.fresh("X")
        new_args.append(fresh)
        if isinstance(arg, (Variable, Constant)):
            extra.append(Comparison("=", fresh, arg))
        else:
            extra.append(Comparison("=", fresh, arg))
    rectified = Rule(Atom(rule.head.pred, tuple(new_args)),
                     rule.body + tuple(extra), label=rule.label)
    if not canonical:
        return rectified
    # Rename head variables to the canonical X1..Xn, avoiding collisions
    # with variables already used elsewhere in the rule.
    from .unify import Substitution  # local import to avoid a cycle
    target = [head_variable(i) for i in range(len(new_args))]
    clash = ({v for v in rectified.variables()} - set(new_args)) \
        & set(target)
    mapping: dict[Variable, Variable] = {}
    if clash:
        clash_supply = FreshVariableSupply(
            {v.name for v in rectified.variables()} | {t.name for t in target})
        for var in clash:
            mapping[var] = clash_supply.fresh(var.name)
    for current, wanted in zip(new_args, target):
        mapping[current] = wanted
    return rectified.apply(Substitution(mapping))


def rectify_program(program: Program, canonical: bool = True) -> Program:
    """Rectify every rule of a program."""
    return program.with_rules(
        rectify_rule(r, canonical=canonical) for r in program)
