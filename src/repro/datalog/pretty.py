"""Round-trippable pretty printing for programs, ICs and substitutions.

``str()`` on the AST classes already produces parseable text for single
objects; this module adds multi-object formatting with labels, alignment
and optional rule grouping by head predicate, used by reports and the
examples.
"""

from __future__ import annotations

from typing import Iterable

from .program import Program
from .rules import Rule
from .unify import Substitution


def format_rule(rule: Rule, show_label: bool = True) -> str:
    """Format one rule, prefixed with its label when available."""
    text = str(rule)
    if show_label and rule.label:
        return f"{rule.label}: {text}"
    return text


def format_program(program: Program, group_by_head: bool = False,
                   show_labels: bool = True) -> str:
    """Format a whole program, one rule per line.

    With ``group_by_head`` the rules are emitted grouped by head predicate
    (source order within each group) with a blank line between groups,
    which makes transformed programs much easier to read.
    """
    if not group_by_head:
        return "\n".join(format_rule(r, show_labels) for r in program)
    seen: list[str] = []
    for rule in program:
        if rule.head.pred not in seen:
            seen.append(rule.head.pred)
    blocks = []
    for pred in seen:
        blocks.append("\n".join(
            format_rule(r, show_labels) for r in program.rules_for(pred)))
    return "\n\n".join(blocks)


def format_substitution(subst: Substitution) -> str:
    """Format a substitution as ``{V1/t1, V2/t2, ...}`` (sorted)."""
    pairs = sorted(subst.items(), key=lambda kv: kv[0].name)
    return "{" + ", ".join(f"{v}/{t}" for v, t in pairs) + "}"


def side_by_side(left: str, right: str, left_title: str = "before",
                 right_title: str = "after", gutter: str = "   |   ") -> str:
    """Two-column text diff view used by optimization reports."""
    left_lines = [left_title, "-" * len(left_title)] + left.splitlines()
    right_lines = [right_title, "-" * len(right_title)] + right.splitlines()
    width = max((len(line) for line in left_lines), default=0)
    height = max(len(left_lines), len(right_lines))
    left_lines += [""] * (height - len(left_lines))
    right_lines += [""] * (height - len(right_lines))
    return "\n".join(
        f"{l.ljust(width)}{gutter}{r}" for l, r in
        zip(left_lines, right_lines))


def format_table(headers: Iterable[str],
                 rows: Iterable[Iterable[object]]) -> str:
    """Simple fixed-width table used by benchmark reports."""
    headers = [str(h) for h in headers]
    materialized = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    def fmt(cells: list[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)
