"""Source spans: line/column ranges tying AST nodes back to source text.

The parser attaches a :class:`Span` to every atom, comparison, negation,
rule and integrity constraint it builds, so that diagnostics (parse
errors, lint findings, optimizer precondition failures) can point at the
offending source text instead of merely naming a rule label.

Spans use 1-based lines and columns; ``end_column`` is exclusive, so a
single-character token at column 5 has ``column=5, end_column=6``.
Programmatically built AST nodes carry no span (``span=None``) and
diagnostics degrade gracefully to label-only reporting.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Span:
    """A half-open source range ``[start, end)`` in 1-based coordinates."""

    line: int
    column: int
    end_line: int
    end_column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"

    @property
    def location(self) -> str:
        """The human-facing ``line:column`` of the span's start."""
        return f"line {self.line}, column {self.column}"

    def merge(self, other: "Span | None") -> "Span":
        """The smallest span covering both ``self`` and ``other``."""
        if other is None:
            return self
        start = min((self.line, self.column), (other.line, other.column))
        end = max((self.end_line, self.end_column),
                  (other.end_line, other.end_column))
        return Span(start[0], start[1], end[0], end[1])

    def to_dict(self) -> dict[str, int]:
        return {"line": self.line, "column": self.column,
                "end_line": self.end_line, "end_column": self.end_column}

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "Span":
        return cls(data["line"], data["column"],
                   data["end_line"], data["end_column"])

    def excerpt(self, source: str) -> str:
        """A caret-annotated extract of ``source`` marking this span.

        Renders the span's first line with a gutter and underlines the
        spanned columns::

              3 | anc(X, Y) :- anc(X, Z).
                |              ^^^^^^^^^
        """
        return caret_excerpt(source, self)


def caret_excerpt(source: str, span: Span) -> str:
    """Render ``span``'s first source line with a caret underline."""
    lines = source.splitlines()
    if not 1 <= span.line <= len(lines):
        return ""
    text = lines[span.line - 1]
    gutter = f"{span.line:>4} | "
    start = max(span.column - 1, 0)
    if span.end_line == span.line:
        width = max(span.end_column - span.column, 1)
    else:
        width = max(len(text) - start, 1)
    width = max(min(width, max(len(text) - start, 1)), 1)
    underline = " " * start + "^" * width
    return f"{gutter}{text}\n{' ' * (len(gutter) - 2)}| {underline}"
