"""Datalog substrate: terms, atoms, rules, programs, parsing, analysis."""

from .spans import Span, caret_excerpt
from .terms import (ArithExpr, Constant, FreshVariableSupply, Term,
                    Variable, mk_term)
from .atoms import (Atom, Comparison, Literal, Negation, atom, comparison,
                    is_database, is_evaluable, literal_variables)
from .rules import Rule, is_connected, rule
from .program import Program, RecursionInfo
from .parser import (ParsedIC, ParsedQuery, parse_atom, parse_ic,
                     parse_literal, parse_program, parse_query, parse_rule,
                     parse_statements)
from .unify import EMPTY_SUBSTITUTION, Substitution, match, rename_apart, unify
from .rectify import is_rectified, rectify_program, rectify_rule
from .analysis import (ProgramReport, is_range_restricted, is_safe,
                       validate_program)
from .pretty import format_program, format_rule, format_table, side_by_side

__all__ = [
    "Span", "caret_excerpt",
    "ArithExpr", "Constant", "FreshVariableSupply", "Term", "Variable",
    "mk_term",
    "Atom", "Comparison", "Literal", "Negation", "atom", "comparison",
    "is_database", "is_evaluable", "literal_variables",
    "Rule", "is_connected", "rule",
    "Program", "RecursionInfo",
    "ParsedIC", "ParsedQuery", "parse_atom", "parse_ic", "parse_literal",
    "parse_program", "parse_query", "parse_rule", "parse_statements",
    "EMPTY_SUBSTITUTION", "Substitution", "match", "rename_apart", "unify",
    "is_rectified", "rectify_program", "rectify_rule",
    "ProgramReport", "is_range_restricted", "is_safe", "validate_program",
    "format_program", "format_rule", "format_table", "side_by_side",
]
