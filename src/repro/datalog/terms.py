"""Terms of the Datalog dialect: variables, constants and arithmetic.

The paper's programs use only variables and constants as predicate
arguments; evaluable (built-in) predicates may additionally compare simple
arithmetic expressions over those terms (e.g. ``Ya > Xa + 25``), which we
support as an extension so that the genealogy workload of Example 4.3 can
express age arithmetic.

All term classes are immutable and hashable so they can be used freely in
sets, dictionaries and substitution mappings.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass
from typing import Iterator, Union

#: Python values allowed inside a :class:`Constant`.
ConstValue = Union[str, int, float, bool]

_VARIABLE_RE = re.compile(r"^[A-Z_][A-Za-z0-9_]*$")


@dataclass(frozen=True, slots=True)
class Variable:
    """A logic variable, conventionally starting with an uppercase letter."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant: a symbol (string), number or boolean."""

    value: ConstValue

    def __str__(self) -> str:
        if isinstance(self.value, str):
            if re.match(r"^[a-z][A-Za-z0-9_]*$", self.value):
                return self.value
            return "'" + self.value.replace("'", "\\'") + "'"
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


@dataclass(frozen=True, slots=True)
class ArithExpr:
    """A binary arithmetic expression over terms (extension).

    Only appears inside evaluable atoms; database atoms take plain
    variables/constants as arguments, as in the paper.
    """

    op: str  # one of + - * /
    left: "Term"
    right: "Term"

    _OPS = frozenset({"+", "-", "*", "/"})

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unknown arithmetic operator {self.op!r}")

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


#: Anything that can appear as an argument of an atom.
Term = Union[Variable, Constant, ArithExpr]


def is_variable_name(name: str) -> bool:
    """Return True when ``name`` follows the variable naming convention."""
    return bool(_VARIABLE_RE.match(name))


def mk_term(value: object) -> Term:
    """Coerce a Python value into a :class:`Term`.

    Strings following the variable convention become variables; every other
    string, and all numbers/booleans, become constants.  Terms pass through
    unchanged.  This is the convenience entry point used by workload
    generators and tests.
    """
    if isinstance(value, (Variable, Constant, ArithExpr)):
        return value
    if isinstance(value, str):
        if is_variable_name(value):
            return Variable(value)
        return Constant(value)
    if isinstance(value, (int, float, bool)):
        return Constant(value)
    raise TypeError(f"cannot build a term from {value!r}")


def variables_of(term: Term) -> Iterator[Variable]:
    """Yield every variable occurring in ``term`` (left to right)."""
    if isinstance(term, Variable):
        yield term
    elif isinstance(term, ArithExpr):
        yield from variables_of(term.left)
        yield from variables_of(term.right)


class FreshVariableSupply:
    """Generates variables guaranteed not to clash with a reserved set.

    The transformation algorithms repeatedly need "completely new names"
    (Algorithm 4.1, step 5).  A supply is seeded with every variable name
    already in use and then hands out ``V_1, V_2, ...`` style names that
    avoid the reserved set.
    """

    def __init__(self, reserved: set[str] | None = None,
                 prefix: str = "V") -> None:
        self._reserved = set(reserved or ())
        self._prefix = prefix
        self._counter = itertools.count(1)

    def reserve(self, names: set[str]) -> None:
        """Add more names to the reserved set."""
        self._reserved.update(names)

    def fresh(self, base: str | None = None) -> Variable:
        """Return a fresh variable, optionally derived from ``base``.

        When ``base`` is given the fresh name is ``<base>_<n>`` which keeps
        transformed programs readable; otherwise ``<prefix>_<n>``.
        """
        stem = base if base is not None else self._prefix
        while True:
            name = f"{stem}_{next(self._counter)}"
            if name not in self._reserved:
                self._reserved.add(name)
                return Variable(name)
